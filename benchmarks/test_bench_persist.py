"""Durable-cache serving — warm-vs-cold latency across service restarts.

The persistence layer's performance claim is simple: a diagnosis served
once should never be computed again, not by another worker and not after a
restart.  This benchmark pushes a distinct-evidence workload through a
persisted :class:`~repro.serving.DiagnosisService`, restarts the service on
the same ``persist_dir``, and measures the warm pass against the cold one.
The timed kernel is the warm (restarted, cache-backed) batch.

Asserted promises (the ISSUE acceptance criteria):

* the restarted service answers >= 90% of its lookups from the durable
  cache,
* the warm pass is measurably faster than the cold pass, and
* warm posteriors are bit-identical to the cold ones — the cache returns
  computed results, never approximations of them.
"""

from __future__ import annotations

import time

from repro.core import Dlog2BBN, FallbackPolicy
from repro.serving import DiagnosisService, ServiceConfig

#: Cases pushed through the cold and warm services.
WORKLOAD = 120
#: Required durable hit rate of the restarted service.
MIN_HIT_RATE = 0.9
#: The warm pass must beat the cold pass by at least this factor.
MIN_WARM_SPEEDUP = 1.2


def _workload(regulator_circuit, failed_population):
    """Distinct-evidence cases: one per failed device/condition, capped."""
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    labeled = builder.case_generator().cases_from_results(
        failed_population.results)
    evidence = [case.observed() for case in labeled][:WORKLOAD]
    names = [f"persist-{index:04d}" for index in range(len(evidence))]
    return evidence, names


def test_bench_persist_warm_restart(benchmark, built_model,
                                    regulator_circuit, failed_population,
                                    tmp_path_factory):
    evidence, names = _workload(regulator_circuit, failed_population)
    policy = FallbackPolicy(evidence_cache_size=1)
    config = ServiceConfig(num_workers=2, chunk_size=16)
    persist_dir = tmp_path_factory.mktemp("persist")

    # Cold pass: every posterior is computed and durably committed.
    with DiagnosisService(built_model, policy, config,
                          persist_dir=persist_dir) as service:
        start = time.perf_counter()
        cold_results = service.diagnose_batch(evidence, names=names,
                                              timeout=600)
        cold_elapsed = time.perf_counter() - start
        cold_stats = service.stats()

    # Warm pass: a *restarted* service on the same directory.
    with DiagnosisService(built_model, policy, config,
                          persist_dir=persist_dir) as service:
        start = time.perf_counter()
        warm_results = service.diagnose_batch(evidence, names=names,
                                              timeout=600)
        warm_elapsed = time.perf_counter() - start
        warm_stats = service.stats()
        # The snapshot kernel: steady-state cache-backed serving.
        benchmark(service.diagnose_batch, evidence, names=names, timeout=600)

    n = len(evidence)
    lookups = warm_stats.cache_hits + warm_stats.cache_misses
    hit_rate = warm_stats.cache_hits / lookups if lookups else 0.0
    print()
    print(f"Durable-cache restart ({n} distinct cases, 2 workers):")
    print(f"  cold pass: {cold_elapsed:.3f}s ({n / cold_elapsed:7.1f} "
          f"devices/s, {cold_stats.cache_misses} durable misses)")
    print(f"  warm pass: {warm_elapsed:.3f}s ({n / warm_elapsed:7.1f} "
          f"devices/s, {warm_stats.cache_hits}/{lookups} durable hits)")
    print(f"  restart hit rate: {hit_rate * 100.0:.1f}%  "
          f"speedup: {cold_elapsed / warm_elapsed:.2f}x")

    # Promise 1: the restart actually reuses the durable state.
    assert lookups >= n
    assert hit_rate >= MIN_HIT_RATE, (
        f"restarted service hit rate {hit_rate:.2%} below the "
        f"{MIN_HIT_RATE:.0%} floor")

    # Promise 2: warm serving is measurably faster than recomputation.
    assert warm_elapsed * MIN_WARM_SPEEDUP <= cold_elapsed, (
        f"warm pass ({warm_elapsed:.3f}s) is not {MIN_WARM_SPEEDUP}x "
        f"faster than the cold pass ({cold_elapsed:.3f}s)")

    # Promise 3: cached results are the computed results, bit for bit.
    assert all(result.ok for result in cold_results + warm_results)
    for cold, warm in zip(cold_results, warm_results):
        assert warm.posteriors == cold.posteriors
