"""Table VI — the five diagnostic case studies and their deduced fail blocks.

Regenerates the Table VI summary: for each case d1–d5 the controllable
states, the observable states, the paper's expert fail blocks and the suspect
blocks this reproduction deduces.  The timed kernel is the five diagnostic
queries (evidence entry + posterior update + candidate deduction).
"""

from __future__ import annotations

from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES, PAPER_EXPECTED_SUSPECTS
from repro.core.report import case_summary_table


def test_bench_table6_case_studies(benchmark, diagnosis_engine):
    diagnoses = benchmark(diagnosis_engine.diagnose_batch, PAPER_DIAGNOSTIC_CASES)

    print()
    print(case_summary_table(PAPER_DIAGNOSTIC_CASES, diagnoses))
    print()
    print("Paper vs measured suspect blocks:")
    exact = 0
    for diagnosis in diagnoses:
        expected = set(PAPER_EXPECTED_SUSPECTS[diagnosis.case_name])
        got = set(diagnosis.suspects)
        verdict = "exact" if got == expected else (
            "partial" if got & expected else "miss")
        exact += got == expected
        print(f"  {diagnosis.case_name}: paper={sorted(expected)} "
              f"measured={sorted(got)} [{verdict}]")

    # Reproduction bar: at least three of the five cases point exactly at the
    # paper's suspects and every case overlaps the paper's suspect set.
    assert exact >= 3
    for diagnosis in diagnoses:
        assert set(diagnosis.suspects) & set(
            PAPER_EXPECTED_SUSPECTS[diagnosis.case_name]), diagnosis.case_name
