"""Extra experiment — diagnosis accuracy of the BBN vs classical baselines.

Beyond the paper: with a simulated population the injected fault is known, so
the block-level BBN diagnoser can be scored quantitatively against a fault
dictionary, a nearest-neighbour diagnoser and a naive-Bayes classifier on the
same discretised evidence.  Expected shape: the BBN (which exploits the
designer's dependency structure without needing labelled training returns)
is competitive with the supervised baselines on top-3 accuracy and needs no
per-fault labelled data at diagnosis time.
"""

from __future__ import annotations

from repro.ate import PopulationGenerator
from repro.baselines import NaiveBayesDiagnoser, NearestNeighborDiagnoser
from repro.circuits import BehavioralSimulator
from repro.core import CaseGenerator, DiagnosisMetrics
from repro.utils.tables import format_table

EVALUATION_DEVICES = 60


def evaluate(regulator_circuit, regulator_program, diagnosis_engine):
    internal = set(regulator_circuit.model.internal_variables)
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=101)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=102)

    # Training population for the supervised baselines.
    training = generator.generate(failed_count=80)
    case_generator = CaseGenerator(regulator_circuit.model)
    training_cases = case_generator.cases_from_results(training.failing_results)
    training_truth = {device: fault.block
                      for device, fault in training.ground_truth.items()}
    nearest = NearestNeighborDiagnoser(k=5).fit(training_cases, training_truth)
    naive = NaiveBayesDiagnoser().fit(training_cases, training_truth)

    # Evaluation population restricted to internal-block faults (observable
    # blocks are read straight off the responses and need no inference).
    evaluation = generator.generate(failed_count=EVALUATION_DEVICES)
    evidences, true_blocks = [], []
    for result in evaluation.failing_results:
        true_block = evaluation.ground_truth[result.device_id].block
        if true_block not in internal:
            continue
        cases = case_generator.cases_from_device_result(result)
        failing = [case for case in cases if case.failed] or cases
        evidences.append(failing[0].observed())
        true_blocks.append(true_block)

    bbn_metrics = DiagnosisMetrics()
    nn_top1 = nb_top1 = nn_top3 = nb_top3 = scored = 0
    diagnoses = diagnosis_engine.diagnose_batch(evidences)
    for diagnosis, evidence, true_block in zip(diagnoses, evidences, true_blocks):
        bbn_metrics.record(diagnosis, true_block)
        nn_rank = nearest.rank_of(evidence, true_block)
        nb_rank = naive.rank_of(evidence, true_block)
        nn_top1 += nn_rank == 1
        nb_top1 += nb_rank == 1
        nn_top3 += nn_rank <= 3
        nb_top3 += nb_rank <= 3
        scored += 1
    return bbn_metrics, scored, (nn_top1, nn_top3), (nb_top1, nb_top3)


def test_bench_accuracy_vs_baselines(benchmark, regulator_circuit,
                                     regulator_program, diagnosis_engine):
    bbn_metrics, scored, nn, nb = benchmark(
        evaluate, regulator_circuit, regulator_program, diagnosis_engine)

    summary = bbn_metrics.summary()
    rows = [
        ["BBN block-level diagnosis", f"{summary['top1_accuracy']:.2f}",
         f"{summary['top3_accuracy']:.2f}", f"{summary['mean_rank']:.2f}"],
        ["Nearest neighbour (k=5)", f"{nn[0] / scored:.2f}", f"{nn[1] / scored:.2f}", "-"],
        ["Naive Bayes", f"{nb[0] / scored:.2f}", f"{nb[1] / scored:.2f}", "-"],
    ]
    print()
    print(format_table(["Diagnoser", "Top-1", "Top-3", "Mean rank"], rows,
                       title=f"Diagnosis accuracy over {scored} internal-fault devices"))

    assert scored >= 20
    # Several internal faults are inherently indistinguishable from the
    # observable responses alone (a dead warnvpst and a dead hcbg shut the
    # same outputs down), and the marginal fail-probability ranking places
    # downstream consequences above their cause by construction — exactly why
    # the paper follows block-level diagnosis with a structural step two.
    # The bar is therefore "at or above the 1/8 chance level" for top-1 and
    # "no worse than the chance mean rank of 4.5 by more than one position".
    assert summary["top1_accuracy"] >= 1.0 / 8
    assert summary["mean_rank"] <= 5.5
    # The supervised baselines see labelled failed devices for every block and
    # should therefore identify the exact block more often than the BBN,
    # which never sees labelled data.
    assert nn[0] / scored >= summary["top1_accuracy"]
