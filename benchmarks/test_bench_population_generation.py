"""Throughput benchmark — batched failed/passing device-population generation.

The paper's learning flow starts from a population of failed devices; scaling
it to production-size populations means the simulate→test path must run as
whole-population array kernels.  This benchmark times generating 200 failed
plus 50 passing devices (fault sampling, process variation, the full
25-test no-stop-on-fail program and masked-fault re-draws included) and
reports the device throughput.
"""

from __future__ import annotations

from repro.ate import PopulationGenerator
from repro.circuits import BehavioralSimulator

FAILED_DEVICES = 200
PASSING_DEVICES = 50


def generate_population(regulator_circuit, regulator_program):
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=211)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=212)
    return generator.generate(failed_count=FAILED_DEVICES,
                              passing_count=PASSING_DEVICES)


def test_bench_population_generation(benchmark, regulator_circuit,
                                     regulator_program):
    population = benchmark(generate_population, regulator_circuit,
                           regulator_program)

    devices = FAILED_DEVICES + PASSING_DEVICES
    median = benchmark.stats.stats.median
    print()
    print(f"Generated {devices} devices ({len(population.failing_results)} "
          f"failing) in {median * 1e3:.2f} ms median — "
          f"{devices / median:,.0f} devices/s")

    assert len(population) == devices
    assert len(population.ground_truth) == FAILED_DEVICES
    # Every fault-injected device must observably fail (re-draw semantics),
    # and every result must carry the full no-stop-on-fail measurement list.
    for result in population.results[:FAILED_DEVICES]:
        assert result.failed
        assert len(result.measurements) == len(regulator_program)
