"""Table III + Table IV — conditional probability tables of the hypothetical circuit.

The paper shows the CPT layout for (Block-1 -> Block-2), (Block-1 -> Block-3)
and (Block-3 -> Block-4) and learns the entries from cases.  This benchmark
generates cases from the behavioural hypothetical circuit, learns the CPTs
and prints them in the paper's layout.  The reproduction check is on shape:
an operational parent makes the child overwhelmingly operational, a
non-operational parent makes it overwhelmingly non-operational.
"""

from __future__ import annotations

from repro.ate import PopulationGenerator
from repro.ate.programs import HYPOTHETICAL_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, build_hypothetical_circuit
from repro.core import Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder
from repro.utils.tables import format_table


def learn_hypothetical_cpts():
    circuit = build_hypothetical_circuit()
    program = build_functional_program("hypo", circuit.model,
                                       HYPOTHETICAL_CONDITION_SETS)
    simulator = BehavioralSimulator(circuit.netlist, seed=41)
    generator = PopulationGenerator(simulator, program, circuit.fault_universe,
                                    seed=42)
    population = generator.generate(failed_count=60, passing_count=20)
    builder = Dlog2BBN(circuit.model, circuit.healthy_states)
    prior = SimulationPriorBuilder(
        circuit.netlist, circuit.model,
        [cs.conditions for cs in HYPOTHETICAL_CONDITION_SETS],
        fault_probability=0.15, samples=1500, seed=43).build()
    cases = builder.case_generator().cases_from_results(population.results)
    built = builder.build(cases, method="bayes", prior_network=prior,
                          equivalent_sample_size=30)
    return built.network


def cpt_rows(network, child, parent):
    cpd = network.get_cpd(child)
    rows = []
    parent_states = cpd.state_names[parent]
    child_states = cpd.state_names[child]
    for parent_state in parent_states:
        distribution = cpd.distribution({parent: parent_state})
        rows.append([f"{parent} state {parent_state}"]
                    + [f"{distribution[state]:.3f}" for state in child_states])
    return ["Parent"] + [f"P({child}={state})" for state in child_states], rows


def test_bench_tables34_hypothetical_cpts(benchmark):
    network = benchmark(learn_hypothetical_cpts)

    for child, parent, title in (("block2", "block1", "Table III (left): Block-1 -> Block-2"),
                                 ("block3", "block1", "Table III (right): Block-1 -> Block-3"),
                                 ("block4", "block3", "Table IV: Block-3 -> Block-4")):
        header, rows = cpt_rows(network, child, parent)
        print()
        print(format_table(header, rows, title=title))

    # Shape check: conditioned on an operational Block-1 (state 2), Block-2
    # and Block-3 are most probably operational; conditioned on a
    # non-operational Block-3, Block-4 is most probably non-operational.
    block2 = network.get_cpd("block2")
    block3 = network.get_cpd("block3")
    block4 = network.get_cpd("block4")
    assert block2.probability("1", {"block1": "2"}) > 0.6
    assert block3.probability("1", {"block1": "2"}) > 0.6
    assert block2.probability("0", {"block1": "0"}) > 0.6
    assert block4.probability("0", {"block3": "0"}) > 0.6
    assert block4.probability("1", {"block3": "1"}) > 0.6
