"""Ablation — iterative parent back-tracking vs plain max-posterior ranking.

The paper deduces the failing candidates by iteratively walking the
parent–child relations (Section IV-B); a naive alternative is to simply
report the internal block with the highest fail probability.  This ablation
scores both on the paper's five cases (using the paper's own published
posteriors, so the comparison isolates the deduction rule from the CPTs).
Expected shape: back-tracking recovers the paper's suspects in every case,
while the naive ranking confuses consequences with causes (the enable gates
outrank their failing parent in d1, d3 and d4).
"""

from __future__ import annotations

from repro.core.paper_cases import (
    PAPER_DIAGNOSTIC_CASES,
    PAPER_EXPECTED_SUSPECTS,
    PAPER_INTERNAL_PROBABILITIES,
)
from repro.utils.tables import format_table


def paper_posteriors_for(engine, column):
    model = engine.model
    posteriors = {}
    for variable in model.variable_names:
        labels = model.state_table(variable).labels
        healthy = engine.healthy_states[variable]
        posteriors[variable] = {label: 1.0 if label == healthy else 0.0
                                for label in labels}
    posteriors.update(PAPER_INTERNAL_PROBABILITIES[column])
    return posteriors


def run_ablation(engine):
    results = []
    for case in PAPER_DIAGNOSTIC_CASES:
        posteriors = paper_posteriors_for(engine, case.name)
        deduced = set(engine.deduce_candidates(posteriors))
        naive_top = engine.rank_by_fail_probability(posteriors)[0][0]
        expected = set(PAPER_EXPECTED_SUSPECTS[case.name])
        results.append((case.name, expected, deduced, naive_top))
    return results


def test_bench_ablation_deduction(benchmark, diagnosis_engine):
    results = benchmark(run_ablation, diagnosis_engine)

    rows = [[name, ", ".join(sorted(expected)), ", ".join(sorted(deduced)), naive]
            for name, expected, deduced, naive in results]
    print()
    print(format_table(["Case", "Paper suspects", "Back-tracking", "Naive top-1"],
                       rows,
                       title="Ablation: candidate deduction rule "
                             "(on the paper's published posteriors)"))

    deduction_exact = sum(deduced == expected for _, expected, deduced, _ in results)
    naive_exact = sum({naive} == expected for _, expected, _, naive in results)
    # The automated back-tracking reproduces all five manual deductions; the
    # naive ranking does not.
    assert deduction_exact == 5
    assert naive_exact < deduction_exact
