"""CPT-learning throughput on the columnar path — cases/s at ATE scale.

The array-native pipeline exists so that fine-tuning CPTs on a production
population is bounded by ``np.bincount`` rather than per-case Python loops.
This benchmark measures fit throughput at 1k/10k/100k devices (the 100k tier
is the ATE-scale target of ROADMAP item on batched learning), asserts the
columnar estimator beats the row-based one by at least 5x on identical
cases, and smoke-tests the memory ceiling: learning from a memory-mapped
100k-device store must stay under ~2x the raw array payload in resident
memory — i.e. no hidden row materialisation.

Populations above 1k devices are tiled from a real simulated 1k-device
population: the estimator's cost depends only on the plane shapes, and
tiling keeps the benchmark setup seconds-fast instead of half a minute of
simulation per run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ate import DeviceResultStore, PopulationGenerator
from repro.bayesnet import BayesianEstimator, CaseMatrix
from repro.circuits import BehavioralSimulator
from repro.core import CaseGenerator, Dlog2BBN
from repro.utils.tables import format_table

BASE_DEVICES = 1_000
SIZES = {"1k": 1_000, "10k": 10_000, "100k": 100_000}


@pytest.fixture(scope="module")
def base_population(regulator_circuit, regulator_program):
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=41)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=42)
    return generator.generate(failed_count=BASE_DEVICES)


@pytest.fixture(scope="module")
def model_builder(regulator_circuit):
    return Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)


@pytest.fixture(scope="module")
def structure(model_builder, regulator_circuit):
    return model_builder.build_structure().with_uniform_cpds(
        regulator_circuit.model.cardinalities(),
        regulator_circuit.model.state_names())


def tiled_store(store: DeviceResultStore, devices: int) -> DeviceResultStore:
    """Tile a store's device columns up to ``devices`` (ids kept unique)."""
    repeats = -(-devices // store.device_count)
    values = np.tile(store.values, (1, repeats))[:, :devices]
    passed = np.tile(store.passed, (1, repeats))[:, :devices]
    device_ids = [f"{device_id}-r{repeat}"
                  for repeat in range(repeats)
                  for device_id in store.device_ids][:devices]
    fault_index = np.concatenate(
        [store.fault_index + repeat * store.device_count
         for repeat in range(repeats)])
    keep = fault_index < devices
    return DeviceResultStore(
        device_ids, values, passed, store.test_numbers, store.test_names,
        store.blocks, store.lowers, store.uppers, store.conditions,
        fault_index[keep],
        np.tile(store.fault_blocks, repeats)[keep],
        np.tile(store.fault_modes, repeats)[keep],
        np.tile(store.fault_severities, repeats)[keep])


def fresh_matrix(matrix: CaseMatrix) -> CaseMatrix:
    """Re-wrap the code planes so per-matrix memo caches start cold."""
    return CaseMatrix(matrix.variables, matrix.codes, matrix.state_names)


@pytest.mark.parametrize("size", list(SIZES), ids=list(SIZES))
def test_bench_cpt_learning(benchmark, size, base_population, model_builder,
                            structure, regulator_prior):
    store = tiled_store(base_population.to_store(), SIZES[size])
    matrix = model_builder.case_generator().case_matrix(store)
    estimator = BayesianEstimator(structure, prior_network=regulator_prior,
                                  equivalent_sample_size=200)

    learned = benchmark(lambda: estimator.fit(fresh_matrix(matrix)))

    if benchmark.stats is not None:
        median = benchmark.stats.stats.median
        cases_per_second = len(matrix) / median
        benchmark.extra_info["cases"] = len(matrix)
        benchmark.extra_info["cases_per_second"] = round(cases_per_second)
        print()
        print(format_table(
            ["Devices", "Cases", "Median fit (ms)", "Cases / s"],
            [[SIZES[size], len(matrix), f"{median * 1e3:.2f}",
              f"{cases_per_second:,.0f}"]],
            title="Columnar CPT learning throughput"))
    assert set(learned.nodes) == set(structure.nodes)


def test_columnar_fit_at_least_5x_faster_than_rows(base_population,
                                                   model_builder, structure,
                                                   regulator_prior):
    """Acceptance: batched estimation ≥5x over the row path, same cases."""
    generator = model_builder.case_generator()
    matrix = generator.case_matrix(base_population.to_store())
    rows = CaseGenerator.as_learning_cases(
        generator.cases_from_results(base_population.results))
    estimator = BayesianEstimator(structure, prior_network=regulator_prior,
                                  equivalent_sample_size=200)

    def best_of(fit_input_factory, rounds=3):
        timings = []
        for _ in range(rounds):
            fit_input = fit_input_factory()
            start = time.perf_counter()
            estimator.fit(fit_input)
            timings.append(time.perf_counter() - start)
        return min(timings)

    row_time = best_of(lambda: rows)
    columnar_time = best_of(lambda: fresh_matrix(matrix))
    speedup = row_time / columnar_time
    print(f"\nrow fit {row_time * 1e3:.1f} ms, columnar fit "
          f"{columnar_time * 1e3:.2f} ms ({speedup:.1f}x, {len(matrix)} cases)")
    assert speedup >= 5.0


_MEMORY_PROBE = """
import ctypes, json, resource, sys

# Opt out of transparent huge pages (PR_SET_THP_DISABLE): khugepaged can
# round every mapping up to 2 MB pages depending on prior system activity,
# inflating ru_maxrss by ~30% run-to-run.  This probe measures the
# workload, not kernel page policy.
try:
    ctypes.CDLL(None, use_errno=True).prctl(41, 1, 0, 0, 0)
except Exception:
    pass

from repro.ate import DeviceResultStore
from repro.bayesnet import BayesianEstimator
from repro.circuits import build_voltage_regulator
from repro.core import Dlog2BBN

store = DeviceResultStore.load(sys.argv[1])
circuit = build_voltage_regulator()
builder = Dlog2BBN(circuit.model, circuit.healthy_states)
structure = builder.build_structure().with_uniform_cpds(
    circuit.model.cardinalities(), circuit.model.state_names())
with open("/proc/self/statm") as handle:
    baseline = int(handle.read().split()[1]) * 4096
matrix = builder.case_generator().case_matrix(store)
estimator = BayesianEstimator(structure, equivalent_sample_size=200)
estimator.fit(matrix)
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
payload = store.values.nbytes + store.passed.nbytes + matrix.codes.nbytes
print(json.dumps({"peak_minus_baseline": peak - baseline,
                  "payload": payload}))
"""


def test_cpt_learning_memory_ceiling(base_population, tmp_path):
    """Peak RSS of a 100k-device fit stays under ~2x the raw array payload.

    The fit runs in a subprocess so ``ru_maxrss`` reflects only this
    workload; the baseline is sampled after imports and the (memory-mapped)
    store open, so the measured delta is the cost of case encoding plus
    estimation.  2x raw payload leaves room for the code planes and count
    buffers but rules out any per-case row materialisation — materialised
    ``DeviceResult`` rows at this scale would cost upwards of a gigabyte.

    A fixed 64 MB allowance absorbs kernel-side RSS noise (readahead,
    page-cache and huge-page interactions shift the identical child
    workload by tens of MB depending on prior system activity — e.g. when
    the whole test suite ran first); it is far below the failure mode this
    smoke is guarding against.
    """
    if not os.path.exists("/proc/self/statm"):
        pytest.skip("requires /proc for baseline RSS sampling")
    store = tiled_store(base_population.to_store(), SIZES["100k"])
    saved = store.save(tmp_path / "store")
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    # Pin allocator/threading knobs so the RSS reading is about the
    # workload, not about malloc arenas or BLAS thread-pool stacks.
    env["MALLOC_ARENA_MAX"] = "2"
    env["OPENBLAS_NUM_THREADS"] = env["OMP_NUM_THREADS"] = "1"

    noise_allowance = 64e6
    delta = ceiling = None
    for _ in range(3):  # retry: peak-RSS readings are noisy
        probe = subprocess.run(
            [sys.executable, "-c", _MEMORY_PROBE, str(saved)],
            capture_output=True, text=True, env=env, timeout=300)
        assert probe.returncode == 0, probe.stderr
        report = json.loads(probe.stdout)
        delta = report["peak_minus_baseline"]
        ceiling = 2.0 * report["payload"] + noise_allowance
        print(f"\npeak RSS delta {delta / 1e6:.1f} MB over a "
              f"{report['payload'] / 1e6:.1f} MB payload "
              f"(ceiling {ceiling / 1e6:.1f} MB)")
        if delta < ceiling:
            break
    assert delta < ceiling
