"""Batched compiled-inference throughput — the 1k-device posterior sweep.

``CompiledProgram.run_batch`` pushes a whole failing population through the
traced op-list with a leading device axis: one vectorised pass instead of
one interpreted sweep per device.  This benchmark times that kernel on a
1000-device workload against the per-device interpreted loop (cold
``cache_size=1`` variable-elimination sweeps, the pre-compilation serving
path) and asserts the batched sweep is at least 5x faster end to end.
"""

from __future__ import annotations

import time

import pytest

from repro.ate import PopulationGenerator
from repro.bayesnet.inference import JunctionTree, VariableElimination
from repro.circuits import BehavioralSimulator
from repro.core import DiagnosisEngine, Dlog2BBN
from repro.utils.tables import format_table

DEVICES = 1000
MAX_DISTINCT = 48
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def sweep_evidences(regulator_circuit, regulator_program):
    """Distinct failing-device evidence maps sharing one signature."""
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=61)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=62)
    population = generator.generate(failed_count=80)
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    cases = builder.case_generator().case_matrix(
        population.to_store()).to_labeled_cases()
    evidences = []
    seen = set()
    signature = None
    for case in cases:
        if not case.failed:
            continue
        observed = case.observed()
        key = tuple(sorted(observed.items()))
        if key in seen:
            continue
        if signature is None:
            signature = tuple(sorted(observed))
        elif tuple(sorted(observed)) != signature:
            continue
        seen.add(key)
        evidences.append(observed)
        if len(evidences) >= MAX_DISTINCT:
            break
    assert len(evidences) >= 8
    return evidences


@pytest.fixture(scope="module")
def device_workload(sweep_evidences):
    """The 1k-device sweep: distinct evidences tiled across the population."""
    return [sweep_evidences[index % len(sweep_evidences)]
            for index in range(DEVICES)]


def test_bench_compiled_batch_sweep(benchmark, built_model, device_workload):
    network = built_model.network
    signature = tuple(sorted(device_workload[0]))
    program = JunctionTree(network).compile_posteriors(signature)
    codes = program.encode(device_workload)

    # Reference: the per-device interpreted loop this kernel replaces —
    # one cold all-marginals elimination sweep per device (cache_size=1:
    # population devices rarely repeat exact failing conditions, so the
    # pre-compilation serving path really does pay one sweep per device).
    interpreted = VariableElimination(network, cache_size=1)
    free = [node for node in network.nodes if node not in signature]
    started = time.perf_counter()
    for evidence in device_workload:
        interpreted.posteriors(free, evidence)
    interpreted_elapsed = time.perf_counter() - started

    batch = benchmark(program.run_batch, codes, on_impossible="mask")
    compiled_elapsed = benchmark.stats.stats.median \
        if benchmark.stats is not None else None
    assert batch.planes.shape == (DEVICES, len(program.variables),
                                  program.max_states)
    assert (batch.evidence_probability > 0).all()

    if compiled_elapsed is None:  # pragma: no cover - non-benchmark runs
        return
    speedup = interpreted_elapsed / compiled_elapsed
    print()
    print(format_table(
        ["Devices", "Interpreted loop (s)", "Compiled batch (s)",
         "Speedup", "Devices/s (compiled)"],
        [[DEVICES, f"{interpreted_elapsed:.3f}", f"{compiled_elapsed:.4f}",
          f"{speedup:.1f}x", f"{DEVICES / compiled_elapsed:,.0f}"]],
        title="Batched compiled posterior sweep vs per-device loop"))
    benchmark.extra_info["interpreted_loop_s"] = round(interpreted_elapsed, 4)
    benchmark.extra_info["speedup_vs_interpreted"] = round(speedup, 2)
    benchmark.extra_info["devices_per_s"] = round(DEVICES / compiled_elapsed)
    assert speedup >= MIN_SPEEDUP


def test_bench_compiled_diagnose_batch(benchmark, built_model,
                                       device_workload):
    """End-to-end ``diagnose_batch`` on the compiled engine (1k devices)."""
    engine = DiagnosisEngine(built_model, inference="jt", compiled=True)
    engine.warm_compile(tuple(sorted(device_workload[0])))

    results = benchmark(engine.diagnose_batch, device_workload,
                        on_error="collect")
    assert len(results) == DEVICES
    assert all(result.ok for result in results)
    if benchmark.stats is not None:
        median = benchmark.stats.stats.median
        benchmark.extra_info["devices_per_s"] = round(DEVICES / median)
        benchmark.extra_info["compile_ms"] = round(engine.compile_ms, 3)


def test_batch_sweep_matches_single_queries(built_model, device_workload):
    """The batched planes agree with per-device compiled runs at 1e-12."""
    network = built_model.network
    signature = tuple(sorted(device_workload[0]))
    program = JunctionTree(network).compile_posteriors(signature)
    distinct = device_workload[:16]
    batch = program.run_batch(distinct, on_impossible="mask")
    for row, evidence in enumerate(distinct):
        single = program.run(evidence)
        marginals = batch.distributions(row)
        for variable, values in single.items():
            names = program.state_names[variable]
            for state, probability in zip(names, values):
                assert marginals[variable][state] == pytest.approx(
                    float(probability), abs=1e-12)
