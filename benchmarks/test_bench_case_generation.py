"""Throughput benchmark — Dlog2BBN case generation from ATE results.

Times the conversion of a 250-device no-stop-on-fail population into BBN
learning cases: condition grouping once per program, array discretisation of
every measurement column, and per-device case materialisation.
"""

from __future__ import annotations

import pytest

from repro.ate import PopulationGenerator
from repro.circuits import BehavioralSimulator
from repro.core import CaseGenerator


@pytest.fixture(scope="module")
def case_population(regulator_circuit, regulator_program):
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=221)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=222)
    return generator.generate(failed_count=200, passing_count=50)


def test_bench_case_generation(benchmark, regulator_circuit, case_population):
    generator = CaseGenerator(regulator_circuit.model)

    cases = benchmark(generator.cases_from_results, case_population.results)

    median = benchmark.stats.stats.median
    print()
    print(f"Generated {len(cases)} learning cases from "
          f"{len(case_population)} devices in {median * 1e3:.2f} ms median — "
          f"{len(cases) / median:,.0f} cases/s")

    # One case per (device, distinct condition set).
    conditions = {tuple(sorted(m.conditions.items()))
                  for result in case_population.results
                  for m in result.measurements}
    assert len(cases) == len(case_population) * len(conditions)
    # Batched output must equal the scalar per-device path.
    scalar = []
    for result in case_population.results[:10]:
        scalar.extend(generator.cases_from_device_result(result))
    assert cases[:len(scalar)] == scalar
