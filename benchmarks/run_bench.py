#!/usr/bin/env python
"""Run the benchmark harness and snapshot kernel medians to ``BENCH_<n>.json``.

Runs ``pytest benchmarks/ --benchmark-only`` (all seeds are fixed in
``benchmarks/conftest.py``, so successive runs regenerate the same artefacts)
and writes a ``BENCH_<n>.json`` snapshot mapping every benchmark kernel to
its median runtime in seconds.  ``<n>`` is one past the highest existing
snapshot, so the sequence ``BENCH_0.json, BENCH_1.json, ...`` tracks the
performance trajectory across PRs.  When a previous snapshot exists, the new
snapshot also records the per-kernel speedup against it.

Usage::

    python benchmarks/run_bench.py [--output-dir DIR] [--keyword EXPR]

``--keyword`` is forwarded to ``pytest -k`` to restrict the run while
iterating; full snapshots should run the whole harness.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def next_snapshot_index(output_dir: Path) -> int:
    indices = [int(match.group(1))
               for path in output_dir.glob("BENCH_*.json")
               if (match := SNAPSHOT_PATTERN.match(path.name))]
    return max(indices) + 1 if indices else 0


def load_medians(snapshot_path: Path) -> dict[str, float]:
    data = json.loads(snapshot_path.read_text())
    return {name: entry["median_s"] for name, entry in data["kernels"].items()}


def run_benchmarks(keyword: str | None) -> tuple[int, dict[str, float]]:
    """Run the harness; return the pytest exit code and kernel medians."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "benchmark.json"
        command = [sys.executable, "-m", "pytest", "benchmarks/",
                   "--benchmark-only", "-q",
                   f"--benchmark-json={json_path}"]
        if keyword:
            command += ["-k", keyword]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if not json_path.exists():
            raise SystemExit(
                f"pytest did not produce {json_path} (exit {completed.returncode}); "
                "is pytest-benchmark installed?")
        report = json.loads(json_path.read_text())
    medians = {bench["name"]: float(bench["stats"]["median"])
               for bench in report["benchmarks"]}
    return completed.returncode, medians


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where BENCH_<n>.json snapshots live (repo root)")
    parser.add_argument("--keyword", default=None,
                        help="pytest -k expression to restrict the run")
    args = parser.parse_args()

    output_dir = args.output_dir.resolve()
    index = next_snapshot_index(output_dir)
    previous = output_dir / f"BENCH_{index - 1}.json" if index else None

    exit_code, medians = run_benchmarks(args.keyword)
    snapshot: dict[str, object] = {
        "snapshot": index,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "command": "pytest benchmarks/ --benchmark-only"
                   + (f" -k {args.keyword}" if args.keyword else ""),
        "pytest_exit_code": exit_code,
        "kernels": {name: {"median_s": median}
                    for name, median in sorted(medians.items())},
    }

    if previous is not None and previous.exists():
        baseline = load_medians(previous)
        speedups = {}
        for name, median in medians.items():
            if name in baseline and median > 0:
                entry = snapshot["kernels"][name]
                entry["baseline_median_s"] = baseline[name]
                entry["speedup_vs_previous"] = round(baseline[name] / median, 3)
                speedups[name] = entry["speedup_vs_previous"]
        snapshot["baseline_snapshot"] = previous.name
        snapshot["speedup_vs_previous"] = speedups

    target = output_dir / f"BENCH_{index}.json"
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    for name, entry in sorted(snapshot["kernels"].items()):
        line = f"  {name}: {entry['median_s']:.6f}s"
        if "speedup_vs_previous" in entry:
            line += f" ({entry['speedup_vs_previous']}x vs {previous.name})"
        print(line)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
