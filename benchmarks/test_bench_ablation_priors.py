"""Ablation — designer prior vs uniform prior before fine-tuning.

DESIGN.md calls out the role of the designer-provided CPT estimate.  This
ablation builds the regulator model three ways — designer (simulation) prior
only, uniform prior fine-tuned on the 70 failed devices, and designer prior
fine-tuned on the same devices — and scores each on the five paper cases.
Expected shape: the designer prior is what makes the paper cases diagnosable;
a uniform prior fine-tuned on observables alone cannot localise internal
blocks because their states never appear in the ATE cases.
"""

from __future__ import annotations

from repro.core import DiagnosisEngine, Dlog2BBN
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES, PAPER_EXPECTED_SUSPECTS
from repro.utils.tables import format_table


def score_engine(engine):
    exact = overlap = 0
    for diagnosis in engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES):
        suspects = set(diagnosis.suspects)
        expected = set(PAPER_EXPECTED_SUSPECTS[diagnosis.case_name])
        exact += suspects == expected
        overlap += bool(suspects & expected)
    return exact, overlap


def run_ablation(regulator_circuit, regulator_prior, failed_population):
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    cases = builder.case_generator().case_matrix(failed_population.to_store())

    designer_only = builder.build(prior_network=regulator_prior)
    uniform_tuned = builder.build(cases, method="bayes",
                                  prior_network=builder.build_structure().with_uniform_cpds(
                                      regulator_circuit.model.cardinalities(),
                                      regulator_circuit.model.state_names()),
                                  equivalent_sample_size=50)
    designer_tuned = builder.build(cases, method="bayes",
                                   prior_network=regulator_prior,
                                   equivalent_sample_size=200)
    return {
        "designer prior only": score_engine(DiagnosisEngine(designer_only)),
        "uniform prior + 70 devices": score_engine(DiagnosisEngine(uniform_tuned)),
        "designer prior + 70 devices": score_engine(DiagnosisEngine(designer_tuned)),
    }


def test_bench_ablation_priors(benchmark, regulator_circuit, regulator_prior,
                               failed_population):
    scores = benchmark(run_ablation, regulator_circuit, regulator_prior,
                       failed_population)

    rows = [[name, exact, overlap] for name, (exact, overlap) in scores.items()]
    print()
    print(format_table(["Configuration", "Exact suspect matches (of 5)",
                        "Overlapping matches (of 5)"], rows,
                       title="Ablation: designer prior vs uniform prior"))

    designer_exact, _ = scores["designer prior + 70 devices"]
    uniform_exact, _ = scores["uniform prior + 70 devices"]
    assert designer_exact >= 3
    assert designer_exact >= uniform_exact
