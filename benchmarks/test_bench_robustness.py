"""Robust serving overhead — the fallback wrapper must be near-free when healthy.

The robustness layer (evidence validation, provenance annotation, fallback
bookkeeping) wraps every diagnosis on the service path, so its healthy-path
cost is pure overhead on the Table VI kernel.  The timed kernel is the five
diagnostic queries through :class:`RobustDiagnosisEngine` with the default
policy (no deadline, so no threading); a paired measurement against the plain
:class:`DiagnosisEngine` asserts the wrapper stays within the <5% budget
(plus a millisecond of absolute tolerance — the kernel is ~6 ms, so the
timer's noise floor matters).
"""

from __future__ import annotations

import time

from repro.core import DiagnosisEngine, FallbackPolicy, RobustDiagnosisEngine
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES

#: Interleaved timing rounds per engine; min-of-rounds is the noise floor.
ROUNDS = 9
#: Relative overhead budget for the robustness wrapper.
OVERHEAD_BUDGET = 0.05
#: Absolute slack for scheduler/timer jitter on a millisecond-scale kernel.
ABSOLUTE_SLACK_S = 0.001


def _min_runtime(target) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        target()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_robust_serving_overhead(benchmark, built_model):
    robust = RobustDiagnosisEngine(built_model, FallbackPolicy())
    plain = DiagnosisEngine(built_model)

    diagnoses = benchmark(robust.diagnose_batch, PAPER_DIAGNOSTIC_CASES)

    # The wrapper changes provenance, never answers: suspect-for-suspect
    # identical to the plain engine on the healthy path.
    reference = plain.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
    for ours, theirs in zip(diagnoses, reference):
        assert ours.suspects == theirs.suspects
        assert ours.posteriors == theirs.posteriors
        assert ours.provenance is not None
        assert not ours.provenance.degraded

    # Paired overhead measurement on warmed engines (both have served the
    # five cases once by now, so caches are in the same state).
    plain_floor = _min_runtime(
        lambda: plain.diagnose_batch(PAPER_DIAGNOSTIC_CASES))
    robust_floor = _min_runtime(
        lambda: robust.diagnose_batch(PAPER_DIAGNOSTIC_CASES))
    budget = plain_floor * (1.0 + OVERHEAD_BUDGET) + ABSOLUTE_SLACK_S

    print()
    print("Robust serving overhead on the Table VI kernel:")
    print(f"  plain  DiagnosisEngine        min of {ROUNDS}: {plain_floor:.6f}s")
    print(f"  RobustDiagnosisEngine         min of {ROUNDS}: {robust_floor:.6f}s")
    print(f"  overhead: {(robust_floor / plain_floor - 1.0) * 100.0:+.2f}% "
          f"(budget {OVERHEAD_BUDGET * 100.0:.0f}% + {ABSOLUTE_SLACK_S * 1e3:.0f}ms)")

    assert robust_floor <= budget, (
        f"robustness wrapper overhead {robust_floor:.6f}s exceeds budget "
        f"{budget:.6f}s ({plain_floor:.6f}s plain)")
