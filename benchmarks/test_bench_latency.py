"""Interactive single-device diagnosis latency — p50 / p99.

The batched data path optimises training and population-scale serving, but
the debug-bench workflow stays interactive: one failing device on the
bench, one posterior update, an engineer waiting for the suspect list.
This benchmark pins the tail latency of that path for both exact engines
(variable elimination and the junction tree, whose single-query path keeps
a per-calibration marginal memo).  Engines run with ``cache_size=1`` and a
rotating evidence set so every timed call is a cold inference sweep, not an
evidence-cache hit.

The compiled variants time the same workload through ahead-of-time
:class:`~repro.bayesnet.inference.CompiledProgram` op-lists
(``DiagnosisEngine(compiled=True)``): the sweep is traced once per
evidence signature at warm-up (compile time reported, never timed) and
every timed call is pure array execution — the sub-millisecond SLO the
serving story depends on, asserted at p50 < 1 ms for the junction tree.
"""

from __future__ import annotations

import time

import pytest

from repro.ate import PopulationGenerator
from repro.circuits import BehavioralSimulator
from repro.core import DiagnosisEngine, Dlog2BBN
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.utils.tables import format_table

SAMPLES = 200
MAX_EVIDENCES = 48


@pytest.fixture(scope="module")
def latency_evidences(regulator_circuit, regulator_program):
    """Distinct single-device evidence maps: paper cases + fresh devices."""
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=51)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=52)
    population = generator.generate(failed_count=60)
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    cases = builder.case_generator().case_matrix(
        population.to_store()).to_labeled_cases()
    evidences = [case.evidence() for case in PAPER_DIAGNOSTIC_CASES]
    seen = {tuple(sorted(evidence.items())) for evidence in evidences}
    for case in cases:
        if not case.failed:
            continue
        observed = case.observed()
        key = tuple(sorted(observed.items()))
        if key in seen:
            continue
        seen.add(key)
        evidences.append(observed)
        if len(evidences) >= MAX_EVIDENCES:
            break
    return evidences


def percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1,
                round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


@pytest.mark.parametrize("inference", ["ve", "jt"])
def test_bench_single_device_latency(benchmark, built_model,
                                     latency_evidences, inference):
    engine = DiagnosisEngine(built_model, inference=inference, cache_size=1)
    # One warm-up call pays the one-time costs (model validation memos,
    # elimination orders / tree compilation) that a resident bench-station
    # service would have amortised long before the device arrives.
    engine.diagnose_evidence(latency_evidences[0], name="warmup")

    timings = []
    for sample in range(SAMPLES):
        evidence = latency_evidences[sample % len(latency_evidences)]
        start = time.perf_counter()
        engine.diagnose_evidence(evidence, name=f"s{sample}")
        timings.append(time.perf_counter() - start)
    timings.sort()
    p50 = percentile(timings, 0.50)
    p99 = percentile(timings, 0.99)

    cursor = {"next": 0}

    def one_device():
        index = cursor["next"]
        cursor["next"] = (index + 1) % len(latency_evidences)
        return engine.diagnose_evidence(latency_evidences[index],
                                        name="bench")

    diagnosis = benchmark(one_device)

    print()
    print(format_table(
        ["Engine", "Evidences", "p50 (ms)", "p99 (ms)"],
        [[inference, len(latency_evidences), f"{p50 * 1e3:.2f}",
          f"{p99 * 1e3:.2f}"]],
        title="Single-device diagnosis latency"))
    if benchmark.stats is not None:
        benchmark.extra_info["p50_ms"] = round(p50 * 1e3, 3)
        benchmark.extra_info["p99_ms"] = round(p99 * 1e3, 3)
    assert diagnosis.suspects is not None
    # Interactive budget: the median must feel instant, the tail must not
    # stall the bench station.
    assert p50 < 0.050
    assert p99 < 0.250


@pytest.mark.parametrize("inference", ["ve", "jt"])
def test_bench_compiled_single_device_latency(benchmark, built_model,
                                              latency_evidences, inference):
    engine = DiagnosisEngine(built_model, inference=inference,
                             compiled=True, cache_size=1)
    # Warm-up pass: compiles one program per evidence-variable signature in
    # the workload (real deployments warm-compile at worker init), so the
    # timed region below is pure compiled-query execution.
    for evidence in latency_evidences:
        engine.diagnose_evidence(evidence, name="warmup")
    compile_ms = engine.compile_ms

    timings = []
    for sample in range(SAMPLES):
        evidence = latency_evidences[sample % len(latency_evidences)]
        start = time.perf_counter()
        engine.diagnose_evidence(evidence, name=f"s{sample}")
        timings.append(time.perf_counter() - start)
    timings.sort()
    p50 = percentile(timings, 0.50)
    p99 = percentile(timings, 0.99)

    cursor = {"next": 0}

    def one_device():
        index = cursor["next"]
        cursor["next"] = (index + 1) % len(latency_evidences)
        return engine.diagnose_evidence(latency_evidences[index],
                                        name="bench")

    diagnosis = benchmark(one_device)

    print()
    print(format_table(
        ["Engine", "Evidences", "Programs", "Compile (ms)", "p50 (ms)",
         "p99 (ms)"],
        [[f"{inference} (compiled)", len(latency_evidences),
          engine.compile_count, f"{compile_ms:.1f}", f"{p50 * 1e3:.2f}",
          f"{p99 * 1e3:.2f}"]],
        title="Compiled single-device diagnosis latency"))
    if benchmark.stats is not None:
        benchmark.extra_info["p50_ms"] = round(p50 * 1e3, 3)
        benchmark.extra_info["p99_ms"] = round(p99 * 1e3, 3)
        benchmark.extra_info["compile_ms"] = round(compile_ms, 3)
        benchmark.extra_info["programs_compiled"] = engine.compile_count
    assert diagnosis.suspects is not None
    assert engine.compiled_query_count > SAMPLES
    # The compiled-inference SLO: a cold single-device posterior update on
    # the junction-tree schedule must land under a millisecond at the
    # median, with a loose tail bound for CI noise.
    assert p50 < 0.001
    assert p99 < 0.010


def test_compiled_engine_agrees_on_latency_workload(built_model,
                                                    latency_evidences):
    """Compiled programs reproduce the interpreted posteriors at 1e-12."""
    interpreted = DiagnosisEngine(built_model, inference="jt", cache_size=1)
    compiled = DiagnosisEngine(built_model, inference="jt", compiled=True,
                               cache_size=1)
    for number, evidence in enumerate(latency_evidences[:10]):
        ours = compiled.diagnose_evidence(evidence, name=f"agree{number}")
        theirs = interpreted.diagnose_evidence(evidence,
                                               name=f"agree{number}")
        assert ours.suspects == theirs.suspects, evidence
        for variable, distribution in theirs.posteriors.items():
            for state, probability in distribution.items():
                assert probability == pytest.approx(
                    ours.posteriors[variable][state], abs=1e-12)


def test_exact_engines_agree_on_latency_workload(built_model,
                                                 latency_evidences):
    """Both timed engines produce identical suspect lists on the workload."""
    ve = DiagnosisEngine(built_model, inference="ve", cache_size=1)
    jt = DiagnosisEngine(built_model, inference="jt", cache_size=1)
    for number, evidence in enumerate(latency_evidences[:10]):
        ours = ve.diagnose_evidence(evidence, name=f"agree{number}")
        theirs = jt.diagnose_evidence(evidence, name=f"agree{number}")
        assert ours.suspects == theirs.suspects, evidence
        for variable, distribution in ours.posteriors.items():
            for state, probability in distribution.items():
                assert probability == pytest.approx(
                    theirs.posteriors[variable][state], abs=1e-9)
