"""Fig. 1 + Table I + Table II — the hypothetical circuit and its BBN structure.

Regenerates the paper's teaching example: the four-block hypothetical circuit
(Fig. 1a), its BBN structural model (Fig. 1b), the model functional types
(Table I) and the model-variable state definitions (Table II).
"""

from __future__ import annotations

from repro.circuits import build_hypothetical_circuit
from repro.utils.tables import format_table


def build_structure_artifacts():
    circuit = build_hypothetical_circuit()
    model = circuit.model
    type_rows = model.functional_type_rows()
    state_rows = model.state_definition_rows()
    edges = model.dependencies
    return type_rows, state_rows, edges


def test_bench_fig1_hypothetical_structure(benchmark):
    type_rows, state_rows, edges = benchmark(build_structure_artifacts)

    print()
    print(format_table(["Model", "Type", "Remarks"], type_rows,
                       title="Table I: model functional type"))
    print()
    print(format_table(["Block", "State", "LLimit", "ULimit", "Remarks"],
                       state_rows,
                       title="Table II: model variables state definitions"))
    print()
    print(format_table(["Parent", "Child"], edges,
                       title="Fig. 1b: BBN structural model (dependency arcs)"))

    # Table I shape: four model variables with the paper's functional types.
    assert len(type_rows) == 4
    types = {row[0]: row[1] for row in type_rows}
    assert types["block1"] == "CONTROL"
    assert types["block2"] == "CONTROL/OBSERVE"
    assert types["block3"] == "NOT CONTROL/OBSERVE"
    assert types["block4"] == "OBSERVE"
    # Table II shape: Block-1 has three usable states, the others two.
    per_block = {}
    for block, *_ in state_rows:
        per_block[block] = per_block.get(block, 0) + 1
    assert per_block == {"block1": 3, "block2": 2, "block3": 2, "block4": 2}
    # Fig. 1b: the three dependency arcs of the paper.
    assert set(edges) == {("block1", "block2"), ("block1", "block3"),
                          ("block3", "block4")}
