"""Table VII — model-variable state probabilities for Init and cases d1–d5.

Regenerates the paper's headline result table: for every model variable and
usable state, the voltage limits, remark, post-learning prior probability and
the updated posterior for each diagnostic case.  Absolute percentages cannot
match the paper digit-for-digit (the CPTs there were fine-tuned on 70
proprietary customer returns); the assertions check the *shape*: evidence
rows pin to 100 %, and the qualitative health calls the paper discusses per
case hold (lcbg healthy in d1, suspicious in d4; enb13 inactive in d2;
enbsw inactive in d5; warnvpst off in d3).
"""

from __future__ import annotations

from repro.core import DiagnosticReport
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES, PAPER_INTERNAL_PROBABILITIES


def build_report(engine, built_model):
    initial = engine.initial_probabilities()
    diagnoses = engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
    return DiagnosticReport(built_model, initial, diagnoses), diagnoses


def test_bench_table7_diagnostic_report(benchmark, diagnosis_engine, built_model):
    report, diagnoses = benchmark(build_report, diagnosis_engine, built_model)

    print()
    print(report.to_text("Table VII: diagnostic case studies — model variable "
                         "state probabilities (reproduction)"))
    print()
    print("Paper vs measured fail probability of the internal variables:")
    for diagnosis in diagnoses:
        paper = PAPER_INTERNAL_PROBABILITIES[diagnosis.case_name]
        row = []
        for variable in sorted(paper):
            healthy = diagnosis_engine.healthy_states[variable]
            paper_fail = 1.0 - paper[variable].get(healthy, 0.0)
            measured_fail = diagnosis.fail_probabilities[variable]
            row.append(f"{variable}: paper={paper_fail:.2f} ours={measured_fail:.2f}")
        print(f"  {diagnosis.case_name}: " + "; ".join(row))

    by_name = {diagnosis.case_name: diagnosis for diagnosis in diagnoses}

    # Evidence rows pin to 100 % exactly as in the paper's table.
    for case in PAPER_DIAGNOSTIC_CASES:
        diagnosis = by_name[case.name]
        for variable, state in case.evidence().items():
            assert report.probability(case.name, variable, state) > 0.999

    # Qualitative per-case calls from Section IV-B of the paper.
    assert by_name["d1"].posteriors["lcbg"]["1"] > 0.8          # lcbg functioning
    assert by_name["d1"].fail_probabilities["hcbg"] > 0.3       # hcbg suspicious
    assert by_name["d2"].posteriors["enb13"]["0"] > 0.5         # enb13 non-active
    assert by_name["d3"].posteriors["warnvpst"]["0"] > 0.5      # warning off
    assert by_name["d4"].fail_probabilities["lcbg"] > 0.5       # lcbg suspicious
    assert by_name["d5"].ranked_candidates[0][0] == "enbsw"     # enbsw implicated
    # d4 vs d1 contrast: lcbg is much more suspicious in d4 than in d1.
    assert by_name["d4"].fail_probabilities["lcbg"] > \
        by_name["d1"].fail_probabilities["lcbg"] + 0.3
