"""Fig. 2/Fig. 3 + Table V — the voltage regulator's model variables and BBN structure.

Regenerates Table V (the 19 BBN model variables with circuit references and
functional types) and the Fig. 3 dependency arcs of the multiple-output
voltage regulator.
"""

from __future__ import annotations

from repro.circuits import build_voltage_regulator
from repro.core.blocks import BlockType
from repro.utils.tables import format_table


def build_regulator_structure():
    circuit = build_voltage_regulator()
    model = circuit.model
    rows = [[variable.name, variable.circuit_reference or "-",
             variable.block_type.value]
            for variable in model.variables]
    return model, rows


def test_bench_fig3_table5_regulator_structure(benchmark):
    model, rows = benchmark(build_regulator_structure)

    print()
    print(format_table(["MVar.", "Ckt. Ref.", "Type"], rows,
                       title="Table V: BBN model variables of the voltage regulator"))
    print()
    print(format_table(["Parent", "Child"], model.dependencies,
                       title="Fig. 3: BBN structural dependencies (reconstructed)"))

    # Table V shape: 19 model variables, 6 controllable, 5 observable, 8 internal.
    assert len(rows) == 19
    assert len(model.variables_of_type(BlockType.CONTROL)) == 6
    assert len(model.variables_of_type(BlockType.OBSERVE)) == 5
    assert len(model.variables_of_type(BlockType.INTERNAL)) == 8
    # vx and hcbg have no circuit reference ("not depicted" in the paper).
    references = {row[0]: row[1] for row in rows}
    assert references["vx"] == "-"
    assert references["hcbg"] == "-"
    # Structural facts the paper states explicitly.
    assert set(model.parents_of("warnvpst")) >= {"lcbg", "hcbg"}
    assert set(model.parents_of("vx")) == {"enb13_pin", "enb4_pin", "enbsw_pin"}
    assert model.graph.topological_sort()  # acyclic
