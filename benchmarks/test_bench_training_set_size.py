"""Extra experiment — sensitivity to the number of failed training devices.

The paper fine-tuned the regulator CPTs with cases from 70 failed products.
This benchmark sweeps the training-set size (0, 10, 30, 70 devices) and
reports the log-likelihood the fine-tuned model assigns to a held-out failed
population.  Expected shape: more training devices never hurt the held-out
fit, and the designer prior alone (0 devices) is already usable — which is
exactly why the paper's flow starts from the designer estimate.
"""

from __future__ import annotations

import numpy as np

from repro.ate import PopulationGenerator
from repro.bayesnet import VariableElimination
from repro.circuits import BehavioralSimulator
from repro.core import Dlog2BBN
from repro.utils.tables import format_table

TRAINING_SIZES = [0, 10, 30, 70]


def heldout_log_likelihood(network, evidence_list):
    engine = VariableElimination(network)
    probabilities = engine.probabilities_of_evidence(evidence_list)
    return float(np.mean(np.log(np.maximum(probabilities, 1e-12))))


def sweep(regulator_circuit, regulator_program, regulator_prior):
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=111)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=112)
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    case_generator = builder.case_generator()

    training = generator.generate(failed_count=max(TRAINING_SIZES))
    training_store = training.to_store()
    heldout = generator.generate(failed_count=25)
    heldout_evidence = [case.observed() for case in
                        case_generator.case_matrix(
                            heldout.to_store(),
                            only_failing_devices=True).to_labeled_cases()]

    results = []
    for size in TRAINING_SIZES:
        cases = case_generator.case_matrix(
            training_store.select(np.arange(size))) if size else []
        built = builder.build(cases, method="bayes", prior_network=regulator_prior,
                              equivalent_sample_size=50)
        results.append((size, len(cases),
                        heldout_log_likelihood(built.network, heldout_evidence)))
    return results


def test_bench_training_set_size(benchmark, regulator_circuit, regulator_program,
                                 regulator_prior):
    results = benchmark(sweep, regulator_circuit, regulator_program,
                        regulator_prior)

    rows = [[size, cases, f"{loglik:.3f}"] for size, cases, loglik in results]
    print()
    print(format_table(["Failed devices", "Learning cases", "Held-out mean log-likelihood"],
                       rows, title="Training-set-size sweep (paper used 70 devices)"))

    logliks = [loglik for _, _, loglik in results]
    # The designer prior alone must already explain the held-out evidence
    # reasonably, and the 70-device model must not be worse than the
    # 10-device model by more than a small tolerance.
    assert all(np.isfinite(value) for value in logliks)
    assert logliks[-1] >= logliks[1] - 0.5
