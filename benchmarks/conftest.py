"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one of the
extra experiments listed in DESIGN.md).  The regenerated artefact is printed
to stdout (run pytest with ``-s`` to see the tables) and the timed portion is
the computational kernel behind it, so ``pytest benchmarks/ --benchmark-only``
both reproduces the artefacts and reports their cost.
"""

from __future__ import annotations

import pytest

from repro.ate import PopulationGenerator
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, build_hypothetical_circuit, build_voltage_regulator
from repro.core import DiagnosisEngine, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder

#: Seeds used throughout the harness so every run regenerates the same tables.
PRIOR_SEED = 7
POPULATION_SEED = 12
SIMULATOR_SEED = 11


@pytest.fixture(scope="session")
def regulator_circuit():
    """The industrial voltage-regulator circuit bundle."""
    return build_voltage_regulator()


@pytest.fixture(scope="session")
def hypothetical_circuit():
    """The Fig. 1 hypothetical circuit bundle."""
    return build_hypothetical_circuit()


@pytest.fixture(scope="session")
def regulator_program(regulator_circuit):
    """The regulator's no-stop-on-fail functional test program."""
    return build_functional_program("vr_functional", regulator_circuit.model,
                                    REGULATOR_CONDITION_SETS)


@pytest.fixture(scope="session")
def regulator_simulator(regulator_circuit):
    """Behavioural simulator of the regulator with process variation."""
    return BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation,
        seed=SIMULATOR_SEED)


@pytest.fixture(scope="session")
def regulator_prior(regulator_circuit):
    """Simulation-derived designer prior (the paper's designer estimate)."""
    builder = SimulationPriorBuilder(
        regulator_circuit.netlist, regulator_circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=regulator_circuit.designer_fault_probabilities,
        process_variation=regulator_circuit.process_variation,
        samples=3000, seed=PRIOR_SEED)
    return builder.build()


@pytest.fixture(scope="session")
def failed_population(regulator_circuit, regulator_program, regulator_simulator):
    """The synthetic stand-in for the paper's 70 failed customer returns."""
    generator = PopulationGenerator(
        regulator_simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=POPULATION_SEED)
    return generator.generate(failed_count=70)


@pytest.fixture(scope="session")
def built_model(regulator_circuit, regulator_prior, failed_population):
    """The BBN circuit model: designer prior fine-tuned on the 70 failed devices."""
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    cases = builder.case_generator().cases_from_results(failed_population.results)
    return builder.build(cases, method="bayes", prior_network=regulator_prior,
                         equivalent_sample_size=200)


@pytest.fixture(scope="session")
def diagnosis_engine(built_model):
    """Diagnosis engine bound to the fine-tuned model."""
    return DiagnosisEngine(built_model)
