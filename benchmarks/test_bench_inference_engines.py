"""Extra experiment — exact vs approximate inference engines on the regulator BBN.

Netica (the paper's engine) compiles the network into a junction tree.  This
benchmark compares the posteriors and the runtime of variable elimination,
junction-tree belief propagation, likelihood weighting and Gibbs sampling on
the diagnostic query of case d1.  Expected shape: both exact engines agree to
numerical precision; the sampling engines approach them with bounded error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import GibbsSampling, JunctionTree, LikelihoodWeighting, VariableElimination
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.utils.tables import format_table

INTERNAL_QUERY = ["warnvpst", "hcbg", "lcbg", "enb13"]


@pytest.fixture(scope="module")
def evidence():
    return PAPER_DIAGNOSTIC_CASES[0].evidence()


def posterior_map(engine, evidence):
    return {variable: engine.posterior(variable, evidence)
            for variable in INTERNAL_QUERY}


@pytest.mark.parametrize("engine_name", ["variable_elimination", "junction_tree",
                                         "likelihood_weighting", "gibbs"])
def test_bench_inference_engines(benchmark, built_model, evidence, engine_name):
    network = built_model.network
    if engine_name == "variable_elimination":
        engine = VariableElimination(network)
    elif engine_name == "junction_tree":
        engine = JunctionTree(network)
    elif engine_name == "likelihood_weighting":
        engine = LikelihoodWeighting(network, num_samples=3000, seed=5)
    else:
        engine = GibbsSampling(network, num_samples=800, burn_in=100, seed=6)

    posteriors = benchmark(posterior_map, engine, evidence)

    exact = posterior_map(VariableElimination(network), evidence)
    rows = []
    worst = 0.0
    for variable in INTERNAL_QUERY:
        for state, probability in posteriors[variable].items():
            error = abs(probability - exact[variable][state])
            worst = max(worst, error)
            rows.append([variable, state, f"{exact[variable][state]:.4f}",
                         f"{probability:.4f}", f"{error:.4f}"])
    print()
    print(format_table(["Variable", "State", "Exact", engine_name, "Abs. error"],
                       rows, title=f"Case d1 posteriors: {engine_name} vs exact"))

    if engine_name in ("variable_elimination", "junction_tree"):
        assert worst < 1e-6
    else:
        assert worst < 0.12
