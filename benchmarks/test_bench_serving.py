"""Diagnosis-service throughput — worker scaling and healthy-path overhead.

The worker-pool service exists to push customer-return populations through
``diagnose_batch`` faster than one process can, without giving back its
robustness guarantees on the healthy path.  This benchmark measures
devices/second at 1, 2 and (when the machine has them) N workers against
the bare single-process engine on the same distinct-evidence workload, and
asserts the two service promises:

* healthy-path overhead: a 1-worker service stays within 10% of the bare
  engine (plus absolute slack for IPC/scheduler jitter), and
* scaling: 2 workers reach at least 1.8x the 1-worker throughput — only
  asserted when at least 2 CPUs are actually available (the paired
  measurement is meaningless on a single core; it is always printed).

Every engine runs with ``evidence_cache_size=1``: the population's cases
are distinct, and a deeper LRU would make repeat timing rounds
cache-warm and the paired comparison unfair.
"""

from __future__ import annotations

import os
import time

from repro.core import DiagnosisEngine, Dlog2BBN, FallbackPolicy
from repro.serving import DiagnosisService, ServiceConfig

#: Timing rounds per configuration; min-of-rounds is the noise floor.
ROUNDS = 3
#: Cases pushed through every configuration.
WORKLOAD = 200
#: Relative healthy-path overhead budget of a 1-worker service.
OVERHEAD_BUDGET = 0.10
#: Absolute slack for IPC and scheduler jitter on top of the budget.
ABSOLUTE_SLACK_S = 0.25
#: Required speedup of 2 workers over 1 (asserted on multi-core hosts).
MIN_SPEEDUP_2W = 1.8


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_runtime(target) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        target()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(regulator_circuit, failed_population):
    """Distinct-evidence cases: one per device/condition, capped."""
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    labeled = builder.case_generator().cases_from_results(
        failed_population.results)
    evidence = [case.observed() for case in labeled][:WORKLOAD]
    names = [f"bench-{index:04d}" for index in range(len(evidence))]
    return evidence, names


def _service_floor(built_model, policy, workers, evidence, names) -> float:
    config = ServiceConfig(num_workers=workers, chunk_size=16)
    with DiagnosisService(built_model, policy, config) as service:
        floor = _min_runtime(
            lambda: service.diagnose_batch(evidence, names=names,
                                           timeout=600))
        # correctness ride-along: nothing lost, nothing failed
        results = service.diagnose_batch(evidence, names=names, timeout=600)
        assert len(results) == len(evidence)
        assert all(result.ok for result in results)
        stats = service.stats()
        assert stats.queue_depth == 0 and stats.in_flight == 0
        assert stats.workers_alive == workers
    return floor


def test_bench_serving_throughput(benchmark, built_model, regulator_circuit,
                                  failed_population):
    evidence, names = _workload(regulator_circuit, failed_population)
    policy = FallbackPolicy(evidence_cache_size=1)
    bare = DiagnosisEngine(built_model, cache_size=1)

    # The timed kernel: the full workload through a 2-worker service.
    config = ServiceConfig(num_workers=2, chunk_size=16)
    with DiagnosisService(built_model, policy, config) as service:
        served = benchmark(service.diagnose_batch, evidence, names=names,
                           timeout=600)

    # Slot-for-slot parity with the bare engine on the same workload.
    reference = bare.diagnose_batch(evidence, names=names,
                                    on_error="collect")
    assert [r.case_name for r in served] == [r.case_name for r in reference]
    for ours, theirs in zip(served, reference):
        assert ours.ok == theirs.ok
        if ours.ok:
            assert ours.ranked_candidates[0][0] == \
                theirs.ranked_candidates[0][0]

    # Paired floors: bare engine vs 1/2/N workers, all equally cold.
    cpus = _available_cpus()
    bare_floor = _min_runtime(
        lambda: bare.diagnose_batch(evidence, names=names,
                                    on_error="collect"))
    floors = {1: _service_floor(built_model, policy, 1, evidence, names),
              2: _service_floor(built_model, policy, 2, evidence, names)}
    if cpus > 2:
        floors[cpus] = _service_floor(built_model, policy, cpus, evidence,
                                      names)

    n = len(evidence)
    print()
    print(f"Diagnosis-service throughput ({n} distinct cases, "
          f"{cpus} CPU(s) available):")
    print(f"  bare DiagnosisEngine   min of {ROUNDS}: {bare_floor:.3f}s "
          f"({n / bare_floor:7.1f} devices/s)")
    for workers, floor in sorted(floors.items()):
        print(f"  service, {workers} worker(s)  min of {ROUNDS}: "
              f"{floor:.3f}s ({n / floor:7.1f} devices/s, "
              f"{floors[1] / floor:.2f}x vs 1 worker)")

    # Promise 1: the pool's healthy-path overhead is bounded.
    overhead_budget = bare_floor * (1.0 + OVERHEAD_BUDGET) + ABSOLUTE_SLACK_S
    print(f"  1-worker overhead: "
          f"{(floors[1] / bare_floor - 1.0) * 100.0:+.1f}% "
          f"(budget {OVERHEAD_BUDGET * 100.0:.0f}% + "
          f"{ABSOLUTE_SLACK_S * 1e3:.0f}ms)")
    assert floors[1] <= overhead_budget, (
        f"1-worker service took {floors[1]:.3f}s against a budget of "
        f"{overhead_budget:.3f}s (bare: {bare_floor:.3f}s)")

    # Promise 2: adding a worker buys real throughput — multi-core only.
    speedup = floors[1] / floors[2]
    if cpus >= 2:
        assert speedup >= MIN_SPEEDUP_2W, (
            f"2 workers reached only {speedup:.2f}x over 1 worker "
            f"(required {MIN_SPEEDUP_2W}x on {cpus} CPUs)")
    else:
        print(f"  [single CPU: {MIN_SPEEDUP_2W}x scaling assertion skipped, "
              f"measured {speedup:.2f}x]")
