"""Durable cross-process state for the diagnosis service.

Three pieces make warm inference state survive worker crashes and service
restarts without ever risking a wrong answer:

* :class:`~repro.persist.cache.PosteriorCache` — a crash-safe, append-only
  on-disk cache of posterior planes and serialized compiled programs, with
  per-record CRC32 checksums, torn-tail recovery, corrupt-entry quarantine,
  LRU compaction and ``flock`` multi-process safety.
* :class:`~repro.persist.registry.ModelRegistry` — versioned, validation-
  gated atomic model hot-swap (publish → workers pick it up between
  chunks).
* :func:`~repro.persist.fingerprint.model_fingerprint` — content-addressed
  model identity, making every cache entry self-invalidating on CPD
  replacement.
"""

from repro.persist.cache import PosteriorCache, atomic_write_bytes
from repro.persist.fingerprint import FingerprintTracker, model_fingerprint
from repro.persist.registry import ModelRegistry

__all__ = [
    "FingerprintTracker",
    "ModelRegistry",
    "PosteriorCache",
    "atomic_write_bytes",
    "model_fingerprint",
]
