"""Versioned model registry with validation-gated atomic hot-swap.

A diagnosis fleet must be able to pick up a re-trained model without
restarting — and must *never* pick up a bad one.  :class:`ModelRegistry`
stores every published :class:`~repro.core.model_builder.BuiltModel` as an
immutable, CRC-protected artifact (``model-<version>.pkl``) and points a
single ``CURRENT`` stamp at the live version.  The swap is safe by
construction:

1. **Validation gate first.**  ``publish()`` runs
   :func:`~repro.core.model_builder.validate_built_network` (structure,
   CPT column sums, finiteness) plus a small parity smoke — the candidate's
   compiled empty-evidence program against the interpreted variable-
   elimination engine — *before* anything is renamed.  A failing candidate
   raises :class:`~repro.exceptions.ModelPublishError` and the registry is
   untouched: rollback means the swap never happened.
2. **Atomic artifacts.**  The model pickle is written to a tmp file,
   ``fsync``-able, checksummed, and ``os.rename``d; ``CURRENT`` (a tiny
   JSON stamp carrying version, filename and model fingerprint) is flipped
   last, also via rename.  A crash at any instant leaves either the old
   stamp or the new one — never a half-written model behind a live stamp.
3. **Cheap polling.**  Workers call :meth:`current_version` between chunks
   (one small file read); a bump tells them to reload, drop their evidence
   and program caches, and re-key their durable cache entries via the new
   model fingerprint.

Loads verify the artifact's magic and CRC32 and raise a structured
:class:`~repro.exceptions.ModelRegistryError` on any mismatch — a corrupt
registry refuses to serve rather than serving garbage.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import time
import zlib
from pathlib import Path

import numpy as np

from repro.core.model_builder import BuiltModel, validate_built_network
from repro.exceptions import (ModelPublishError, ModelRegistryError,
                              ReproError)
from repro.persist.cache import atomic_write_bytes
from repro.persist.fingerprint import model_fingerprint

try:  # pragma: no cover - always present on supported platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Model-artifact header: magic + uint32 CRC32 of the pickled payload.
MODEL_MAGIC = b"RPM1"
_MODEL_HEADER = struct.Struct("<4sI")

_CURRENT_FILE = "CURRENT"
_LOCK_FILE = "LOCK.registry"

#: Absolute tolerance of the publish-time compiled-vs-interpreted smoke.
_PARITY_ATOL = 1e-9


def _smoke_parity(model: BuiltModel) -> None:
    """Compare the candidate's compiled program against interpreted VE.

    Uses the empty evidence signature (prior marginals over every
    variable): it exercises the full contraction pipeline over every CPT
    without needing any case data, so a network that validates structurally
    but computes garbage (NaN tables slipped past, broken state ordering)
    is caught here, before the swap.
    """
    from repro.bayesnet.inference.variable_elimination import \
        VariableElimination

    engine = VariableElimination(model.network)
    program = engine.compile_posteriors(())
    compiled = program.posteriors({})
    interpreted = engine.posteriors(list(program.variables), {})
    for variable in program.variables:
        want = interpreted[variable]
        got = compiled[variable]
        for state, probability in want.items():
            if not np.isclose(got.get(state, np.nan), probability,
                              atol=_PARITY_ATOL, rtol=0.0):
                raise ModelPublishError(
                    f"publish-time parity smoke failed: compiled "
                    f"P({variable}={state}) = {got.get(state)!r} vs "
                    f"interpreted {probability!r}")


class ModelRegistry:
    """Durable, versioned store of published diagnosis models.

    Parameters
    ----------
    path:
        Registry directory (created if missing); safe to share across
        processes on one host.
    sync:
        When true, artifact writes are ``fsync``ed before the rename —
        survives power loss, not just process death.
    keep:
        How many superseded model artifacts to retain (the current version
        is always kept).  Older artifacts are pruned after a successful
        publish.
    """

    def __init__(self, path: str | Path, *, sync: bool = False,
                 keep: int = 3) -> None:
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise ModelRegistryError(
                f"registry path {self.path} exists and is not a directory")
        self.path.mkdir(parents=True, exist_ok=True)
        self.sync = bool(sync)
        self.keep = max(int(keep), 0)
        self._lock_handle = open(self.path / _LOCK_FILE, "a+b")

    # ------------------------------------------------------------------ state
    def _read_stamp(self) -> dict | None:
        try:
            raw = (self.path / _CURRENT_FILE).read_text()
        except FileNotFoundError:
            return None
        try:
            stamp = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ModelRegistryError(
                f"registry stamp {self.path / _CURRENT_FILE} is not valid "
                f"JSON: {error}") from error
        if not isinstance(stamp, dict) or "version" not in stamp:
            raise ModelRegistryError(
                f"registry stamp {self.path / _CURRENT_FILE} is missing its "
                f"version field")
        return stamp

    def current_version(self) -> int:
        """Return the live model version (0 when nothing was published).

        This is the cheap poll workers run between chunks: one small file
        read, no locking, no deserialisation.
        """
        stamp = self._read_stamp()
        return int(stamp["version"]) if stamp else 0

    def current_fingerprint(self) -> str | None:
        """Content fingerprint of the live model (None when empty)."""
        stamp = self._read_stamp()
        return stamp.get("fingerprint") if stamp else None

    def versions(self) -> list[int]:
        """All versions whose artifacts are still on disk, ascending."""
        found = []
        for entry in self.path.iterdir():
            name = entry.name
            if name.startswith("model-") and name.endswith(".pkl"):
                middle = name[len("model-"):-len(".pkl")]
                if middle.isdigit():
                    found.append(int(middle))
        return sorted(found)

    def _model_path(self, version: int) -> Path:
        return self.path / f"model-{version:06d}.pkl"

    def _locked_exclusive(self):
        if fcntl is not None:
            fcntl.flock(self._lock_handle, fcntl.LOCK_EX)

    def _unlock(self):
        if fcntl is not None:
            fcntl.flock(self._lock_handle, fcntl.LOCK_UN)

    # ---------------------------------------------------------------- publish
    def publish(self, model: BuiltModel, *, validate: bool = True) -> int:
        """Validate ``model``, persist it, and atomically make it current.

        Returns the new version number.  On any validation failure the
        registry's current version is untouched and
        :class:`~repro.exceptions.ModelPublishError` is raised — rollback
        by never happening.
        """
        if validate:
            try:
                validate_built_network(model.description, model.network,
                                       context="publish candidate")
                _smoke_parity(model)
            except ModelPublishError:
                raise
            except ReproError as error:
                raise ModelPublishError(
                    f"publish candidate failed validation: {error}"
                    ) from error
        fingerprint = model_fingerprint(model.network)
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MODEL_HEADER.pack(MODEL_MAGIC, zlib.crc32(payload)) + payload
        self._locked_exclusive()
        try:
            version = self.current_version() + 1
            artifact = self._model_path(version)
            atomic_write_bytes(artifact, blob, sync=self.sync)
            stamp = {"version": version, "file": artifact.name,
                     "fingerprint": fingerprint,
                     "published_at": time.time()}
            atomic_write_bytes(self.path / _CURRENT_FILE,
                               json.dumps(stamp).encode(), sync=self.sync)
            self._prune(version)
            return version
        finally:
            self._unlock()

    def _prune(self, current: int) -> None:
        floor = current - self.keep
        for version in self.versions():
            if version < floor:
                try:
                    os.unlink(self._model_path(version))
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------- load
    def load(self) -> tuple[int, BuiltModel] | tuple[int, None]:
        """Return ``(version, model)`` for the live version.

        ``(0, None)`` when nothing was published yet.  Raises
        :class:`~repro.exceptions.ModelRegistryError` when the stamp points
        at a missing or corrupt artifact — the registry never hands back a
        model it cannot prove intact.
        """
        stamp = self._read_stamp()
        if stamp is None:
            return 0, None
        version = int(stamp["version"])
        return version, self.load_version(version)

    def load_version(self, version: int) -> BuiltModel:
        """Load one specific version, verifying magic and CRC32."""
        artifact = self._model_path(version)
        try:
            blob = artifact.read_bytes()
        except FileNotFoundError:
            raise ModelRegistryError(
                f"registry artifact {artifact} is missing") from None
        if len(blob) < _MODEL_HEADER.size:
            raise ModelRegistryError(
                f"registry artifact {artifact} is truncated "
                f"({len(blob)} bytes)")
        magic, crc = _MODEL_HEADER.unpack_from(blob)
        if magic != MODEL_MAGIC:
            raise ModelRegistryError(
                f"registry artifact {artifact} does not carry the model "
                f"magic (found {magic!r})")
        payload = blob[_MODEL_HEADER.size:]
        if zlib.crc32(payload) != crc:
            raise ModelRegistryError(
                f"registry artifact {artifact} failed its CRC32 check; "
                f"refusing to deserialise a corrupt model")
        try:
            model = pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 - wrapped structurally
            raise ModelRegistryError(
                f"registry artifact {artifact} does not unpickle: {error}"
                ) from error
        if not isinstance(model, BuiltModel):
            raise ModelRegistryError(
                f"registry artifact {artifact} holds a "
                f"{type(model).__name__}, not a BuiltModel")
        return model

    def close(self) -> None:
        self._lock_handle.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
