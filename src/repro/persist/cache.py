"""Crash-safe shared posterior/program cache.

The diagnosis workflow is train-once / query-many: one fitted block-level
network answers posterior queries for whole device populations, so every
repeated evidence signature is redundant work — and before this module that
work was redone per worker process and re-done again after every restart.
:class:`PosteriorCache` makes the warm state durable and shared:

* **Append-only segments.**  Entries live in ``seg-<n>.log`` files as
  length-prefixed, CRC32-checksummed records (``magic | length | crc |
  payload``).  Appends never rewrite committed bytes, so a crash can only
  ever damage the *tail* of the active segment.
* **Recovery scan.**  Opening the cache walks every segment record by
  record: a torn tail (the crash-during-append shape) is truncated back to
  the last committed record; a mid-file integrity failure is *quarantined*
  — counted, recorded as a structured
  :class:`~repro.exceptions.CacheCorruptionError`, and skipped — so a
  flipped bit degrades to a cache miss, never a garbage posterior.
* **Atomic commits.**  Multi-file state transitions (segment compaction,
  the generation stamp) go through tmp-file + ``os.rename``, so readers
  only ever observe complete files.
* **Multi-process safety.**  Writers serialise through an ``flock`` on a
  sidecar lock file; before appending, a writer re-validates the active
  segment's tail under the exclusive lock (repairing any torn tail a
  crashed sibling left behind), so the append offset is always a record
  boundary.  Readers take the shared lock only while scanning.
* **LRU compaction.**  When the cache exceeds ``max_bytes``, the most
  recently used entries are rewritten into a fresh segment (tmp + rename)
  and the old segments are deleted; a generation stamp tells other
  processes their offsets are stale so they rescan instead of misreading.

Keys are ``(kind, model_fingerprint, ...)`` tuples built by the typed
wrappers (:meth:`PosteriorCache.put_posteriors` /
:meth:`PosteriorCache.put_program`).  Because the model component is a
content fingerprint (:func:`~repro.persist.fingerprint.model_fingerprint`),
CPD replacement re-keys the cache automatically: entries of a superseded
model become unreachable rather than wrong.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from collections.abc import Mapping
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import CacheCorruptionError, PersistError

try:  # pragma: no cover - fcntl is always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (single-process)
    fcntl = None

#: Per-record magic: 4 bytes at every record boundary.
RECORD_MAGIC = b"RPC1"

#: Record header: magic + uint32 payload length + uint32 payload CRC32.
_HEADER = struct.Struct("<4sII")

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"
_GENERATION_FILE = "GENERATION"
_LOCK_FILE = "LOCK"

#: How many structured corruption records a cache instance retains.
_MAX_CORRUPTION_RECORDS = 256


def atomic_write_bytes(path: Path, data: bytes, *, sync: bool = False) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.rename``)."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


class _Entry:
    """Index record: where one committed cache entry lives on disk."""

    __slots__ = ("segment", "offset", "length", "crc")

    def __init__(self, segment: int, offset: int, length: int,
                 crc: int) -> None:
        self.segment = segment
        self.offset = offset
        self.length = length
        self.crc = crc

    @property
    def record_bytes(self) -> int:
        return _HEADER.size + self.length


class PosteriorCache:
    """Durable, corruption-proof, multi-process posterior/program cache.

    Parameters
    ----------
    path:
        Cache directory (created if missing).  Safe to share across any
        number of processes on one host.
    max_bytes:
        Total on-disk budget; exceeding it triggers LRU segment compaction
        down to roughly half the budget.
    segment_bytes:
        Active-segment rotation threshold (bounds the blast radius of a
        torn tail and the cost of a tail re-scan).
    sync:
        When true, every append and every atomic commit is ``fsync``ed —
        survives power loss, not just process death.  Defaults to false:
        records survive ``kill -9`` (the page cache persists) at memory
        speed.

    Counters (``hits`` / ``misses`` / ``puts`` / ``quarantined`` /
    ``recovered_entries`` / ``torn_tail_bytes`` / ``compactions`` /
    ``evicted``) make every integrity decision observable;
    ``corruption_records`` keeps the structured
    :class:`~repro.exceptions.CacheCorruptionError` taxonomy of everything
    that was quarantined.
    """

    def __init__(self, path: str | Path, *,
                 max_bytes: int = 256 * 1024 * 1024,
                 segment_bytes: int = 16 * 1024 * 1024,
                 sync: bool = False) -> None:
        if max_bytes < 1 or segment_bytes < 1:
            raise PersistError(
                f"cache byte budgets must be >= 1, got max_bytes={max_bytes} "
                f"segment_bytes={segment_bytes}")
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise PersistError(
                f"cache path {self.path} exists and is not a directory")
        self.path.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.segment_bytes = int(segment_bytes)
        self.sync = bool(sync)

        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0
        self.recovered_entries = 0
        self.torn_tail_bytes = 0
        self.compactions = 0
        self.evicted = 0
        self.corruption_records: list[CacheCorruptionError] = []

        self._mutex = threading.RLock()
        self._index: OrderedDict[tuple, _Entry] = OrderedDict()
        self._scanned: dict[int, int] = {}  # segment -> valid-data end
        self._sizes: dict[int, int] = {}  # segment -> last seen file size
        self._generation = -1
        self._total_bytes = 0
        self._closed = False

        self._lock_handle = open(self.path / _LOCK_FILE, "a+b")
        with self._locked(exclusive=True):
            self._reload(recover=True)

    # ----------------------------------------------------------------- files
    def _segment_path(self, index: int) -> Path:
        return self.path / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _segment_indices(self) -> list[int]:
        indices = []
        for entry in self.path.iterdir():
            name = entry.name
            if name.startswith(_SEGMENT_PREFIX) \
                    and name.endswith(_SEGMENT_SUFFIX):
                middle = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
                if middle.isdigit():
                    indices.append(int(middle))
        return sorted(indices)

    def _read_generation(self) -> int:
        try:
            return int((self.path / _GENERATION_FILE).read_text() or 0)
        except FileNotFoundError:
            return 0
        except ValueError:
            return 0

    def _bump_generation(self) -> None:
        self._generation = self._read_generation() + 1
        atomic_write_bytes(self.path / _GENERATION_FILE,
                           str(self._generation).encode(), sync=self.sync)

    @contextmanager
    def _locked(self, *, exclusive: bool):
        """Hold the cross-process file lock (and the in-process mutex)."""
        with self._mutex:
            if self._closed:
                raise PersistError(f"cache at {self.path} is closed")
            if fcntl is not None:
                fcntl.flock(self._lock_handle,
                            fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(self._lock_handle, fcntl.LOCK_UN)

    # -------------------------------------------------------------- scanning
    def _note_corruption(self, kind: str, path: Path, offset: int,
                         detail: str) -> None:
        self.quarantined += 1
        if len(self.corruption_records) < _MAX_CORRUPTION_RECORDS:
            self.corruption_records.append(CacheCorruptionError(
                f"{kind} at {path.name}:{offset}: {detail}",
                kind=kind, path=str(path), offset=offset))

    def _scan_segment(self, index: int, start: int, *,
                      recover: bool) -> None:
        """Parse records of segment ``index`` from offset ``start``.

        Commits every intact record to the index.  A torn tail is truncated
        when ``recover`` is true (caller holds the exclusive lock),
        otherwise left for the next writer to repair.  Mid-file corruption
        that defeats re-synchronisation quarantines the remainder of the
        segment (and truncates it under ``recover``, since unparseable
        bytes can never be served anyway).
        """
        path = self._segment_path(index)
        try:
            size = path.stat().st_size
            handle = open(path, "rb")
        except FileNotFoundError:
            self._scanned.pop(index, None)
            self._sizes.pop(index, None)
            return
        valid_end = start
        with handle:
            handle.seek(start)
            while True:
                offset = handle.tell()
                header = handle.read(_HEADER.size)
                if not header:
                    valid_end = offset
                    break
                if len(header) < _HEADER.size:
                    # Fewer bytes than a header: a torn append.
                    self.torn_tail_bytes += size - offset
                    valid_end = offset
                    if not recover:
                        return self._halt_scan(index, offset, size)
                    break
                magic, length, crc = _HEADER.unpack(header)
                if magic != RECORD_MAGIC:
                    self._note_corruption(
                        "bad-magic", path, offset,
                        "record boundary lost; remainder of segment "
                        "quarantined")
                    valid_end = offset
                    break
                if offset + _HEADER.size + length > size:
                    # The record extends past EOF.  At the tail this is the
                    # normal crash-during-append shape; a later write would
                    # have re-synchronised, so treat anything else as a
                    # corrupt length.
                    tail = size - offset
                    if length <= self.segment_bytes * 4:
                        self.torn_tail_bytes += tail
                    else:
                        self._note_corruption(
                            "bad-length", path, offset,
                            f"record length {length} exceeds segment")
                    valid_end = offset
                    if not recover:
                        return self._halt_scan(index, offset, size)
                    break
                payload = handle.read(length)
                if zlib.crc32(payload) != crc:
                    self._note_corruption(
                        "bad-crc", path, offset,
                        "payload does not match its stored CRC32")
                    valid_end = handle.tell()
                    continue
                try:
                    key, _ = pickle.loads(payload)
                    key = tuple(key)
                except Exception as error:  # noqa: BLE001 - quarantined
                    self._note_corruption(
                        "bad-payload", path, offset,
                        f"payload does not decode: {error}")
                    valid_end = handle.tell()
                    continue
                previous = self._index.pop(key, None)
                if previous is not None:
                    self._total_bytes_live -= previous.record_bytes
                self._index[key] = _Entry(index, offset, length, crc)
                self._total_bytes_live += _HEADER.size + length
                self.recovered_entries += 1
                valid_end = handle.tell()
        if recover and valid_end < size:
            with open(path, "r+b") as repair:
                repair.truncate(valid_end)
                if self.sync:
                    repair.flush()
                    os.fsync(repair.fileno())
            size = valid_end
        self._scanned[index] = valid_end
        self._sizes[index] = size

    def _halt_scan(self, index: int, offset: int, size: int) -> None:
        """Reader-mode scan halt: remember where we stopped and why."""
        self._scanned[index] = offset
        self._sizes[index] = size

    def _reload(self, *, recover: bool) -> None:
        """Drop the index and rescan every segment from offset zero."""
        self._index.clear()
        self._scanned.clear()
        self._sizes.clear()
        self._total_bytes_live = 0
        self._generation = self._read_generation()
        for index in self._segment_indices():
            self._scan_segment(index, 0, recover=recover)

    def _refresh_locked(self, *, recover: bool) -> None:
        """Pick up changes other processes committed since our last look."""
        if self._read_generation() != self._generation:
            self._reload(recover=recover)
            return
        for index in self._segment_indices():
            scanned = self._scanned.get(index, 0)
            try:
                size = self._segment_path(index).stat().st_size
            except FileNotFoundError:
                continue
            if size < scanned:
                # Another process truncated a torn tail behind us.
                self._reload(recover=recover)
                return
            if size > self._sizes.get(index, 0):
                self._scan_segment(index, scanned, recover=recover)

    def refresh(self) -> None:
        """Re-scan for entries committed by other processes (shared lock)."""
        with self._locked(exclusive=False):
            self._refresh_locked(recover=False)

    # --------------------------------------------------------------- reading
    @property
    def _total_bytes_live(self) -> int:
        return self._total_bytes

    @_total_bytes_live.setter
    def _total_bytes_live(self, value: int) -> None:
        self._total_bytes = value

    def __len__(self) -> int:
        return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Bytes of live (reachable) records currently indexed."""
        return self._total_bytes

    def keys(self) -> list[tuple]:
        return list(self._index.keys())

    def get(self, key: tuple) -> object | None:
        """Return the stored value for ``key``, or ``None`` on a miss.

        Every read re-verifies the record's CRC32 before the payload is
        decoded — a corrupt entry is quarantined (and counted) instead of
        being served, so the caller sees a miss, never garbage.
        """
        key = tuple(key)
        with self._mutex:
            entry = self._index.get(key)
            if entry is None:
                self.refresh()
                entry = self._index.get(key)
            if entry is None:
                self.misses += 1
                return None
            value = self._read_entry(key, entry, allow_retry=True)
            if value is None:
                self.misses += 1
                return None
            self._index.move_to_end(key)
            self.hits += 1
            return value[1]

    def _read_entry(self, key: tuple, entry: _Entry, *,
                    allow_retry: bool) -> tuple | None:
        path = self._segment_path(entry.segment)
        try:
            with open(path, "rb") as handle:
                handle.seek(entry.offset)
                blob = handle.read(_HEADER.size + entry.length)
        except FileNotFoundError:
            blob = b""
        stale = len(blob) < _HEADER.size + entry.length
        magic = length = crc = None
        if not stale:
            magic, length, crc = _HEADER.unpack_from(blob)
            stale = magic != RECORD_MAGIC or length != entry.length \
                or crc != entry.crc
        if stale:
            # The segment moved under us (another process compacted) — or
            # the bytes really did rot.  A refresh distinguishes the two:
            # after a rescan the index either has a fresh location for the
            # key or the entry is gone.
            if allow_retry:
                with self._locked(exclusive=False):
                    self._reload(recover=False)
                fresh = self._index.get(key)
                if fresh is not None:
                    return self._read_entry(key, fresh, allow_retry=False)
                return None
            self._drop_entry(key, entry)
            self._note_corruption(
                "bad-crc", path, entry.offset,
                "record no longer matches its indexed location")
            return None
        payload = blob[_HEADER.size:]
        if zlib.crc32(payload) != entry.crc:
            self._drop_entry(key, entry)
            self._note_corruption(
                "bad-crc", path, entry.offset,
                "payload does not match its stored CRC32")
            return None
        try:
            stored_key, value = pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 - quarantined below
            self._drop_entry(key, entry)
            self._note_corruption(
                "bad-payload", path, entry.offset,
                f"payload does not decode: {error}")
            return None
        if tuple(stored_key) != key:
            self._drop_entry(key, entry)
            self._note_corruption(
                "bad-payload", path, entry.offset,
                f"record key {stored_key!r} does not match index key {key!r}")
            return None
        return stored_key, value

    def _drop_entry(self, key: tuple, entry: _Entry) -> None:
        if self._index.get(key) is entry:
            del self._index[key]
            self._total_bytes_live -= entry.record_bytes

    # --------------------------------------------------------------- writing
    def put(self, key: tuple, value: object) -> None:
        """Durably commit ``value`` under ``key`` (last writer wins)."""
        key = tuple(key)
        payload = pickle.dumps((key, value),
                               protocol=pickle.HIGHEST_PROTOCOL)
        record = _HEADER.pack(RECORD_MAGIC, len(payload),
                              zlib.crc32(payload)) + payload
        with self._locked(exclusive=True):
            self._refresh_locked(recover=True)
            indices = self._segment_indices()
            active = indices[-1] if indices else 0
            offset = self._scanned.get(active, 0)
            if offset + len(record) > self.segment_bytes and offset > 0:
                active += 1
                offset = 0
            path = self._segment_path(active)
            with open(path, "ab") as handle:
                if handle.tell() != offset:
                    # Defensive: the tail was repaired above, so the file
                    # must end exactly at the last committed record.
                    handle.truncate(offset)
                    handle.seek(offset)
                handle.write(record)
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
            previous = self._index.pop(key, None)
            if previous is not None:
                self._total_bytes_live -= previous.record_bytes
            self._index[key] = _Entry(active, offset, len(payload),
                                      zlib.crc32(payload))
            self._total_bytes_live += len(record)
            self._scanned[active] = offset + len(record)
            self._sizes[active] = offset + len(record)
            self.puts += 1
            if self._on_disk_bytes() > self.max_bytes:
                self._compact_locked()

    def _on_disk_bytes(self) -> int:
        total = 0
        for index in self._segment_indices():
            try:
                total += self._segment_path(index).stat().st_size
            except FileNotFoundError:
                pass
        return total

    def compact(self) -> int:
        """LRU-compact the cache now; returns the number of evicted entries."""
        with self._locked(exclusive=True):
            self._refresh_locked(recover=True)
            return self._compact_locked()

    def _compact_locked(self) -> int:
        """Rewrite the most recently used entries into one fresh segment.

        Keeps entries newest-LRU-first until ~half of ``max_bytes`` is
        used, writes them (in LRU order, oldest first, so scan order keeps
        approximating recency) to a tmp file, renames it into place, then
        deletes the superseded segments and bumps the generation stamp so
        other processes drop their now-stale offsets.
        """
        budget = max(self.max_bytes // 2, 1)
        kept: list[tuple[tuple, bytes]] = []
        used = 0
        evicted = 0
        for key in reversed(list(self._index.keys())):
            entry = self._index[key]
            if used + entry.record_bytes > budget and kept:
                evicted += 1
                continue
            value = self._read_entry(key, entry, allow_retry=False)
            if value is None:
                evicted += 1
                continue
            raw = pickle.dumps((key, value[1]),
                               protocol=pickle.HIGHEST_PROTOCOL)
            kept.append((key, raw))
            used += _HEADER.size + len(raw)
        kept.reverse()

        old_indices = self._segment_indices()
        new_index = (old_indices[-1] + 1) if old_indices else 0
        buffer = io.BytesIO()
        entries: list[tuple[tuple, _Entry]] = []
        for key, raw in kept:
            offset = buffer.tell()
            crc = zlib.crc32(raw)
            buffer.write(_HEADER.pack(RECORD_MAGIC, len(raw), crc))
            buffer.write(raw)
            entries.append((key, _Entry(new_index, offset, len(raw), crc)))
        new_path = self._segment_path(new_index)
        atomic_write_bytes(new_path, buffer.getvalue(), sync=self.sync)
        for index in old_indices:
            if index != new_index:
                try:
                    os.unlink(self._segment_path(index))
                except FileNotFoundError:
                    pass
        self._index = OrderedDict(entries)
        self._scanned = {new_index: buffer.tell()}
        self._sizes = {new_index: buffer.tell()}
        self._total_bytes_live = buffer.tell()
        self._bump_generation()
        self.compactions += 1
        self.evicted += evicted
        return evicted

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._mutex:
            if not self._closed:
                self._closed = True
                self._lock_handle.close()

    def __enter__(self) -> "PosteriorCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Return a JSON-safe counter snapshot."""
        with self._mutex:
            return {"entries": len(self._index),
                    "total_bytes": self._total_bytes,
                    "hits": self.hits, "misses": self.misses,
                    "puts": self.puts, "quarantined": self.quarantined,
                    "recovered_entries": self.recovered_entries,
                    "torn_tail_bytes": self.torn_tail_bytes,
                    "compactions": self.compactions,
                    "evicted": self.evicted}

    # --------------------------------------------------------- typed wrappers
    @staticmethod
    def evidence_signature(evidence: Mapping[str, str]
                           ) -> tuple[tuple[str, str], ...]:
        """Canonical hashable signature of one evidence mapping."""
        return tuple(sorted((str(variable), str(state))
                            for variable, state in evidence.items()))

    def get_posteriors(self, model_version: str,
                       evidence: Mapping[str, str]
                       ) -> dict[str, dict[str, float]] | None:
        """Look up the posterior set of one ``(model, evidence)`` pair."""
        value = self.get(("posterior", model_version,
                          self.evidence_signature(evidence)))
        if value is None or not isinstance(value, dict):
            return None
        return value

    def put_posteriors(self, model_version: str,
                       evidence: Mapping[str, str],
                       posteriors: Mapping[str, Mapping[str, float]]) -> None:
        """Durably commit one posterior set (floats round-trip bit-exact)."""
        self.put(("posterior", model_version,
                  self.evidence_signature(evidence)),
                 {variable: {state: float(p)
                             for state, p in distribution.items()}
                  for variable, distribution in posteriors.items()})

    def get_program(self, model_version: str,
                    evidence_vars: tuple[str, ...], schedule: str):
        """Load a serialized compiled program traced by any process."""
        blob = self.get(("program", model_version, str(schedule),
                         tuple(evidence_vars)))
        if not isinstance(blob, (bytes, bytearray)):
            return None
        from repro.bayesnet.inference.compiled import CompiledProgram
        try:
            return CompiledProgram.from_bytes(bytes(blob))
        except PersistError:
            return None

    def put_program(self, model_version: str, program) -> None:
        """Durably commit one compiled program's serialized op-list."""
        self.put(("program", model_version, str(program.schedule),
                  tuple(program.evidence_vars)),
                 program.to_bytes())
