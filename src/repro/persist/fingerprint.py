"""Content fingerprints of Bayesian networks.

Every durable cache key carries a *model fingerprint* — a SHA-256 digest of
the network's structure, state names and CPT tables — instead of an opaque
version counter.  The distinction matters for correctness: a counter says
"someone bumped me", a fingerprint says "these exact parameters produced
this posterior".  Two processes that trained bit-identical models share
cache entries automatically, a replaced (or chaos-corrupted) CPD changes the
digest and makes every stale entry unreachable, and a restarted service
re-keys itself without any coordination.  The shared posterior/program cache
is therefore *self-invalidating*: wrong-model hits are impossible by
construction, not by discipline.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.bayesnet.network import BayesianNetwork


def model_fingerprint(network: BayesianNetwork) -> str:
    """Return a hex SHA-256 digest of ``network``'s structure and CPTs.

    The digest covers, per node in name order: the node name, its parents
    (in CPD order), every state-name list, and the raw bytes of its CPT
    table (as contiguous float64).  Any change to any of those — a learned
    parameter update, a corrupted entry, a renamed state — changes the
    digest.
    """
    digest = hashlib.sha256()
    for node in sorted(network.nodes):
        cpd = network.get_cpd(node)
        digest.update(node.encode())
        digest.update(b"\x00")
        for parent in cpd.parents:
            digest.update(str(parent).encode())
            digest.update(b"\x01")
        for variable in (node, *cpd.parents):
            for state in cpd.state_names.get(variable, ()):
                digest.update(str(state).encode())
                digest.update(b"\x02")
        table = np.ascontiguousarray(cpd.table, dtype=np.float64)
        digest.update(str(table.shape).encode())
        digest.update(table.tobytes())
    return digest.hexdigest()


class FingerprintTracker:
    """Memoised :func:`model_fingerprint`, refreshed on CPD replacement.

    Hashing ~20 small tables is cheap but not free on a sub-millisecond
    serving path, so the digest is recomputed only when the network's
    ``cpd_version`` advances (the same signal that drops the evidence and
    program caches).  In-place table mutation stays undetectable, exactly
    as with every other ``cpd_version``-keyed cache in the library.
    """

    def __init__(self, network: BayesianNetwork) -> None:
        self._network = network
        self._version: int | None = None
        self._digest: str | None = None

    def current(self) -> str:
        if self._version != self._network.cpd_version:
            self._digest = model_fingerprint(self._network)
            self._version = self._network.cpd_version
        return self._digest  # type: ignore[return-value]
