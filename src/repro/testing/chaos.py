"""Fault injection for robustness testing.

Production failure modes — a transient engine crash, a stalled calibration,
a CPT corrupted by a bad parameter update, an ATE export that lost half its
columns — are hard to reproduce organically on a 19-node reference model.
:class:`FaultInjector` manufactures them deterministically so the test
suite can prove the serving layer degrades instead of dying:

* **raise-on-nth-call** — an injected exception on the nth (and optionally
  every following) call of any method, for transient- and permanent-fault
  scenarios;
* **artificial latency** — a sleep prepended to any method, for deadline /
  timeout scenarios;
* **corrupted CPD** — NaN, negative or unnormalised entries written into a
  network's live CPT (with cache-invalidating replacement semantics, so
  engines cannot serve stale-but-clean cached posteriors);
* **truncated evidence** — a deterministic subset of an evidence mapping,
  for partial-datalog scenarios.

All injections made through one :class:`FaultInjector` are reverted on
context exit (or :meth:`FaultInjector.restore`), in reverse order, so test
isolation survives even assertion failures mid-scenario.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from collections.abc import Mapping

import numpy as np

from repro.bayesnet.network import BayesianNetwork
from repro.core.diagnosis import DiagnosticCase
from repro.exceptions import ReproError

#: Modes understood by :func:`corrupt_cpd_table`.
CPD_CORRUPTION_MODES = ("nan", "negative", "unnormalized", "zero-row")

#: Evidence variable marking a process-poison case (see :func:`poison_case`).
POISON_EVIDENCE_KEY = "__chaos_poison__"


class ChaosError(ReproError):
    """The default injected failure.

    Deriving from :class:`ReproError` keeps injected faults inside the
    library's exception taxonomy (a serving layer that catches ``Exception``
    would mask nothing), while the distinct type lets assertions tell an
    injected fault from a genuine one.
    """


def truncated_evidence(evidence: Mapping[str, str], keep: int,
                       ) -> dict[str, str]:
    """Return the first ``keep`` entries of ``evidence`` (insertion order).

    Models a truncated datalog: the tester stopped writing mid-record.  The
    result is well-formed but under-determined — diagnosis should still
    answer, scoped to the evidence that survived.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    truncated: dict[str, str] = {}
    for variable, state in evidence.items():
        if len(truncated) >= keep:
            break
        truncated[variable] = str(state)
    return truncated


def corrupt_cpd_table(network: BayesianNetwork, variable: str,
                      mode: str = "nan") -> None:
    """Replace ``variable``'s CPD on ``network`` with a corrupted copy.

    Uses ``add_cpd`` replacement (not in-place mutation) so the engines'
    id-based cache signatures see a parameter update and drop their cached
    factors/calibrations — the corruption is guaranteed to reach the next
    inference sweep.  Modes:

    ``"nan"``
        The whole first row becomes NaN (a failed parameter update); a full
        row, so the poison survives evidence reduction on the parents and is
        seen under every parent configuration.
    ``"negative"``
        First entry becomes negative, column re-normalised mass preserved
        at 1.0 (a sign bug upstream).
    ``"unnormalized"``
        Every column scaled by 1.7 (lost normalisation pass).
    ``"zero-row"``
        Entire table zeroed (a truncated weight file).
    """
    if mode not in CPD_CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; use one of {CPD_CORRUPTION_MODES}")
    corrupted = network.get_cpd(variable).copy()
    table = corrupted.table
    if mode == "nan":
        table[0, :] = np.nan
    elif mode == "negative":
        table[0, 0] = -abs(table[0, 0]) - 0.1
        table[1:, 0] = (1.0 - table[0, 0]) / max(table.shape[0] - 1, 1)
    elif mode == "unnormalized":
        table *= 1.7
    else:  # zero-row
        table[:, :] = 0.0
    network.add_cpd(corrupted)


class FaultInjector:
    """Deterministic failure hooks with guaranteed teardown.

    Use as a context manager::

        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors", nth=1)
            ...  # exercise the fallback chain

    Every injection is reverted on exit, latest first.
    """

    def __init__(self) -> None:
        self._restores: list = []
        self.call_counts: dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.restore()

    def restore(self) -> None:
        """Revert every injection, in reverse order of installation."""
        while self._restores:
            self._restores.pop()()

    def _patch(self, target: object, method: str, wrapper) -> None:
        """Install ``wrapper`` over ``target.method``, remembering the undo."""
        had_own = method in vars(target) if not isinstance(target, type) \
            else method in target.__dict__
        original = getattr(target, method)

        def undo(target=target, method=method, had_own=had_own,
                 original=original) -> None:
            if had_own or isinstance(target, type):
                setattr(target, method, original)
            else:
                delattr(target, method)

        setattr(target, method, wrapper)
        self._restores.append(undo)

    # ------------------------------------------------------------ injections
    def raise_on_call(self, target: object, method: str,
                      error: BaseException | None = None,
                      nth: int = 1, transient: bool = False) -> None:
        """Make ``target.method`` raise on its ``nth`` call (1-based).

        With ``transient=True`` only the ``nth`` call raises and every other
        call passes through — the retry-once-and-recover scenario.  Without
        it, the ``nth`` and all later calls raise — the hard-down scenario.
        ``error`` defaults to a :class:`ChaosError`; per-call counts are
        recorded in :attr:`call_counts` under ``"Type.method"``.
        """
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        injected = error or ChaosError(
            f"injected failure in {type(target).__name__}.{method}")
        original = getattr(target, method)
        key = f"{type(target).__name__}.{method}"
        counter = {"calls": 0}

        def wrapper(*args, **kwargs):
            counter["calls"] += 1
            self.call_counts[key] = counter["calls"]
            hit = counter["calls"] == nth if transient \
                else counter["calls"] >= nth
            if hit:
                raise injected
            return original(*args, **kwargs)

        self._patch(target, method, wrapper)

    def add_latency(self, target: object, method: str,
                    seconds: float) -> None:
        """Prepend a ``seconds`` sleep to every call of ``target.method``.

        The stalled-calibration scenario: the call still succeeds, just too
        late for its deadline.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        original = getattr(target, method)

        def wrapper(*args, **kwargs):
            time.sleep(seconds)
            return original(*args, **kwargs)

        self._patch(target, method, wrapper)

    def corrupt_cpd(self, network: BayesianNetwork, variable: str,
                    mode: str = "nan") -> None:
        """Corrupt ``variable``'s CPT on ``network``; restored on exit."""
        original = network.get_cpd(variable)
        corrupt_cpd_table(network, variable, mode)
        self._restores.append(lambda: network.add_cpd(original))


# --------------------------------------------------------------------------
# Process-level injectors for the worker-pool diagnosis service
# --------------------------------------------------------------------------

def poison_case(name: str, mode: str = "crash") -> DiagnosticCase:
    """Return a case engineered to hurt whatever diagnoses it.

    ``mode="crash"``
        The case carries the :data:`POISON_EVIDENCE_KEY` marker.  A worker
        running under an armed :class:`WorkerChaos` dies (``SIGKILL``) the
        moment it picks the case up — the "this exact record reliably
        segfaults the native stack" scenario.  The supervisor must burn the
        chunk's retry budget and surface a structured failure without losing
        any sibling slot.  Without chaos armed, the marker is simply an
        unknown evidence variable, so the case degrades to a structured
        evidence failure instead of passing silently.
    ``mode="invalid"``
        Plain data poison: an unknown variable that the evidence boundary
        converts into a structured per-case failure in-process.
    """
    if mode not in ("crash", "invalid"):
        raise ValueError(f"unknown poison mode {mode!r}; "
                         "use 'crash' or 'invalid'")
    key = POISON_EVIDENCE_KEY if mode == "crash" else "__not_a_variable__"
    return DiagnosticCase(name=name, controllable_states={},
                          observable_states={key: "1"})


def is_poison_case(case: DiagnosticCase) -> bool:
    """True when ``case`` carries the crash-poison marker."""
    return POISON_EVIDENCE_KEY in case.observable_states \
        or POISON_EVIDENCE_KEY in case.controllable_states


@dataclasses.dataclass(frozen=True)
class WorkerChaos:
    """Process-level fault plan executed *inside* a serving worker.

    Picklable by design: the service ships it to the worker process, whose
    chunk loop calls the hooks.  All counters are per-process, so a
    respawned worker starts fresh.

    Attributes
    ----------
    kill_on_chunk:
        ``SIGKILL`` the worker process when it receives its nth chunk
        (1-based) — the hard-crash scenario.  The in-flight chunk is lost
        exactly as a real crash would lose it.
    hang_on_chunk:
        Sleep ``hang_seconds`` before processing the nth chunk — the stuck
        native-call scenario the supervisor's hang detection must reap.
    hang_seconds:
        Length of the injected hang (default effectively forever; the
        supervisor is expected to kill the worker long before).
    slow_per_case:
        Extra sleep in seconds prepended to every case — the degraded-node
        scenario backpressure and latency percentiles must surface.
    only_first_generation:
        When true (default), kill/hang triggers are disarmed on respawned
        workers (``generation > 0``), so a crashed worker comes back
        healthy and the pool recovers.  Poison-case kills stay armed
        regardless — a poison record must keep killing whoever touches it.
    """

    kill_on_chunk: int | None = None
    hang_on_chunk: int | None = None
    hang_seconds: float = 3600.0
    slow_per_case: float = 0.0
    only_first_generation: bool = True

    def armed(self, generation: int) -> bool:
        """Whether the chunk-level triggers apply to this process."""
        return generation == 0 or not self.only_first_generation

    def on_chunk(self, chunk_number: int, generation: int) -> None:
        """Chunk-receipt hook: kill or hang per the plan (worker process)."""
        if not self.armed(generation):
            return
        if self.kill_on_chunk is not None \
                and chunk_number == self.kill_on_chunk:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_on_chunk is not None \
                and chunk_number == self.hang_on_chunk:
            time.sleep(self.hang_seconds)

    def on_case(self, case: DiagnosticCase) -> None:
        """Per-case hook: die on poison, drag on slowness (worker process)."""
        if is_poison_case(case):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.slow_per_case > 0:
            time.sleep(self.slow_per_case)


# --------------------------------------------------------- durable state
def truncate_tail(path: str | os.PathLike, nbytes: int = 1) -> int:
    """Chop the last ``nbytes`` off a file — the crash-mid-write shape.

    Returns the file's new size.  Applied to a cache segment this
    manufactures a torn append (the recovery scan must truncate back to
    the last committed record); applied to a store plane it manufactures a
    truncated mmap file (the load must raise a structured
    ``StoreCorruptionError``).
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = max(size - int(nbytes), 0)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path: str | os.PathLike, offset: int | None = None, *,
              seed: int | None = None) -> int:
    """XOR one byte of a file with 0xFF — the bit-rot / torn-sector shape.

    ``offset`` picks the byte; ``None`` draws one uniformly (seeded for
    reproducibility).  Returns the offset flipped.  Every durable reader
    in the library must *detect* this (CRC mismatch) rather than serve the
    damaged value.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        raise ChaosError(f"cannot flip a byte of empty file {path}")
    if offset is None:
        offset = int(np.random.default_rng(seed).integers(0, size))
    if not 0 <= offset < size:
        raise ChaosError(
            f"flip offset {offset} outside file of {size} byte(s)")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return offset


def cache_segments(cache_dir: str | os.PathLike) -> list[str]:
    """Paths of a :class:`~repro.persist.PosteriorCache`'s segment files.

    Sorted by segment index, so ``cache_segments(d)[-1]`` is the active
    (appended-to) segment — the natural target for torn-tail injection.
    """
    directory = os.fspath(cache_dir)
    names = sorted(name for name in os.listdir(directory)
                   if name.startswith("seg-") and name.endswith(".log"))
    return [os.path.join(directory, name) for name in names]
