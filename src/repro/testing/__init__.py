"""Testing utilities for the repro stack.

:mod:`repro.testing.chaos` is the fault-injection harness used by the
robustness test suite to prove the serving layer's fallback chain and
partial-batch isolation under injected failures.
"""

from repro.testing.chaos import (
    ChaosError,
    FaultInjector,
    WorkerChaos,
    corrupt_cpd_table,
    is_poison_case,
    poison_case,
    truncated_evidence,
)

__all__ = [
    "ChaosError",
    "FaultInjector",
    "WorkerChaos",
    "corrupt_cpd_table",
    "is_poison_case",
    "poison_case",
    "truncated_evidence",
]
