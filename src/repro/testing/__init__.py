"""Testing utilities for the repro stack.

:mod:`repro.testing.chaos` is the fault-injection harness used by the
robustness test suite to prove the serving layer's fallback chain and
partial-batch isolation under injected failures.
"""

from repro.testing.chaos import (
    ChaosError,
    FaultInjector,
    corrupt_cpd_table,
    truncated_evidence,
)

__all__ = [
    "ChaosError",
    "FaultInjector",
    "corrupt_cpd_table",
    "truncated_evidence",
]
