"""Testing utilities for the repro stack.

:mod:`repro.testing.chaos` is the fault-injection harness used by the
robustness test suite to prove the serving layer's fallback chain and
partial-batch isolation under injected failures.
"""

from repro.testing.chaos import (
    ChaosError,
    FaultInjector,
    WorkerChaos,
    cache_segments,
    corrupt_cpd_table,
    flip_byte,
    is_poison_case,
    poison_case,
    truncate_tail,
    truncated_evidence,
)

__all__ = [
    "ChaosError",
    "FaultInjector",
    "WorkerChaos",
    "cache_segments",
    "corrupt_cpd_table",
    "flip_byte",
    "is_poison_case",
    "poison_case",
    "truncate_tail",
    "truncated_evidence",
]
