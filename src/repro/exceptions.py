"""Exception hierarchy for the block-level Bayesian diagnosis library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch a single base class while still being able to discriminate
between structural problems (bad graphs, bad CPDs), data problems (bad
datalogs, bad cases) and usage problems (unknown variables, invalid
evidence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A directed graph violates a structural requirement (e.g. a cycle)."""


class FactorError(ReproError):
    """A discrete factor operation received incompatible operands."""


class CPDError(ReproError):
    """A conditional probability distribution is malformed."""


class NetworkError(ReproError):
    """A Bayesian network is inconsistent (missing CPDs, bad cards, ...)."""


class InferenceError(ReproError):
    """An inference query cannot be answered (unknown variable, bad evidence)."""


class ImpossibleEvidenceError(InferenceError):
    """The entered evidence has zero probability under the model.

    Raised by every inference engine instead of emitting NaN posteriors: the
    exact engines detect a zero (or non-finite) normalisation constant, the
    samplers detect an all-zero weight/conditional population.  The evidence
    itself is well-formed — it just contradicts the model — so retrying or
    degrading to another engine cannot help; serving layers should surface
    this as a permanent, per-case failure.
    """

    def __init__(self, message: str, evidence: dict | None = None) -> None:
        super().__init__(message)
        self.evidence = dict(evidence) if evidence else {}


class InferenceTimeoutError(InferenceError):
    """An inference query exceeded its deadline.

    Raised by the robust serving layer when an engine attempt does not finish
    within the configured per-query deadline; carries enough context for the
    fallback chain to log which engine stalled.
    """

    def __init__(self, message: str, engine: str | None = None,
                 deadline: float | None = None) -> None:
        super().__init__(message)
        self.engine = engine
        self.deadline = deadline


class DeadlineExceededError(InferenceTimeoutError):
    """A total wall-clock budget ran out before a diagnosis completed.

    Distinct from a plain :class:`InferenceTimeoutError` (one *attempt*
    overran its per-attempt deadline): here the whole per-case or
    per-request budget is spent, so the fallback chain must stop rather
    than degrade further.  ``remaining`` records the budget left when the
    check fired (zero or negative).
    """

    def __init__(self, message: str, remaining: float | None = None,
                 deadline: float | None = None) -> None:
        super().__init__(message, deadline=deadline)
        self.remaining = remaining


class ServingError(ReproError):
    """Base class for diagnosis-service (worker-pool) failures."""


class ServiceOverloadedError(ServingError):
    """The service's bounded submission queue is full.

    Raised on submit under the ``"reject"`` load-shedding policy (or after
    the block timeout under ``"block"``).  Callers should back off and
    retry; ``pending`` and ``limit`` quantify the pressure at rejection
    time.
    """

    def __init__(self, message: str, pending: int | None = None,
                 limit: int | None = None) -> None:
        super().__init__(message)
        self.pending = pending
        self.limit = limit


class ServiceShutdownError(ServingError):
    """The service is draining or stopped and cannot accept work."""


class WorkerCrashError(ServingError):
    """A diagnosis chunk was lost to worker crashes past its retry budget.

    Surfaced per-slot as a structured
    :class:`~repro.core.diagnosis.DiagnosisFailure` (never an unhandled
    exception): the supervisor retried the chunk on healthy workers up to
    the configured budget, and every attempt died.
    """

    def __init__(self, message: str, attempts: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class LearningError(ReproError):
    """Parameter or structure learning received unusable data."""


class CircuitError(ReproError):
    """A behavioural circuit description is inconsistent."""


class FaultError(CircuitError):
    """A fault cannot be injected into the requested block."""


class ATEError(ReproError):
    """An ATE test program or datalog is malformed."""


class DatalogError(ATEError):
    """A datalog file or record cannot be parsed.

    When the failure is tied to a specific record of a file, ``path`` and
    ``line_number`` carry the location so tooling can report it structurally
    instead of scraping the message.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 line_number: int | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.line_number = line_number


class ModelBuildError(ReproError):
    """The Dlog2BBN model builder received inconsistent inputs."""


class StateDefinitionError(ModelBuildError):
    """A block state table is inconsistent (overlapping limits, gaps, ...)."""


class CaseGenerationError(ModelBuildError):
    """ATE data could not be converted into learning cases."""


class DiagnosisError(ReproError):
    """A diagnostic query is invalid (unknown blocks, missing evidence)."""


class EvidenceError(DiagnosisError):
    """An evidence mapping is malformed.

    Covers unknown model variables, illegal state labels and conflicting
    controllable/observable entries.  ``issues`` holds one structured
    :class:`~repro.core.evidence.EvidenceIssue`-like record per problem so a
    serving layer can report every defect of a case at once instead of
    failing on the first.
    """

    def __init__(self, message: str, issues: tuple = ()) -> None:
        super().__init__(message)
        self.issues = tuple(issues)


class DegradedResultWarning(UserWarning):
    """A diagnosis was produced in degraded mode.

    Emitted (via :mod:`warnings`) when the robust serving layer fell back
    from an exact engine to an approximate one, retried after transient
    failures, or produced a posterior with a low effective sample size.  The
    result is still usable — the warning flags the reduced precision.
    """
