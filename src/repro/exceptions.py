"""Exception hierarchy for the block-level Bayesian diagnosis library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch a single base class while still being able to discriminate
between structural problems (bad graphs, bad CPDs), data problems (bad
datalogs, bad cases) and usage problems (unknown variables, invalid
evidence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A directed graph violates a structural requirement (e.g. a cycle)."""


class FactorError(ReproError):
    """A discrete factor operation received incompatible operands."""


class CPDError(ReproError):
    """A conditional probability distribution is malformed."""


class NetworkError(ReproError):
    """A Bayesian network is inconsistent (missing CPDs, bad cards, ...)."""


class InferenceError(ReproError):
    """An inference query cannot be answered (unknown variable, bad evidence)."""


class LearningError(ReproError):
    """Parameter or structure learning received unusable data."""


class CircuitError(ReproError):
    """A behavioural circuit description is inconsistent."""


class FaultError(CircuitError):
    """A fault cannot be injected into the requested block."""


class ATEError(ReproError):
    """An ATE test program or datalog is malformed."""


class DatalogError(ATEError):
    """A datalog file or record cannot be parsed."""


class ModelBuildError(ReproError):
    """The Dlog2BBN model builder received inconsistent inputs."""


class StateDefinitionError(ModelBuildError):
    """A block state table is inconsistent (overlapping limits, gaps, ...)."""


class CaseGenerationError(ModelBuildError):
    """ATE data could not be converted into learning cases."""


class DiagnosisError(ReproError):
    """A diagnostic query is invalid (unknown blocks, missing evidence)."""
