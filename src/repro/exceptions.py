"""Exception hierarchy for the block-level Bayesian diagnosis library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch a single base class while still being able to discriminate
between structural problems (bad graphs, bad CPDs), data problems (bad
datalogs, bad cases) and usage problems (unknown variables, invalid
evidence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A directed graph violates a structural requirement (e.g. a cycle)."""


class FactorError(ReproError):
    """A discrete factor operation received incompatible operands."""


class CPDError(ReproError):
    """A conditional probability distribution is malformed."""


class NetworkError(ReproError):
    """A Bayesian network is inconsistent (missing CPDs, bad cards, ...)."""


class InferenceError(ReproError):
    """An inference query cannot be answered (unknown variable, bad evidence)."""


class ImpossibleEvidenceError(InferenceError):
    """The entered evidence has zero probability under the model.

    Raised by every inference engine instead of emitting NaN posteriors: the
    exact engines detect a zero (or non-finite) normalisation constant, the
    samplers detect an all-zero weight/conditional population.  The evidence
    itself is well-formed — it just contradicts the model — so retrying or
    degrading to another engine cannot help; serving layers should surface
    this as a permanent, per-case failure.
    """

    def __init__(self, message: str, evidence: dict | None = None) -> None:
        super().__init__(message)
        self.evidence = dict(evidence) if evidence else {}


class InferenceTimeoutError(InferenceError):
    """An inference query exceeded its deadline.

    Raised by the robust serving layer when an engine attempt does not finish
    within the configured per-query deadline; carries enough context for the
    fallback chain to log which engine stalled.
    """

    def __init__(self, message: str, engine: str | None = None,
                 deadline: float | None = None) -> None:
        super().__init__(message)
        self.engine = engine
        self.deadline = deadline


class DeadlineExceededError(InferenceTimeoutError):
    """A total wall-clock budget ran out before a diagnosis completed.

    Distinct from a plain :class:`InferenceTimeoutError` (one *attempt*
    overran its per-attempt deadline): here the whole per-case or
    per-request budget is spent, so the fallback chain must stop rather
    than degrade further.  ``remaining`` records the budget left when the
    check fired (zero or negative).
    """

    def __init__(self, message: str, remaining: float | None = None,
                 deadline: float | None = None) -> None:
        super().__init__(message, deadline=deadline)
        self.remaining = remaining


class ServingError(ReproError):
    """Base class for diagnosis-service (worker-pool) failures."""


class ServiceOverloadedError(ServingError):
    """The service's bounded submission queue is full.

    Raised on submit under the ``"reject"`` load-shedding policy (or after
    the block timeout under ``"block"``).  Callers should back off and
    retry; ``pending`` and ``limit`` quantify the pressure at rejection
    time.
    """

    def __init__(self, message: str, pending: int | None = None,
                 limit: int | None = None) -> None:
        super().__init__(message)
        self.pending = pending
        self.limit = limit


class ServiceShutdownError(ServingError):
    """The service is draining or stopped and cannot accept work."""


class WorkerCrashError(ServingError):
    """A diagnosis chunk was lost to worker crashes past its retry budget.

    Surfaced per-slot as a structured
    :class:`~repro.core.diagnosis.DiagnosisFailure` (never an unhandled
    exception): the supervisor retried the chunk on healthy workers up to
    the configured budget, and every attempt died.
    """

    def __init__(self, message: str, attempts: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class PersistError(ReproError):
    """Base class for durable-state (cross-process persistence) failures."""


class CacheCorruptionError(PersistError):
    """A persistent cache record (or region) failed an integrity check.

    The durable cache never serves bytes it cannot prove intact: every
    record is length-prefixed and CRC32-checksummed, and any mismatch is
    surfaced as one of these — either *raised* (structural problems a
    caller must handle) or *quarantined* (recorded on the cache and skipped,
    so a flipped bit degrades to a cache miss instead of a garbage
    posterior).  ``kind`` names the defect:

    ``"torn-tail"``
        The file ends mid-record — the classic crash-during-append shape.
        Recovery truncates the tail back to the last committed record.
    ``"bad-magic"``
        A record boundary does not carry the record magic; the remainder of
        the segment cannot be re-synchronised and is quarantined.
    ``"bad-length"``
        A record's length prefix points outside the file mid-segment.
    ``"bad-crc"``
        A record's payload does not match its stored CRC32 (bit rot, torn
        overwrite); the entry is quarantined, its neighbours survive.
    ``"bad-payload"``
        The payload checksummed correctly but does not decode (version skew,
        truncated pickle).
    """

    def __init__(self, message: str, *, kind: str = "bad-crc",
                 path: str | None = None, offset: int | None = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.path = path
        self.offset = offset


class ModelRegistryError(PersistError):
    """The versioned model registry is unusable (missing/corrupt artifacts)."""


class ModelPublishError(ModelRegistryError):
    """A model failed the publish-time validation gate.

    Raised by :meth:`~repro.persist.ModelRegistry.publish` *before* the
    version stamp moves: the registry's current version keeps serving, so a
    bad publish rolls back cleanly by never happening.
    """


class LearningError(ReproError):
    """Parameter or structure learning received unusable data."""


class CircuitError(ReproError):
    """A behavioural circuit description is inconsistent."""


class FaultError(CircuitError):
    """A fault cannot be injected into the requested block."""


class ATEError(ReproError):
    """An ATE test program or datalog is malformed."""


class StoreCorruptionError(ATEError):
    """A saved columnar device store failed an integrity check on load.

    Raised instead of returning silently corrupted arrays: a truncated or
    bit-flipped ``.npy`` plane fails its recorded length/CRC32 check (or the
    store directory is missing its header magic) and the load aborts with
    the defect named.  ``kind`` is ``"bad-magic"``, ``"missing-plane"``,
    ``"truncated"`` or ``"bad-crc"``; ``path`` names the offending file.
    """

    def __init__(self, message: str, *, kind: str = "bad-crc",
                 path: str | None = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.path = path


class DatalogError(ATEError):
    """A datalog file or record cannot be parsed.

    When the failure is tied to a specific record of a file, ``path`` and
    ``line_number`` carry the location so tooling can report it structurally
    instead of scraping the message.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 line_number: int | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.line_number = line_number


class ModelBuildError(ReproError):
    """The Dlog2BBN model builder received inconsistent inputs."""


class StateDefinitionError(ModelBuildError):
    """A block state table is inconsistent (overlapping limits, gaps, ...)."""


class CaseGenerationError(ModelBuildError):
    """ATE data could not be converted into learning cases."""


class DiagnosisError(ReproError):
    """A diagnostic query is invalid (unknown blocks, missing evidence)."""


class EvidenceError(DiagnosisError):
    """An evidence mapping is malformed.

    Covers unknown model variables, illegal state labels and conflicting
    controllable/observable entries.  ``issues`` holds one structured
    :class:`~repro.core.evidence.EvidenceIssue`-like record per problem so a
    serving layer can report every defect of a case at once instead of
    failing on the first.
    """

    def __init__(self, message: str, issues: tuple = ()) -> None:
        super().__init__(message)
        self.issues = tuple(issues)


class DegradedResultWarning(UserWarning):
    """A diagnosis was produced in degraded mode.

    Emitted (via :mod:`warnings`) when the robust serving layer fell back
    from an exact engine to an approximate one, retried after transient
    failures, or produced a posterior with a low effective sample size.  The
    result is still usable — the warning flags the reduced precision.
    """
