"""Supervised parallel diagnosis serving.

The public surface is :class:`DiagnosisService` (a worker-pool front end
for ``diagnose_batch`` with crash isolation, deadlines, backpressure and
circuit breaking), its :class:`ServiceConfig`, and the
:class:`ServiceStats` health snapshot.
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.service import (
    DiagnosisService,
    ServiceConfig,
    ServiceFuture,
    adapt_chunk_size,
)
from repro.serving.stats import LatencyWindow, ServiceStats
from repro.serving.worker import WorkerPayload, worker_main

__all__ = [
    "CircuitBreaker",
    "DiagnosisService",
    "LatencyWindow",
    "ServiceConfig",
    "ServiceFuture",
    "ServiceStats",
    "WorkerPayload",
    "adapt_chunk_size",
    "worker_main",
]
