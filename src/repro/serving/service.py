"""Supervised parallel diagnosis service over a multiprocessing worker pool.

:class:`DiagnosisService` shards ``diagnose_batch`` workloads into chunks
and runs them on a pool of worker processes, each hosting its own
:class:`~repro.core.robust.RobustDiagnosisEngine`.  The supervisor thread
owns every robustness guarantee the pool needs to survive real traffic:

* **Crash isolation** — a worker death (segfault, OOM-kill, injected
  ``SIGKILL``) is detected through its process sentinel; only its in-flight
  chunk is lost.  The chunk is retried on a healthy worker — multi-case
  chunks are *bisected* first, so one poisonous case ends up isolated in a
  single-slot chunk instead of failing its neighbours — until the retry
  budget is spent, at which point the surviving slots get a structured
  :class:`~repro.core.diagnosis.DiagnosisFailure` (``WorkerCrashError``).
* **Bounded respawn** — dead workers are restarted up to
  ``max_respawns_per_worker`` times; a slot that keeps dying goes dark
  instead of crash-looping, and if the whole pool dies every outstanding
  case is failed structurally — submitted work is never stranded.
* **Deadline propagation** — a per-request ``deadline`` flows from
  :meth:`DiagnosisService.submit` into each chunk's dispatch budget and
  from there into :class:`~repro.core.robust.FallbackPolicy` attempt
  budgets inside the worker; queued chunks whose request expired fail fast
  without ever occupying a worker, and in-flight chunks are reaped shortly
  after their budget (``deadline_grace``).
* **Backpressure** — the submission queue is bounded
  (``max_pending_cases``).  ``overload_policy="reject"`` sheds load
  immediately with :class:`~repro.exceptions.ServiceOverloadedError`;
  ``"block"`` waits up to ``submit_timeout`` for capacity before shedding.
* **Circuit breaking** — each worker slot carries a
  :class:`~repro.serving.breaker.CircuitBreaker`; repeated crashes/hangs
  quarantine the slot, a cheap probe reinstates it, and probe failures back
  off exponentially.
* **Graceful drain** — ``shutdown(drain=True)`` stops intake, finishes
  every queued and in-flight chunk, then stops the workers;
  ``drain=False`` fails outstanding slots structurally and kills the pool.
  Either way every submitted case's future completes.

Health is a first-class output: :meth:`DiagnosisService.stats` returns a
:class:`~repro.serving.stats.ServiceStats` snapshot (queue depth,
in-flight, workers alive/quarantined, retries, shed requests, chunk
latency percentiles) so degradation is observable, not silent.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from collections.abc import Mapping, Sequence
from multiprocessing import connection as mp_connection

from repro.core.diagnosis import (
    Diagnosis,
    DiagnosisFailure,
    DiagnosticCase,
    case_from_evidence,
    chunk_slices,
)
from repro.core.model_builder import BuiltModel
from repro.core.robust import FallbackPolicy
from repro.exceptions import (
    DeadlineExceededError,
    DiagnosisError,
    ServiceOverloadedError,
    ServiceShutdownError,
    ServingError,
    WorkerCrashError,
)
from repro.serving.breaker import CircuitBreaker
from repro.serving.stats import LatencyWindow, ServiceStats
from repro.serving.worker import WorkerPayload, worker_main

#: Load-shedding policies for a full submission queue.
OVERLOAD_POLICIES = ("reject", "block")


def _default_workers() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def adapt_chunk_size(current: int, per_case_p99: float | None,
                     budget: float | None, minimum: int,
                     maximum: int) -> int:
    """One adaptive-chunking step: the next dispatch chunk size.

    Sizes towards half the chunk latency ``budget`` at the observed
    per-case p99 — half, so a p99-ish chunk still clears the budget with
    room for dispatch jitter.  Each step at most halves or doubles the
    current size (no oscillation on a noisy window) and the result is
    clamped to ``[minimum, maximum]``.  With no samples or no budget the
    size is only re-clamped.

    Pure function of its inputs, so the policy is testable without a
    service: feeding a latency spike shrinks the next chunk, a fast quiet
    window grows it back.
    """
    if per_case_p99 is not None and per_case_p99 > 0 and budget is not None:
        ideal = max(int(budget * 0.5 / per_case_p99), 1)
        current = max(max(current // 2, 1), min(ideal, current * 2))
    return max(minimum, min(current, maximum))


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the diagnosis service.

    Attributes
    ----------
    num_workers:
        Worker processes in the pool; defaults to the CPUs this process
        may run on.
    chunk_size:
        Cases per dispatched chunk.  Larger chunks amortise IPC; smaller
        chunks spread load and shrink the crash blast radius.
    max_pending_cases:
        Bound on cases submitted but not yet dispatched — the backpressure
        valve.
    overload_policy:
        ``"reject"`` (shed immediately) or ``"block"`` (wait up to
        ``submit_timeout`` for queue capacity, then shed).
    submit_timeout:
        Blocking-submit patience in seconds.
    chunk_timeout:
        Absolute per-chunk wall limit for hang detection; a worker past it
        is killed and its chunk retried.  ``None`` disables (deadline-less
        requests then have no hang reaping).
    deadline_grace:
        Extra seconds past a request's remaining budget before an
        in-flight chunk's worker is reaped (lets the worker return its
        structured per-case deadline failures itself in the common case).
    max_chunk_retries:
        Crash/hang retries for a single-case chunk before its slot fails
        structurally.  (Multi-case chunks bisect on retry, which does not
        consume this budget.)
    max_respawns_per_worker:
        Lifetime process restarts per worker slot before it goes dark.
    breaker_threshold / breaker_cooldown / breaker_max_cooldown:
        Circuit-breaker settings per worker slot (consecutive failures to
        quarantine; probe cooldown, with exponential backoff cap).
    probe_timeout:
        Seconds a reinstatement probe may take before the slot is killed
        and re-quarantined.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` picks ``fork`` where available (fast,
        engine inherited) falling back to ``spawn``.
    chaos:
        Testing-only: a :class:`~repro.testing.chaos.WorkerChaos` applied
        to every worker, or a mapping ``{worker_index: WorkerChaos}``.
    adaptive_chunking:
        When true, the dispatch chunk size tracks observed per-case
        latency: chunks shrink when the per-case p99 puts a chunk near its
        latency budget (so hang reaping and deadline expiry fire on less
        work) and grow back when cases run fast (amortising IPC).
        ``chunk_size`` is the starting point; each adjustment at most
        halves or doubles, clamped to ``[min_chunk_size, max_chunk_size]``.
    min_chunk_size / max_chunk_size:
        Clamp bounds of adaptive chunking.
    chunk_latency_target:
        Wall-clock seconds a chunk should aim to stay under.  ``None``
        derives a quarter of ``chunk_timeout`` (a chunk then has 4x
        headroom before hang reaping) and disables adaptation when
        ``chunk_timeout`` is also ``None``.
    """

    num_workers: int | None = None
    chunk_size: int = 16
    max_pending_cases: int = 10_000
    overload_policy: str = "block"
    submit_timeout: float = 30.0
    chunk_timeout: float | None = 60.0
    deadline_grace: float = 0.5
    max_chunk_retries: int = 3
    max_respawns_per_worker: int = 8
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.5
    breaker_max_cooldown: float = 30.0
    probe_timeout: float = 10.0
    start_method: str | None = None
    chaos: object | None = None
    adaptive_chunking: bool = False
    min_chunk_size: int = 1
    max_chunk_size: int = 256
    chunk_latency_target: float | None = None

    def __post_init__(self) -> None:
        if self.num_workers is not None and self.num_workers < 1:
            raise ServingError(
                f"num_workers must be >= 1, got {self.num_workers}")
        if self.chunk_size < 1:
            raise ServingError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_pending_cases < 1:
            raise ServingError(
                f"max_pending_cases must be >= 1, got {self.max_pending_cases}")
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ServingError(
                f"unknown overload_policy {self.overload_policy!r}; "
                f"use one of {OVERLOAD_POLICIES}")
        if self.submit_timeout < 0:
            raise ServingError(
                f"submit_timeout must be >= 0, got {self.submit_timeout}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ServingError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}")
        if self.deadline_grace < 0:
            raise ServingError(
                f"deadline_grace must be >= 0, got {self.deadline_grace}")
        if self.max_chunk_retries < 0:
            raise ServingError(
                f"max_chunk_retries must be >= 0, got {self.max_chunk_retries}")
        if self.max_respawns_per_worker < 0:
            raise ServingError(
                "max_respawns_per_worker must be >= 0, got "
                f"{self.max_respawns_per_worker}")
        if self.min_chunk_size < 1:
            raise ServingError(
                f"min_chunk_size must be >= 1, got {self.min_chunk_size}")
        if self.max_chunk_size < self.min_chunk_size:
            raise ServingError(
                f"max_chunk_size ({self.max_chunk_size}) must be >= "
                f"min_chunk_size ({self.min_chunk_size})")
        if not (self.min_chunk_size <= self.chunk_size
                <= self.max_chunk_size) and self.adaptive_chunking:
            raise ServingError(
                f"chunk_size ({self.chunk_size}) must lie within "
                f"[min_chunk_size, max_chunk_size] = "
                f"[{self.min_chunk_size}, {self.max_chunk_size}] under "
                f"adaptive chunking")
        if self.chunk_latency_target is not None \
                and self.chunk_latency_target <= 0:
            raise ServingError(
                "chunk_latency_target must be positive, got "
                f"{self.chunk_latency_target}")

    def resolved_latency_target(self) -> float | None:
        """The chunk wall-clock budget adaptation steers towards."""
        if self.chunk_latency_target is not None:
            return self.chunk_latency_target
        if self.chunk_timeout is not None:
            return self.chunk_timeout / 4.0
        return None

    def resolved_workers(self) -> int:
        return self.num_workers or _default_workers()

    def chaos_for(self, index: int):
        if self.chaos is None:
            return None
        if isinstance(self.chaos, Mapping):
            return self.chaos.get(index)
        return self.chaos


class ServiceFuture:
    """Completion handle for one submitted batch.

    ``result()`` always returns one ``Diagnosis | DiagnosisFailure`` per
    submitted slot, in submission order — service-level problems (crash
    budget spent, deadline expiry, forced shutdown) appear as structured
    failures in their slots, never as lost entries.
    """

    def __init__(self, size: int) -> None:
        self._event = threading.Event()
        self._results: list[Diagnosis | DiagnosisFailure] | None = None
        self.size = size

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None,
               ) -> list[Diagnosis | DiagnosisFailure]:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"batch of {self.size} case(s) not complete after {timeout}s")
        return self._results  # type: ignore[return-value]

    def _complete(self, results: list) -> None:
        self._results = results
        self._event.set()


class _Request:
    """One submitted batch: slot accounting + its future."""

    __slots__ = ("results", "remaining", "deadline_end", "future")

    def __init__(self, size: int, deadline_end: float | None) -> None:
        self.results: list = [None] * size
        self.remaining = size
        self.deadline_end = deadline_end
        self.future = ServiceFuture(size)


class _Chunk:
    """A dispatchable shard of a request."""

    __slots__ = ("chunk_id", "request", "pairs", "attempts")

    def __init__(self, chunk_id: int, request: _Request,
                 pairs: list[tuple[int, DiagnosticCase]],
                 attempts: int = 0) -> None:
        self.chunk_id = chunk_id
        self.request = request
        self.pairs = pairs
        self.attempts = attempts


class _Worker:
    """Supervisor-side handle of one worker slot."""

    __slots__ = ("index", "generation", "process", "conn", "state", "chunk",
                 "reap_at", "probe_id", "probe_deadline", "breaker",
                 "respawns")

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.generation = 0
        self.process = None
        self.conn = None
        self.state = "starting"  # starting | idle | busy | probing | dead
        self.chunk: _Chunk | None = None
        self.reap_at: float | None = None
        self.probe_id: int | None = None
        self.probe_deadline: float | None = None
        self.breaker = breaker
        self.respawns = 0

    @property
    def alive(self) -> bool:
        return self.state != "dead"


class DiagnosisService:
    """Parallel, supervised ``diagnose_batch`` over a worker pool.

    Parameters
    ----------
    built_model:
        The :class:`~repro.core.model_builder.BuiltModel` every worker's
        engine is built from (pickled to workers under ``spawn``).
    policy:
        The :class:`~repro.core.robust.FallbackPolicy` for the per-worker
        robust engines; per-request deadlines clamp its attempt budgets.
    config:
        The :class:`ServiceConfig`.
    abnormal_threshold / ambiguous_threshold:
        Candidate-deduction thresholds, as on
        :class:`~repro.core.diagnosis.DiagnosisEngine`.
    persist_dir:
        Optional directory of durable cross-process state.  When set,
        every worker shares one crash-safe
        :class:`~repro.persist.PosteriorCache` (posteriors + compiled
        programs, under ``<persist_dir>/cache``) that survives worker
        crashes *and* service restarts, and watches the
        :class:`~repro.persist.ModelRegistry` under
        ``<persist_dir>/models`` — a :meth:`publish_model` call hot-swaps
        every worker's engine between chunks, no restart.  A published
        registry model takes precedence over ``built_model``.
    reload_poll_interval:
        Seconds between a worker's registry version-stamp polls.

    Use as a context manager for deterministic drain-and-stop::

        with DiagnosisService(built, config=ServiceConfig(num_workers=4)) as svc:
            results = svc.diagnose_batch(cases, deadline=30.0)
    """

    def __init__(self, built_model: BuiltModel,
                 policy: FallbackPolicy | None = None,
                 config: ServiceConfig | None = None, *,
                 abnormal_threshold: float = 0.5,
                 ambiguous_threshold: float = 0.4,
                 persist_dir: str | os.PathLike | None = None,
                 reload_poll_interval: float = 0.5) -> None:
        self.built_model = built_model
        self.model = built_model.description
        self.policy = policy or FallbackPolicy()
        self.config = config or ServiceConfig()
        self._abnormal = abnormal_threshold
        self._ambiguous = ambiguous_threshold
        self.persist_dir = None if persist_dir is None else str(persist_dir)
        self._reload_poll_interval = float(reload_poll_interval)

        method = self.config.start_method
        if method is None:
            method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() \
                else "spawn"
        self._ctx = multiprocessing.get_context(method)

        self._lock = threading.Lock()
        self._capacity = threading.Condition(self._lock)
        self._queue: deque[_Chunk] = deque()
        self._pending_cases = 0
        self._in_flight_cases = 0
        self._deadline_requests = 0
        self._chunk_ids = itertools.count(1)
        self._probe_ids = itertools.count(1)

        self._workers: list[_Worker] = []
        self._started = False
        self._draining = False
        self._abort = False
        self._stopped = False
        self._pool_dead = False

        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._retries = 0
        self._respawns = 0
        self._probes = 0
        self._compile_ms = 0.0
        self._compiled_queries = 0
        self._latency = LatencyWindow()
        self._case_latency = LatencyWindow(512)
        self._chunk_size = self.config.chunk_size
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_quarantined = 0
        self._model_reloads = 0
        self._start_time = time.monotonic()

        self._wakeup_r, self._wakeup_w = os.pipe()
        os.set_blocking(self._wakeup_w, False)
        self._supervisor = threading.Thread(
            target=self._supervise, name="diagnosis-supervisor", daemon=True)
        self.start()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the pool and the supervisor thread (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.config.resolved_workers()):
                worker = _Worker(index, CircuitBreaker(
                    self.config.breaker_threshold,
                    self.config.breaker_cooldown,
                    self.config.breaker_max_cooldown))
                self._spawn_process(worker)
                self._workers.append(worker)
        self._supervisor.start()

    def __enter__(self) -> "DiagnosisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    def _spawn_process(self, worker: _Worker) -> None:
        """(Re)start the process behind a worker slot.  Caller holds lock."""
        payload = WorkerPayload(
            built_model=self.built_model, policy=self.policy,
            abnormal_threshold=self._abnormal,
            ambiguous_threshold=self._ambiguous,
            worker_index=worker.index, generation=worker.generation,
            chaos=self.config.chaos_for(worker.index),
            persist_dir=self.persist_dir,
            reload_poll_interval=self._reload_poll_interval)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(child_conn, payload), daemon=True,
            name=f"diagnosis-worker-{worker.index}.{worker.generation}")
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.state = "starting"
        worker.chunk = None
        worker.reap_at = None
        worker.probe_id = None
        worker.probe_deadline = None

    # ---------------------------------------------------------------- intake
    def submit(self, cases: Sequence[DiagnosticCase | Mapping[str, str]],
               names: Sequence[str] | None = None,
               deadline: float | None = None) -> ServiceFuture:
        """Queue a batch for diagnosis; returns a :class:`ServiceFuture`.

        ``cases`` may mix :class:`~repro.core.diagnosis.DiagnosticCase`
        instances and raw evidence mappings (named via ``names`` /
        ``case-<i>``).  ``deadline`` is a wall-clock budget in seconds for
        the whole request; it propagates into every attempt made on its
        behalf.  Raises :class:`~repro.exceptions.ServiceOverloadedError`
        under backpressure shedding and
        :class:`~repro.exceptions.ServiceShutdownError` once draining or
        stopped.
        """
        if deadline is not None and deadline <= 0:
            raise DiagnosisError(
                f"deadline must be positive, got {deadline}")
        normalized = self._normalize(cases, names)
        with self._capacity:
            self._check_intake_open()
            if normalized and not self._reserve_capacity(len(normalized)):
                self._shed += 1
                raise ServiceOverloadedError(
                    f"submission of {len(normalized)} case(s) shed: "
                    f"{self._pending_cases} case(s) already pending against "
                    f"a bound of {self.config.max_pending_cases}",
                    pending=self._pending_cases,
                    limit=self.config.max_pending_cases)
            deadline_end = None if deadline is None \
                else time.monotonic() + deadline
            request = _Request(len(normalized), deadline_end)
            if not normalized:
                request.future._complete([])
                return request.future
            if deadline_end is not None:
                self._deadline_requests += 1
            for piece in chunk_slices(len(normalized), self._chunk_size):
                pairs = [(slot, normalized[slot])
                         for slot in range(piece.start, piece.stop)]
                self._queue.append(_Chunk(next(self._chunk_ids), request,
                                          pairs))
            self._pending_cases += len(normalized)
            self._submitted += len(normalized)
        self._wake()
        return request.future

    def diagnose_batch(self, cases: Sequence[DiagnosticCase | Mapping[str, str]],
                       names: Sequence[str] | None = None,
                       deadline: float | None = None,
                       timeout: float | None = None,
                       ) -> list[Diagnosis | DiagnosisFailure]:
        """Submit and wait: the synchronous batch entry point.

        Always runs with ``collect`` semantics — every slot returns a
        :class:`~repro.core.diagnosis.Diagnosis` or a structured
        :class:`~repro.core.diagnosis.DiagnosisFailure`.
        """
        return self.submit(cases, names=names,
                           deadline=deadline).result(timeout)

    def _normalize(self, cases, names) -> list[DiagnosticCase]:
        cases = list(cases)
        if names is not None and len(names) != len(cases):
            raise DiagnosisError(
                f"got {len(names)} names for {len(cases)} cases")
        normalized = []
        for index, case in enumerate(cases):
            if not isinstance(case, DiagnosticCase):
                name = names[index] if names is not None else f"case-{index}"
                case = case_from_evidence(self.model, case, name)
            normalized.append(case)
        return normalized

    def _check_intake_open(self) -> None:
        if self._draining or self._stopped:
            raise ServiceShutdownError(
                "the diagnosis service is shutting down")
        if self._pool_dead:
            raise ServingError(
                "every worker slot is dead (respawn budgets exhausted); "
                "the service cannot accept work")

    def _reserve_capacity(self, count: int) -> bool:
        """Backpressure valve.  Caller holds the lock; True when admitted."""
        limit = self.config.max_pending_cases
        if self._pending_cases + count <= limit:
            return True
        if self.config.overload_policy == "reject":
            return False
        patience_end = time.monotonic() + self.config.submit_timeout
        while self._pending_cases + count > limit:
            remaining = patience_end - time.monotonic()
            if remaining <= 0:
                return False
            self._capacity.wait(remaining)
            self._check_intake_open()
        return True

    # ------------------------------------------------------------ monitoring
    def stats(self) -> ServiceStats:
        """Return a consistent :class:`ServiceStats` snapshot."""
        with self._lock:
            return ServiceStats(
                workers=len(self._workers),
                workers_alive=sum(1 for w in self._workers if w.alive),
                workers_quarantined=sum(
                    1 for w in self._workers
                    if w.alive and w.breaker.quarantined),
                queue_depth=self._pending_cases,
                in_flight=self._in_flight_cases,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                shed=self._shed,
                chunk_retries=self._retries,
                respawns=self._respawns,
                probes=self._probes,
                chunk_latency_p50=self._latency.percentile(50.0),
                chunk_latency_p99=self._latency.percentile(99.0),
                uptime=time.monotonic() - self._start_time,
                compile_ms=self._compile_ms,
                compiled_queries=self._compiled_queries,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_quarantined=self._cache_quarantined,
                model_reloads=self._model_reloads,
                chunk_size=self._chunk_size)

    def publish_model(self, built_model: BuiltModel, *,
                      validate: bool = True) -> int:
        """Publish a model to this service's registry; returns its version.

        Requires ``persist_dir``.  The publish runs the full validation
        gate (:class:`~repro.persist.ModelRegistry`); once the version
        stamp flips, every worker hot-swaps at its next between-chunk poll
        — in-flight chunks finish on the old model, no case is dropped.
        """
        if self.persist_dir is None:
            raise ServingError(
                "publish_model requires the service to be constructed "
                "with persist_dir=...")
        from pathlib import Path

        from repro.persist import ModelRegistry
        with ModelRegistry(Path(self.persist_dir) / "models") as registry:
            return registry.publish(built_model, validate=validate)

    # -------------------------------------------------------------- shutdown
    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` finishes every queued and in-flight case first;
        ``drain=False`` fails outstanding slots with structured
        ``ServiceShutdownError`` failures and kills the pool.  Every
        submitted case's future completes either way.
        """
        with self._capacity:
            if self._stopped and not self._supervisor.is_alive():
                return
            self._draining = True
            if not drain:
                self._abort = True
            self._capacity.notify_all()
        self._wake()
        self._supervisor.join(timeout)

    def _wake(self) -> None:
        try:
            os.write(self._wakeup_w, b"x")
        except (BlockingIOError, OSError):
            pass

    # ------------------------------------------------------------ supervisor
    def _supervise(self) -> None:
        while True:
            with self._lock:
                now = time.monotonic()
                if self._abort:
                    self._fail_outstanding("service shut down before "
                                           "completion (drain=False)")
                self._expire_queued(now)
                self._dispatch(now)
                self._send_probes(now)
                if self._finished():
                    break
                waiters, conn_map, sentinel_map = self._build_waiters()
                timeout = self._next_timeout(now)
            ready = mp_connection.wait(waiters, timeout)
            with self._lock:
                now = time.monotonic()
                if self._wakeup_r in ready:
                    self._drain_wakeup()
                for item in ready:
                    worker = conn_map.get(id(item))
                    if worker is not None and worker.conn is item:
                        self._drain_conn(worker, now)
                for item in ready:
                    worker = sentinel_map.get(item)
                    if worker is not None and worker.alive \
                            and worker.process is not None \
                            and worker.process.sentinel == item \
                            and not worker.process.is_alive():
                        self._on_worker_death(worker, "crashed", now)
                self._reap_overdue(now)
        self._stop_workers()

    def _build_waiters(self):
        waiters: list = [self._wakeup_r]
        conn_map: dict[int, _Worker] = {}
        sentinel_map: dict = {}
        for worker in self._workers:
            if not worker.alive or worker.process is None:
                continue
            waiters.append(worker.conn)
            conn_map[id(worker.conn)] = worker
            waiters.append(worker.process.sentinel)
            sentinel_map[worker.process.sentinel] = worker
        return waiters, conn_map, sentinel_map

    def _drain_wakeup(self) -> None:
        try:
            os.set_blocking(self._wakeup_r, False)
            while os.read(self._wakeup_r, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _next_timeout(self, now: float) -> float | None:
        deadlines = []
        for worker in self._workers:
            if worker.state == "busy" and worker.reap_at is not None:
                deadlines.append(worker.reap_at)
            if worker.state == "probing" \
                    and worker.probe_deadline is not None:
                deadlines.append(worker.probe_deadline)
            if worker.alive:
                transition = worker.breaker.next_transition()
                if transition is not None:
                    deadlines.append(transition)
        if self._deadline_requests:
            for chunk in self._queue:
                if chunk.request.deadline_end is not None:
                    deadlines.append(chunk.request.deadline_end)
        if self._draining and not deadlines:
            return 0.1
        if not deadlines:
            return None
        return max(0.005, min(deadlines) - now)

    def _finished(self) -> bool:
        if not self._draining:
            return False
        busy = any(worker.state in ("busy", "probing")
                   for worker in self._workers)
        return not self._queue and not busy

    # ---------------------------------------------------------- worker events
    def _drain_conn(self, worker: _Worker, now: float) -> None:
        try:
            while worker.conn.poll():
                self._handle_message(worker, worker.conn.recv(), now)
        except (EOFError, OSError):
            self._on_worker_death(worker, "pipe closed", now)

    def _handle_message(self, worker: _Worker, message, now: float) -> None:
        kind = message[0]
        if kind == "ready":
            if worker.state == "starting":
                worker.state = "idle"
            if len(message) > 2:
                # Workers with compiled policies report their one-time
                # program-trace cost alongside readiness.
                self._compile_ms += float(message[2])
            self._dispatch(now)
        elif kind == "done":
            self._complete_chunk(worker, message, now)
        elif kind == "probe-ok":
            if worker.state == "probing" and worker.probe_id == message[1]:
                worker.breaker.record_success()
                worker.state = "idle"
                worker.probe_id = None
                worker.probe_deadline = None
                self._dispatch(now)
        elif kind == "fatal":
            self._on_worker_death(worker, f"engine build failed:\n{message[1]}",
                                  now)

    def _complete_chunk(self, worker: _Worker, message, now: float) -> None:
        _, chunk_id, results, elapsed = message[:4]
        chunk = worker.chunk
        if chunk is None or chunk.chunk_id != chunk_id:
            return  # stale (should not happen: one pipe per process)
        worker.chunk = None
        worker.reap_at = None
        worker.state = "idle"
        worker.breaker.record_success()
        self._latency.record(elapsed)
        if chunk.pairs:
            self._case_latency.record(elapsed / len(chunk.pairs))
        if len(message) > 4:
            self._compiled_queries += int(message[4])
        if len(message) > 5 and message[5]:
            deltas = message[5]
            self._cache_hits += int(deltas.get("cache_hits", 0))
            self._cache_misses += int(deltas.get("cache_misses", 0))
            self._cache_quarantined += int(
                deltas.get("cache_quarantined", 0))
            self._model_reloads += int(deltas.get("model_reloads", 0))
        if self.config.adaptive_chunking:
            self._chunk_size = adapt_chunk_size(
                self._chunk_size, self._case_latency.percentile(99.0),
                self.config.resolved_latency_target(),
                self.config.min_chunk_size, self.config.max_chunk_size)
        self._in_flight_cases -= len(chunk.pairs)
        for slot, result in results:
            self._write_slot(chunk.request, slot, result)
        self._dispatch(now)

    def _on_worker_death(self, worker: _Worker, reason: str,
                         now: float) -> None:
        if not worker.alive or worker.process is None:
            return
        # Salvage anything the worker managed to send before dying.
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                if message[0] == "done":
                    self._complete_chunk(worker, message, now)
        except (EOFError, OSError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        process = worker.process
        if process.is_alive():
            process.kill()
        process.join(5.0)
        worker.breaker.record_failure(now)
        chunk = worker.chunk
        worker.chunk = None
        worker.reap_at = None
        worker.probe_id = None
        worker.probe_deadline = None
        if chunk is not None:
            self._in_flight_cases -= len(chunk.pairs)
            self._requeue_crashed(chunk, reason, worker.index)
        if worker.respawns < self.config.max_respawns_per_worker:
            worker.respawns += 1
            worker.generation += 1
            self._respawns += 1
            self._spawn_process(worker)
        else:
            worker.state = "dead"
            worker.process = None
            worker.conn = None
            if not any(w.alive for w in self._workers):
                self._pool_dead = True
                self._fail_outstanding(
                    "every worker slot is dead (respawn budgets exhausted)")
        self._dispatch(now)

    def _requeue_crashed(self, chunk: _Chunk, reason: str,
                         worker_index: int) -> None:
        """Crash-retry policy: bisect multi-case chunks, budget singles."""
        self._retries += 1
        request = chunk.request
        if request.deadline_end is not None \
                and time.monotonic() >= request.deadline_end:
            self._fail_chunk(chunk, DeadlineExceededError(
                "request deadline expired while retrying a chunk lost to a "
                f"worker failure ({reason})"))
            return
        if len(chunk.pairs) > 1:
            middle = len(chunk.pairs) // 2
            for pairs in (chunk.pairs[:middle], chunk.pairs[middle:]):
                self._queue.appendleft(_Chunk(next(self._chunk_ids), request,
                                              pairs, chunk.attempts))
            self._pending_cases += len(chunk.pairs)
            return
        if chunk.attempts >= self.config.max_chunk_retries:
            self._fail_chunk(chunk, WorkerCrashError(
                f"case lost to worker {worker_index} ({reason}) and retry "
                f"budget of {self.config.max_chunk_retries} is spent",
                attempts=chunk.attempts + 1))
            return
        chunk.attempts += 1
        self._queue.appendleft(chunk)
        self._pending_cases += len(chunk.pairs)

    def _reap_overdue(self, now: float) -> None:
        for worker in self._workers:
            if worker.state == "busy" and worker.reap_at is not None \
                    and now >= worker.reap_at:
                self._on_worker_death(worker, "hang (chunk overdue)", now)
            elif worker.state == "probing" \
                    and worker.probe_deadline is not None \
                    and now >= worker.probe_deadline:
                self._on_worker_death(worker, "probe timeout", now)

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, now: float) -> None:
        while self._queue:
            worker = next(
                (w for w in self._workers
                 if w.state == "idle" and w.breaker.allows_dispatch()),
                None)
            if worker is None:
                return
            chunk = self._queue.popleft()
            request = chunk.request
            budget = None
            if request.deadline_end is not None:
                budget = request.deadline_end - now
                if budget <= 0:
                    self._pending_cases -= len(chunk.pairs)
                    self._capacity.notify_all()
                    self._fail_chunk(chunk, DeadlineExceededError(
                        "request deadline expired before the case reached "
                        "a worker", remaining=budget), queued=False)
                    continue
            try:
                worker.conn.send(("chunk", chunk.chunk_id, chunk.pairs,
                                  budget))
            except (OSError, BrokenPipeError, ValueError):
                self._queue.appendleft(chunk)
                self._on_worker_death(worker, "pipe broken at dispatch", now)
                continue
            worker.state = "busy"
            worker.chunk = chunk
            deadlines = []
            if self.config.chunk_timeout is not None:
                deadlines.append(self.config.chunk_timeout)
            if budget is not None:
                deadlines.append(budget + self.config.deadline_grace)
            worker.reap_at = now + min(deadlines) if deadlines else None
            self._pending_cases -= len(chunk.pairs)
            self._in_flight_cases += len(chunk.pairs)
            self._capacity.notify_all()

    def _send_probes(self, now: float) -> None:
        for worker in self._workers:
            if worker.state == "idle" and worker.breaker.probe_due(now):
                worker.probe_id = next(self._probe_ids)
                try:
                    worker.conn.send(("probe", worker.probe_id))
                except (OSError, BrokenPipeError, ValueError):
                    self._on_worker_death(worker, "pipe broken at probe", now)
                    continue
                worker.breaker.begin_probe()
                worker.state = "probing"
                worker.probe_deadline = now + self.config.probe_timeout
                self._probes += 1

    def _expire_queued(self, now: float) -> None:
        if not self._deadline_requests:
            return
        kept: deque[_Chunk] = deque()
        expired: list[_Chunk] = []
        for chunk in self._queue:
            end = chunk.request.deadline_end
            (expired if end is not None and now >= end else kept).append(chunk)
        if expired:
            self._queue = kept
            for chunk in expired:
                self._pending_cases -= len(chunk.pairs)
                self._fail_chunk(chunk, DeadlineExceededError(
                    "request deadline expired before the case reached a "
                    "worker"), queued=False)
            self._capacity.notify_all()

    # ------------------------------------------------------------ accounting
    def _write_slot(self, request: _Request, slot: int, result) -> None:
        if request.results[slot] is not None:
            return  # defensive: a slot is only ever written once
        request.results[slot] = result
        request.remaining -= 1
        if getattr(result, "ok", False):
            self._completed += 1
        else:
            self._failed += 1
        if request.remaining == 0:
            if request.deadline_end is not None:
                self._deadline_requests -= 1
            request.future._complete(request.results)

    def _fail_chunk(self, chunk: _Chunk, error: Exception,
                    queued: bool = True) -> None:
        for slot, case in chunk.pairs:
            self._write_slot(chunk.request, slot,
                             DiagnosisFailure.from_exception(
                                 case.name, case.raw_evidence(), error))

    def _fail_outstanding(self, message: str) -> None:
        """Fail every queued and in-flight slot structurally (abort path)."""
        error = ServiceShutdownError(message)
        while self._queue:
            chunk = self._queue.popleft()
            self._pending_cases -= len(chunk.pairs)
            self._fail_chunk(chunk, error)
        for worker in self._workers:
            if worker.state == "busy" and worker.chunk is not None:
                chunk = worker.chunk
                worker.chunk = None
                worker.state = "idle"
                worker.reap_at = None
                self._in_flight_cases -= len(chunk.pairs)
                self._fail_chunk(chunk, error)
        self._capacity.notify_all()

    def _stop_workers(self) -> None:
        with self._lock:
            self._stopped = True
            workers = list(self._workers)
        for worker in workers:
            if not worker.alive or worker.process is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for worker in workers:
            if not worker.alive or worker.process is None:
                continue
            worker.process.join(2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.state = "dead"
        for descriptor in (self._wakeup_r, self._wakeup_w):
            try:
                os.close(descriptor)
            except OSError:
                pass
