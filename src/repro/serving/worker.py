"""The worker-process side of the diagnosis service.

Each worker hosts its own :class:`~repro.core.robust.RobustDiagnosisEngine`
(engines are deliberately not shared across processes: evidence caches,
sampler states and lazily built fallback engines are all per-process) and
runs a small message loop over a duplex pipe:

parent -> worker
    ``("chunk", chunk_id, [(slot, DiagnosticCase), ...], budget)`` — run a
    chunk; ``budget`` is the remaining request wall-clock budget in seconds
    at dispatch (``None`` for no deadline).
    ``("probe", probe_id)`` — circuit-breaker reinstatement probe.
    ``("stop",)`` — graceful exit.

worker -> parent
    ``("ready", pid, compile_ms)`` once the engine is built (and, for
    compiled policies, warm-compiled — the compile cost is reported here
    instead of silently inflating the first chunk's latency),
    ``("done", chunk_id, [(slot, Diagnosis | DiagnosisFailure), ...],
    elapsed, compiled_queries, persist_deltas)`` per chunk
    (``persist_deltas`` is a counter-delta dict — cache hits/misses,
    quarantined records, model reloads — or ``None`` without
    ``persist_dir``), ``("probe-ok", probe_id)`` per probe, and
    ``("fatal", message)`` if the engine cannot even be constructed.

With a ``persist_dir``, each worker opens the *shared* durable cache
(posteriors + compiled programs survive crashes and restarts) and the
model registry.  The registry is authoritative: when it holds a published
model, the worker serves that instead of the payload's, and between chunks
it polls the version stamp (throttled) — a bump hot-swaps a freshly built
engine without dropping the chunk stream.

Every per-case failure inside a healthy worker is converted to a structured
:class:`~repro.core.diagnosis.DiagnosisFailure` *here*, so the only way a
chunk comes back incomplete is the process dying — exactly the condition
the supervisor detects via the process sentinel.
"""

from __future__ import annotations

import dataclasses
import logging
import time
import traceback

from repro.core.diagnosis import Diagnosis, DiagnosisFailure, DiagnosticCase
from repro.core.model_builder import BuiltModel
from repro.core.robust import FallbackPolicy, RobustDiagnosisEngine


@dataclasses.dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs to build its engine.

    Picklable: shipped to the child under the ``spawn`` start method,
    inherited for free under ``fork``.  ``chaos`` is a
    :class:`~repro.testing.chaos.WorkerChaos` plan (testing only) and
    ``generation`` counts respawns of this worker slot, so chaos plans can
    disarm themselves after the first incarnation.
    """

    built_model: BuiltModel
    policy: FallbackPolicy
    abnormal_threshold: float = 0.5
    ambiguous_threshold: float = 0.4
    worker_index: int = 0
    generation: int = 0
    chaos: object | None = None
    persist_dir: str | None = None
    reload_poll_interval: float = 0.5


class _PersistRuntime:
    """Worker-side handle on the shared durable state.

    Owns the worker's :class:`~repro.persist.PosteriorCache` and
    :class:`~repro.persist.ModelRegistry` instances, throttles the
    between-chunk version poll, and accumulates counter totals across hot
    engine swaps so the supervisor receives clean per-chunk deltas.
    """

    def __init__(self, persist_dir: str, poll_interval: float) -> None:
        from pathlib import Path

        from repro.persist import ModelRegistry, PosteriorCache
        base = Path(persist_dir)
        self.cache = PosteriorCache(base / "cache")
        self.registry = ModelRegistry(base / "models")
        self.poll_interval = max(float(poll_interval), 0.0)
        self.model_version = 0
        self.reloads = 0
        self._last_poll = float("-inf")
        self._base_hits = 0
        self._base_misses = 0
        self._reported: dict[str, int] = {}

    def resolve_model(self, fallback: BuiltModel) -> BuiltModel:
        """The registry's published model wins over the shipped payload."""
        from repro.exceptions import ModelRegistryError
        try:
            version, model = self.registry.load()
        except ModelRegistryError:
            logging.getLogger("repro.serving").warning(
                "model registry unreadable; serving the payload model",
                exc_info=True)
            return fallback
        if model is None:
            return fallback
        self.model_version = version
        return model

    def poll_reload(self) -> BuiltModel | None:
        """Between-chunk version check; returns a new model on a bump.

        Throttled to ``poll_interval`` so the stamp read never shows up in
        chunk latency.  A corrupt or half-published registry is *not* a
        reason to stop serving: the worker keeps its current model and
        retries at the next poll.
        """
        from repro.exceptions import ModelRegistryError
        now = time.monotonic()
        if now - self._last_poll < self.poll_interval:
            return None
        self._last_poll = now
        try:
            version = self.registry.current_version()
            if version <= self.model_version:
                return None
            model = self.registry.load_version(version)
        except ModelRegistryError:
            logging.getLogger("repro.serving").warning(
                "model registry poll failed; keeping version %d",
                self.model_version, exc_info=True)
            return None
        self.model_version = version
        self.reloads += 1
        return model

    def note_engine_swap(self, old_engine: RobustDiagnosisEngine) -> None:
        """Fold a retired engine's counters into the running totals."""
        self._base_hits += old_engine.cache_hits
        self._base_misses += old_engine.cache_misses

    def deltas(self, engine: RobustDiagnosisEngine) -> dict[str, int]:
        """Counter movement since the last report (sent per chunk)."""
        totals = {
            "cache_hits": self._base_hits + engine.cache_hits,
            "cache_misses": self._base_misses + engine.cache_misses,
            "cache_quarantined": self.cache.quarantined,
            "model_reloads": self.reloads,
        }
        deltas = {key: value - self._reported.get(key, 0)
                  for key, value in totals.items()}
        self._reported = totals
        return deltas


def _build_engine(payload: WorkerPayload, model: BuiltModel,
                  persist: _PersistRuntime | None) -> RobustDiagnosisEngine:
    return RobustDiagnosisEngine(
        model, payload.policy,
        abnormal_threshold=payload.abnormal_threshold,
        ambiguous_threshold=payload.ambiguous_threshold,
        posterior_cache=None if persist is None else persist.cache)


def worker_main(conn, payload: WorkerPayload) -> None:
    """Run the worker message loop until ``stop`` or parent death."""
    import os

    try:
        persist = None
        if payload.persist_dir is not None:
            persist = _PersistRuntime(payload.persist_dir,
                                      payload.reload_poll_interval)
        model = payload.built_model if persist is None \
            else persist.resolve_model(payload.built_model)
        engine = _build_engine(payload, model, persist)
        compile_ms = 0.0
        if getattr(payload.policy, "compiled", False):
            # Pay the one-time program trace here, before the worker
            # reports ready, so the first chunk's latency is pure query
            # cost.  The cost is logged once per worker and reported to the
            # supervisor for the service-wide ``ServiceStats.compile_ms``
            # counter.
            compile_ms = engine.warm_compile()
            logging.getLogger("repro.serving").info(
                "worker %d compiled inference programs in %.1f ms",
                payload.worker_index, compile_ms)
    except Exception:  # noqa: BLE001 - reported to the supervisor
        try:
            conn.send(("fatal", traceback.format_exc()))
        finally:
            conn.close()
        return

    chaos = payload.chaos
    chunk_number = 0
    try:
        conn.send(("ready", os.getpid(), compile_ms))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone; die quietly
            kind = message[0]
            if kind == "stop":
                break
            if kind == "probe":
                conn.send(("probe-ok", message[1]))
                continue
            _, chunk_id, pairs, budget = message
            chunk_number += 1
            if chaos is not None:
                chaos.on_chunk(chunk_number, payload.generation)
            if persist is not None:
                fresh = persist.poll_reload()
                if fresh is not None:
                    # Hot swap: a fresh engine drops every stale evidence
                    # and program cache with it, and the new model's
                    # content fingerprint re-keys the durable cache.
                    persist.note_engine_swap(engine)
                    engine = _build_engine(payload, fresh, persist)
                    if getattr(payload.policy, "compiled", False):
                        engine.warm_compile()
            started = time.perf_counter()
            queries_before = engine.compiled_query_count
            results = _run_chunk(engine, pairs, budget, chaos)
            conn.send(("done", chunk_id, results,
                       time.perf_counter() - started,
                       engine.compiled_query_count - queries_before,
                       None if persist is None else persist.deltas(engine)))
    except (EOFError, OSError, BrokenPipeError):
        pass
    finally:
        conn.close()


def _run_chunk(engine: RobustDiagnosisEngine, pairs, budget, chaos):
    """Diagnose every ``(slot, case)`` pair, never letting one escape.

    The chunk's remaining request budget is shared across its cases via the
    engine's draining-deadline closure, so a request deadline set at the
    service API bounds every attempt down in the fallback chain.
    """
    diagnose = engine.diagnose if budget is None \
        else engine._deadline_diagnose(budget)
    results = []
    for slot, case in pairs:
        if chaos is not None:
            chaos.on_case(case)
        results.append((slot, _diagnose_collect(diagnose, case)))
    return results


def _diagnose_collect(diagnose, case: DiagnosticCase,
                      ) -> Diagnosis | DiagnosisFailure:
    """Run one case, converting any failure into a structured record."""
    try:
        return diagnose(case)
    except Exception as error:  # noqa: BLE001 - structured transport
        return DiagnosisFailure.from_exception(
            case.name, case.raw_evidence(), error,
            attempts=tuple(getattr(error, "attempts", ()) or ()),
            wall_time=float(getattr(error, "wall_time", 0.0) or 0.0))
