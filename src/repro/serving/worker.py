"""The worker-process side of the diagnosis service.

Each worker hosts its own :class:`~repro.core.robust.RobustDiagnosisEngine`
(engines are deliberately not shared across processes: evidence caches,
sampler states and lazily built fallback engines are all per-process) and
runs a small message loop over a duplex pipe:

parent -> worker
    ``("chunk", chunk_id, [(slot, DiagnosticCase), ...], budget)`` — run a
    chunk; ``budget`` is the remaining request wall-clock budget in seconds
    at dispatch (``None`` for no deadline).
    ``("probe", probe_id)`` — circuit-breaker reinstatement probe.
    ``("stop",)`` — graceful exit.

worker -> parent
    ``("ready", pid, compile_ms)`` once the engine is built (and, for
    compiled policies, warm-compiled — the compile cost is reported here
    instead of silently inflating the first chunk's latency),
    ``("done", chunk_id, [(slot, Diagnosis | DiagnosisFailure), ...],
    elapsed, compiled_queries)`` per chunk, ``("probe-ok", probe_id)`` per
    probe, and ``("fatal", message)`` if the engine cannot even be
    constructed.

Every per-case failure inside a healthy worker is converted to a structured
:class:`~repro.core.diagnosis.DiagnosisFailure` *here*, so the only way a
chunk comes back incomplete is the process dying — exactly the condition
the supervisor detects via the process sentinel.
"""

from __future__ import annotations

import dataclasses
import logging
import time
import traceback

from repro.core.diagnosis import Diagnosis, DiagnosisFailure, DiagnosticCase
from repro.core.model_builder import BuiltModel
from repro.core.robust import FallbackPolicy, RobustDiagnosisEngine


@dataclasses.dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs to build its engine.

    Picklable: shipped to the child under the ``spawn`` start method,
    inherited for free under ``fork``.  ``chaos`` is a
    :class:`~repro.testing.chaos.WorkerChaos` plan (testing only) and
    ``generation`` counts respawns of this worker slot, so chaos plans can
    disarm themselves after the first incarnation.
    """

    built_model: BuiltModel
    policy: FallbackPolicy
    abnormal_threshold: float = 0.5
    ambiguous_threshold: float = 0.4
    worker_index: int = 0
    generation: int = 0
    chaos: object | None = None


def worker_main(conn, payload: WorkerPayload) -> None:
    """Run the worker message loop until ``stop`` or parent death."""
    import os

    try:
        engine = RobustDiagnosisEngine(
            payload.built_model, payload.policy,
            abnormal_threshold=payload.abnormal_threshold,
            ambiguous_threshold=payload.ambiguous_threshold)
        compile_ms = 0.0
        if getattr(payload.policy, "compiled", False):
            # Pay the one-time program trace here, before the worker
            # reports ready, so the first chunk's latency is pure query
            # cost.  The cost is logged once per worker and reported to the
            # supervisor for the service-wide ``ServiceStats.compile_ms``
            # counter.
            compile_ms = engine.warm_compile()
            logging.getLogger("repro.serving").info(
                "worker %d compiled inference programs in %.1f ms",
                payload.worker_index, compile_ms)
    except Exception:  # noqa: BLE001 - reported to the supervisor
        try:
            conn.send(("fatal", traceback.format_exc()))
        finally:
            conn.close()
        return

    chaos = payload.chaos
    chunk_number = 0
    try:
        conn.send(("ready", os.getpid(), compile_ms))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone; die quietly
            kind = message[0]
            if kind == "stop":
                break
            if kind == "probe":
                conn.send(("probe-ok", message[1]))
                continue
            _, chunk_id, pairs, budget = message
            chunk_number += 1
            if chaos is not None:
                chaos.on_chunk(chunk_number, payload.generation)
            started = time.perf_counter()
            queries_before = engine.compiled_query_count
            results = _run_chunk(engine, pairs, budget, chaos)
            conn.send(("done", chunk_id, results,
                       time.perf_counter() - started,
                       engine.compiled_query_count - queries_before))
    except (EOFError, OSError, BrokenPipeError):
        pass
    finally:
        conn.close()


def _run_chunk(engine: RobustDiagnosisEngine, pairs, budget, chaos):
    """Diagnose every ``(slot, case)`` pair, never letting one escape.

    The chunk's remaining request budget is shared across its cases via the
    engine's draining-deadline closure, so a request deadline set at the
    service API bounds every attempt down in the fallback chain.
    """
    diagnose = engine.diagnose if budget is None \
        else engine._deadline_diagnose(budget)
    results = []
    for slot, case in pairs:
        if chaos is not None:
            chaos.on_case(case)
        results.append((slot, _diagnose_collect(diagnose, case)))
    return results


def _diagnose_collect(diagnose, case: DiagnosticCase,
                      ) -> Diagnosis | DiagnosisFailure:
    """Run one case, converting any failure into a structured record."""
    try:
        return diagnose(case)
    except Exception as error:  # noqa: BLE001 - structured transport
        return DiagnosisFailure.from_exception(
            case.name, case.raw_evidence(), error,
            attempts=tuple(getattr(error, "attempts", ()) or ()),
            wall_time=float(getattr(error, "wall_time", 0.0) or 0.0))
