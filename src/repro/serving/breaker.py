"""Per-worker circuit breaker: quarantine repeat offenders, probe, reinstate.

A worker slot that keeps crashing or timing out is worse than a missing
worker — every chunk it receives burns a retry from that chunk's budget.
The supervisor therefore runs one :class:`CircuitBreaker` per worker slot:

* **closed** — healthy; chunks flow.
* **open** — after ``threshold`` consecutive failures the slot is
  quarantined for ``cooldown`` seconds; it receives no chunks.
* **half-open** — cooldown elapsed; the supervisor sends one cheap probe.
  Success closes the breaker (failure streak reset), failure re-opens it
  with the cooldown doubled up to ``max_cooldown`` (a flapping worker backs
  off, not the service).

The breaker is plain state + arithmetic on a supplied monotonic ``now`` so
it is trivially unit-testable without processes or clocks.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with probe-based reinstatement."""

    def __init__(self, threshold: int = 3, cooldown: float = 1.0,
                 max_cooldown: float = 30.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.base_cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self._cooldown = cooldown
        self._open_until = 0.0

    @property
    def quarantined(self) -> bool:
        return self.state != CLOSED

    def record_success(self) -> None:
        """A chunk (or probe) succeeded: close and reset the streak."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self._cooldown = self.base_cooldown

    def record_failure(self, now: float) -> None:
        """A chunk crashed/hung (or a probe failed) on this worker."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # Failed its reinstatement probe: back off harder.
            self._cooldown = min(self._cooldown * 2.0, self.max_cooldown)
            self.state = OPEN
            self._open_until = now + self._cooldown
        elif self.consecutive_failures >= self.threshold:
            self.state = OPEN
            self._open_until = now + self._cooldown

    def allows_dispatch(self) -> bool:
        """Whether normal chunks may be sent to this worker right now."""
        return self.state == CLOSED

    def probe_due(self, now: float) -> bool:
        """Whether the supervisor should send a reinstatement probe."""
        return self.state == OPEN and now >= self._open_until

    def begin_probe(self) -> None:
        self.state = HALF_OPEN

    def next_transition(self) -> float | None:
        """Monotonic time of the next state change, for wait timeouts."""
        return self._open_until if self.state == OPEN else None
