"""Service observability: latency percentiles and the health snapshot.

Degradation must be observable, not silent: every supervisor decision
(respawn, retry, shed, quarantine) increments a counter, chunk latencies
feed a bounded reservoir, and :meth:`DiagnosisService.stats
<repro.serving.service.DiagnosisService.stats>` freezes the whole picture
into one immutable :class:`ServiceStats` a dashboard or log line can
consume as JSON.
"""

from __future__ import annotations

import dataclasses
from collections import deque


class LatencyWindow:
    """A bounded reservoir of recent latencies with percentile reads.

    Keeps the newest ``maxlen`` samples (enough for stable p50/p99 on a
    serving window) in O(1) per record; percentile reads sort a copy, which
    is fine at snapshot frequency.
    """

    def __init__(self, maxlen: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float | None:
        """Return the ``q``-th percentile (0..100), ``None`` when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclasses.dataclass(frozen=True)
class ServiceStats:
    """A consistent point-in-time snapshot of service health.

    Attributes
    ----------
    workers:
        Configured pool size.
    workers_alive:
        Workers with a live process (busy, idle, quarantined or probing).
    workers_quarantined:
        Workers currently held out of dispatch by their circuit breaker.
    queue_depth:
        Cases submitted but not yet dispatched to a worker.
    in_flight:
        Cases currently executing on workers.
    submitted / completed / failed:
        Lifetime case counters; ``failed`` counts structured
        ``DiagnosisFailure`` slots (including crash-retry exhaustion and
        deadline expiries), never lost slots.
    shed:
        Submissions rejected by the backpressure policy (whole requests).
    chunk_retries:
        Chunks re-queued after a worker crash or hang.
    respawns:
        Worker processes restarted by the supervisor.
    probes:
        Reinstatement probes sent to quarantined workers.
    chunk_latency_p50 / chunk_latency_p99:
        Percentiles over recent chunk wall times in seconds (``None``
        before any chunk completed).
    uptime:
        Seconds since the service started.
    compile_ms:
        Total milliseconds workers spent ahead-of-time compiling inference
        programs at init (0.0 for non-compiled policies) — the one-time
        cost the warm-compile step keeps out of first-chunk latency.
    compiled_queries:
        Lifetime count of posterior queries served from compiled programs
        across all workers.
    cache_hits / cache_misses:
        Durable-cache lookups across all workers (0 without
        ``persist_dir``): hits were answered from the shared on-disk
        posterior cache without any inference.
    cache_quarantined:
        Corrupt durable-cache records detected, counted and skipped by
        workers — every one of these was a wrong answer that *wasn't*
        served.
    model_reloads:
        Hot model swaps workers performed after a registry publish.
    chunk_size:
        The service's current dispatch chunk size (moves between
        ``min_chunk_size`` and ``max_chunk_size`` under adaptive
        chunking; otherwise the configured constant).
    """

    workers: int
    workers_alive: int
    workers_quarantined: int
    queue_depth: int
    in_flight: int
    submitted: int
    completed: int
    failed: int
    shed: int
    chunk_retries: int
    respawns: int
    probes: int
    chunk_latency_p50: float | None
    chunk_latency_p99: float | None
    uptime: float
    compile_ms: float = 0.0
    compiled_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_quarantined: int = 0
    model_reloads: int = 0
    chunk_size: int = 0

    def to_dict(self) -> dict:
        """Return a JSON-safe dict of the snapshot."""
        return dataclasses.asdict(self)
