"""Directed-acyclic-graph primitives for Bayesian belief networks.

The BBN structure model of the paper (Section III-A.1) is a directed acyclic
graph whose nodes are the functional blocks of the analogue circuit and whose
arcs are the cause–effect dependencies between blocks.  This module provides
the graph data structure together with the classical queries inference and
learning need: topological ordering, ancestor/descendant sets, the moral
graph and d-separation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.exceptions import GraphError

Node = Hashable


class DirectedGraph:
    """A simple directed graph with optional acyclicity enforcement.

    Parameters
    ----------
    edges:
        Optional iterable of ``(parent, child)`` pairs.
    nodes:
        Optional iterable of nodes to add up front (isolated nodes are
        allowed; a block with no modelled dependencies is still a model
        variable).
    """

    def __init__(self, edges: Iterable[tuple[Node, Node]] | None = None,
                 nodes: Iterable[Node] | None = None) -> None:
        self._parents: dict[Node, list[Node]] = {}
        self._children: dict[Node, list[Node]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for parent, child in edges:
                self.add_edge(parent, child)

    # ------------------------------------------------------------------ nodes
    @property
    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._parents)

    def add_node(self, node: Node) -> None:
        """Add ``node`` if it is not already present."""
        if node not in self._parents:
            self._parents[node] = []
            self._children[node] = []

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` is in the graph."""
        return node in self._parents

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return len(self._parents)

    # ------------------------------------------------------------------ edges
    @property
    def edges(self) -> list[tuple[Node, Node]]:
        """All ``(parent, child)`` edges."""
        return [(parent, child)
                for child, parents in self._parents.items()
                for parent in parents]

    def add_edge(self, parent: Node, child: Node) -> None:
        """Add the directed edge ``parent -> child``.

        Raises
        ------
        GraphError
            If the edge would introduce a cycle or a self loop.
        """
        if parent == child:
            raise GraphError(f"self loop on node {parent!r} is not allowed")
        self.add_node(parent)
        self.add_node(child)
        if parent in self._parents[child]:
            return
        if self._is_reachable(child, parent):
            raise GraphError(
                f"adding edge {parent!r} -> {child!r} would create a cycle")
        self._parents[child].append(parent)
        self._children[parent].append(child)

    def remove_edge(self, parent: Node, child: Node) -> None:
        """Remove the directed edge ``parent -> child`` if present."""
        if child in self._parents and parent in self._parents[child]:
            self._parents[child].remove(parent)
            self._children[parent].remove(child)

    def has_edge(self, parent: Node, child: Node) -> bool:
        """Return ``True`` when the edge ``parent -> child`` exists."""
        return child in self._parents and parent in self._parents[child]

    def parents(self, node: Node) -> list[Node]:
        """Return the parents of ``node`` in insertion order."""
        self._require(node)
        return list(self._parents[node])

    def children(self, node: Node) -> list[Node]:
        """Return the children of ``node`` in insertion order."""
        self._require(node)
        return list(self._children[node])

    def in_degree(self, node: Node) -> int:
        """Return the number of parents of ``node``."""
        self._require(node)
        return len(self._parents[node])

    def out_degree(self, node: Node) -> int:
        """Return the number of children of ``node``."""
        self._require(node)
        return len(self._children[node])

    def roots(self) -> list[Node]:
        """Return all nodes with no parents."""
        return [node for node in self._parents if not self._parents[node]]

    def leaves(self) -> list[Node]:
        """Return all nodes with no children."""
        return [node for node in self._children if not self._children[node]]

    # ------------------------------------------------------------ reachability
    def _require(self, node: Node) -> None:
        if node not in self._parents:
            raise GraphError(f"node {node!r} is not in the graph")

    def _is_reachable(self, source: Node, target: Node) -> bool:
        """Return ``True`` when ``target`` is reachable from ``source``."""
        if source == target:
            return True
        queue = deque([source])
        seen = {source}
        while queue:
            node = queue.popleft()
            for child in self._children.get(node, ()):
                if child == target:
                    return True
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return False

    def ancestors(self, node: Node) -> set[Node]:
        """Return every node from which ``node`` is reachable (excluding itself)."""
        self._require(node)
        result: set[Node] = set()
        queue = deque(self._parents[node])
        while queue:
            current = queue.popleft()
            if current in result:
                continue
            result.add(current)
            queue.extend(self._parents[current])
        return result

    def descendants(self, node: Node) -> set[Node]:
        """Return every node reachable from ``node`` (excluding itself)."""
        self._require(node)
        result: set[Node] = set()
        queue = deque(self._children[node])
        while queue:
            current = queue.popleft()
            if current in result:
                continue
            result.add(current)
            queue.extend(self._children[current])
        return result

    def ancestral_set(self, nodes: Iterable[Node]) -> set[Node]:
        """Return the given nodes together with all their ancestors."""
        result: set[Node] = set()
        for node in nodes:
            result.add(node)
            result |= self.ancestors(node)
        return result

    # -------------------------------------------------------------- orderings
    def topological_sort(self) -> list[Node]:
        """Return the nodes in a parents-before-children order.

        Raises
        ------
        GraphError
            If the graph contains a cycle (cannot happen when edges were only
            added through :meth:`add_edge`, which rejects cycles).
        """
        in_degree = {node: len(parents) for node, parents in self._parents.items()}
        queue = deque(node for node, degree in in_degree.items() if degree == 0)
        order: list[Node] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._parents):
            raise GraphError("graph contains a cycle; topological sort impossible")
        return order

    # ------------------------------------------------------------ moral graph
    def moral_graph(self) -> dict[Node, set[Node]]:
        """Return the moralised, undirected adjacency of the DAG.

        Moralisation connects every pair of parents of a common child and
        drops edge directions; it is the first step of junction-tree
        construction.
        """
        adjacency: dict[Node, set[Node]] = {node: set() for node in self._parents}
        for child, parents in self._parents.items():
            for parent in parents:
                adjacency[parent].add(child)
                adjacency[child].add(parent)
            for i, first in enumerate(parents):
                for second in parents[i + 1:]:
                    adjacency[first].add(second)
                    adjacency[second].add(first)
        return adjacency

    # ------------------------------------------------------------ d-separation
    def active_trail_nodes(self, start: Node,
                           observed: Iterable[Node] = ()) -> set[Node]:
        """Return all nodes reachable from ``start`` via an active trail.

        Implements the classical "Bayes-ball" reachability algorithm.  A node
        is in the result when there exists a trail from ``start`` to it that
        is not blocked by the ``observed`` set.
        """
        self._require(start)
        observed = set(observed)
        ancestors_of_observed = set(observed)
        for node in observed:
            ancestors_of_observed |= self.ancestors(node)

        # Each visit is a (node, direction) pair; direction 'up' means the
        # trail arrives from a child, 'down' means it arrives from a parent.
        visited: set[tuple[Node, str]] = set()
        reachable: set[Node] = set()
        queue: deque[tuple[Node, str]] = deque([(start, "up")])
        while queue:
            node, direction = queue.popleft()
            if (node, direction) in visited:
                continue
            visited.add((node, direction))
            if node not in observed:
                reachable.add(node)
            if direction == "up" and node not in observed:
                for parent in self._parents[node]:
                    queue.append((parent, "up"))
                for child in self._children[node]:
                    queue.append((child, "down"))
            elif direction == "down":
                if node not in observed:
                    for child in self._children[node]:
                        queue.append((child, "down"))
                if node in ancestors_of_observed:
                    for parent in self._parents[node]:
                        queue.append((parent, "up"))
        reachable.discard(start)
        return reachable

    def is_d_separated(self, first: Node, second: Node,
                       observed: Iterable[Node] = ()) -> bool:
        """Return ``True`` when ``first`` and ``second`` are d-separated given ``observed``."""
        self._require(second)
        return second not in self.active_trail_nodes(first, observed)

    # ---------------------------------------------------------------- utility
    def copy(self) -> "DirectedGraph":
        """Return an independent copy of the graph.

        Copies the adjacency directly instead of replaying :meth:`add_edge`:
        the source graph is already acyclic, so re-running the per-edge
        reachability check would only redo work.
        """
        clone = DirectedGraph.__new__(DirectedGraph)
        clone._parents = {node: list(parents)
                          for node, parents in self._parents.items()}
        clone._children = {node: list(children)
                           for node, children in self._children.items()}
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DirectedGraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = DirectedGraph(nodes=[n for n in self.nodes if n in keep])
        for parent, child in self.edges:
            if parent in keep and child in keep:
                sub.add_edge(parent, child)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DirectedGraph(nodes={len(self._parents)}, "
                f"edges={len(self.edges)})")
