"""Forward and rejection sampling from a Bayesian network.

Forward sampling is used throughout the test suite (to generate ground-truth
data with known parameters) and by the benchmark harness to create synthetic
failed-device populations when the behavioural circuit simulator is not
involved.

Sampling is vectorised: whole batches are drawn as integer state arrays with
row-indexed CPT lookups (one inverse-CDF draw per node over the entire
batch), instead of per-sample Python dict loops.  The same compiled-table
machinery backs the likelihood-weighting and Gibbs engines.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng


class CompiledNode:
    """Per-node tables flattened for batched sampling.

    Attributes
    ----------
    table_t:
        The CPT transposed to ``(parent_configurations, cardinality)`` so a
        batch of configuration columns gathers a batch of distributions in
        one fancy-indexing call.
    parents / strides:
        Parent names and the mixed-radix strides that turn a batch of parent
        state arrays into configuration column indices (last parent varies
        fastest, matching ``TabularCPD.parent_configuration_index``).
    """

    __slots__ = ("name", "cardinality", "table_t", "cumulative", "parents", "strides")

    def __init__(self, name: str, cardinality: int, table: np.ndarray,
                 parents: list[str], parent_cardinalities: list[int]) -> None:
        self.name = name
        self.cardinality = cardinality
        self.table_t = np.ascontiguousarray(table.T)
        self.cumulative = np.cumsum(self.table_t, axis=1)
        strides = []
        stride = 1
        for card in reversed(parent_cardinalities):
            strides.append(stride)
            stride *= card
        self.parents = parents
        self.strides = list(reversed(strides))

    def columns(self, states: Mapping[str, np.ndarray], count: int) -> np.ndarray:
        """Return the CPT column index per batch row for the parent states."""
        if not self.parents:
            return np.zeros(count, dtype=np.intp)
        columns = states[self.parents[0]] * self.strides[0]
        for parent, stride in zip(self.parents[1:], self.strides[1:]):
            columns = columns + states[parent] * stride
        return columns

    def draw(self, columns: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sample one state per batch row from the given columns."""
        cumulative = self.cumulative[columns]
        uniforms = rng.random(len(columns))
        states = (cumulative < uniforms[:, None]).sum(axis=1)
        return np.minimum(states, self.cardinality - 1).astype(np.intp)


def cpd_signature(network: BayesianNetwork) -> tuple:
    """Version snapshot of the network's CPD set.

    ``add_cpd`` bumps the network's ``cpd_version`` counter, so comparing
    signatures detects parameter updates between queries without touching
    the CPD objects themselves — this runs on every cached query, so it
    must stay O(1).  (In-place mutation of a CPD's table array is not
    detectable and remains unsupported, as before.)
    """
    return (id(network), network.cpd_version)


def state_to_index(network: BayesianNetwork, variable: str,
                   state: str | int) -> int:
    """Normalise a state name or index for ``variable``, validating range."""
    cpd = network.get_cpd(variable)
    if isinstance(state, (int, np.integer)):
        index = int(state)
        if not 0 <= index < cpd.cardinality:
            raise InferenceError(
                f"state index {index} out of range for variable {variable!r}")
        return index
    try:
        return cpd.state_names[variable].index(str(state))
    except ValueError:
        raise InferenceError(
            f"unknown state {state!r} for variable {variable!r}") from None


def compile_network(network: BayesianNetwork) -> dict[str, CompiledNode]:
    """Return flattened per-node sampling tables for ``network``."""
    compiled = {}
    for node in network.nodes:
        cpd = network.get_cpd(node)
        compiled[node] = CompiledNode(node, cpd.cardinality, cpd.table,
                                      list(cpd.parents),
                                      list(cpd.parent_cardinalities))
    return compiled


class CompiledSampler:
    """Base for samplers that keep compiled CPT tables in sync with the network.

    The tables are recompiled whenever a CPD object on the network is
    replaced (the public ``add_cpd`` mutation path), so samplers never draw
    from stale parameters; subclasses call :meth:`_refresh_tables` at every
    sampling entry point and may override :meth:`_recompile` to rebuild
    derived state of their own.
    """

    network: BayesianNetwork

    def _init_compiled(self, network: BayesianNetwork) -> None:
        self.network = network
        self._compiled = compile_network(network)
        self._cpd_ids = cpd_signature(network)

    def _refresh_tables(self) -> None:
        signature = cpd_signature(self.network)
        if signature != self._cpd_ids:
            self._recompile()
            self._cpd_ids = signature

    def _recompile(self) -> None:
        self._compiled = compile_network(self.network)


class ForwardSampler(CompiledSampler):
    """Ancestral (forward) sampler for a discrete Bayesian network.

    Parameters
    ----------
    network:
        A fully specified network.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        self._init_compiled(network)
        self._rng = ensure_rng(seed)
        self._order = network.graph.topological_sort()

    # ------------------------------------------------------------ batched core
    def sample_states(self, count: int) -> dict[str, np.ndarray]:
        """Draw ``count`` assignments as ``{variable: int state array}``."""
        if count < 0:
            raise InferenceError("sample count must be non-negative")
        self._refresh_tables()
        states: dict[str, np.ndarray] = {}
        for node in self._order:
            compiled = self._compiled[node]
            columns = compiled.columns(states, count)
            states[node] = compiled.draw(columns, self._rng)
        return states

    def _to_records(self, states: Mapping[str, np.ndarray], count: int,
                    as_names: bool) -> list[dict[str, str | int]]:
        if as_names:
            named = {node: [self.network.state_names(node)[i]
                            for i in states[node]]
                     for node in self._order}
            return [{node: named[node][row] for node in self._order}
                    for row in range(count)]
        return [{node: int(states[node][row]) for node in self._order}
                for row in range(count)]

    # -------------------------------------------------------------- public API
    def sample_one(self, *, as_names: bool = True) -> dict[str, str | int]:
        """Draw a single full assignment of all network variables."""
        return self.sample(1, as_names=as_names)[0]

    def sample(self, count: int, *, as_names: bool = True
               ) -> list[dict[str, str | int]]:
        """Draw ``count`` independent full assignments."""
        states = self.sample_states(count)
        return self._to_records(states, count, as_names)

    def rejection_sample(self, count: int, evidence: Mapping[str, str | int],
                         *, as_names: bool = True, max_attempts: int = 1_000_000
                         ) -> list[dict[str, str | int]]:
        """Draw ``count`` samples consistent with ``evidence`` by rejection.

        Raises
        ------
        InferenceError
            If ``max_attempts`` forward samples do not yield enough accepted
            samples (evidence too unlikely for rejection sampling).
        """
        evidence_indices = {
            variable: state_to_index(self.network, variable, state)
            for variable, state in evidence.items()}
        accepted: list[dict[str, str | int]] = []
        attempts = 0
        while len(accepted) < count and attempts < max_attempts:
            batch = min(max(4 * count, 64), max_attempts - attempts)
            attempts += batch
            states = self.sample_states(batch)
            match = np.ones(batch, dtype=bool)
            for variable, index in evidence_indices.items():
                match &= states[variable] == index
            rows = np.flatnonzero(match)[:count - len(accepted)]
            if len(rows):
                kept = {node: states[node][rows] for node in self._order}
                accepted.extend(self._to_records(kept, len(rows), as_names))
        if len(accepted) < count:
            raise InferenceError(
                f"rejection sampling accepted only {len(accepted)} of {count} "
                f"requested samples after {max_attempts} attempts")
        return accepted

def sample_dataset(network: BayesianNetwork, count: int,
                   seed: int | np.random.Generator | None = None,
                   missing_fraction: float = 0.0,
                   missing_value: object = None) -> list[dict[str, object]]:
    """Sample ``count`` cases, optionally hiding a fraction of the entries.

    A hidden entry is replaced by ``missing_value`` (``None`` by default),
    which is the convention the EM learner and the Dlog2BBN case generator
    use for "block state unknown for this device".
    """
    if not 0.0 <= missing_fraction <= 1.0:
        raise InferenceError("missing_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    sampler = ForwardSampler(network, seed=rng)
    samples = sampler.sample(count)
    if missing_fraction <= 0.0:
        return [dict(sample) for sample in samples]
    order = sampler._order
    hidden = rng.random((count, len(order))) < missing_fraction
    cases: list[dict[str, object]] = []
    for row, sample in enumerate(samples):
        cases.append({variable: (missing_value if hidden[row, column] else
                                 sample[variable])
                      for column, variable in enumerate(order)})
    return cases
