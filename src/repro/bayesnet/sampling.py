"""Forward and rejection sampling from a Bayesian network.

Forward sampling is used throughout the test suite (to generate ground-truth
data with known parameters) and by the benchmark harness to create synthetic
failed-device populations when the behavioural circuit simulator is not
involved.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng


class ForwardSampler:
    """Ancestral (forward) sampler for a discrete Bayesian network.

    Parameters
    ----------
    network:
        A fully specified network.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        self.network = network
        self._rng = ensure_rng(seed)
        self._order = network.graph.topological_sort()

    def sample_one(self, *, as_names: bool = True) -> dict[str, str | int]:
        """Draw a single full assignment of all network variables."""
        assignment: dict[str, int] = {}
        for node in self._order:
            cpd = self.network.get_cpd(node)
            column = cpd.parent_configuration_index(
                {p: assignment[p] for p in cpd.parents})
            distribution = cpd.table[:, column]
            assignment[node] = int(self._rng.choice(len(distribution), p=distribution))
        if not as_names:
            return dict(assignment)
        return {node: self.network.state_names(node)[index]
                for node, index in assignment.items()}

    def sample(self, count: int, *, as_names: bool = True
               ) -> list[dict[str, str | int]]:
        """Draw ``count`` independent full assignments."""
        if count < 0:
            raise InferenceError("sample count must be non-negative")
        return [self.sample_one(as_names=as_names) for _ in range(count)]

    def rejection_sample(self, count: int, evidence: Mapping[str, str | int],
                         *, as_names: bool = True, max_attempts: int = 1_000_000
                         ) -> list[dict[str, str | int]]:
        """Draw ``count`` samples consistent with ``evidence`` by rejection.

        Raises
        ------
        InferenceError
            If ``max_attempts`` forward samples do not yield enough accepted
            samples (evidence too unlikely for rejection sampling).
        """
        evidence = dict(evidence)
        accepted: list[dict[str, str | int]] = []
        attempts = 0
        while len(accepted) < count and attempts < max_attempts:
            attempts += 1
            sample = self.sample_one(as_names=True)
            if all(str(sample[variable]) == str(self._as_name(variable, state))
                   for variable, state in evidence.items()):
                accepted.append(sample if as_names else self._to_indices(sample))
        if len(accepted) < count:
            raise InferenceError(
                f"rejection sampling accepted only {len(accepted)} of {count} "
                f"requested samples after {max_attempts} attempts")
        return accepted

    def _as_name(self, variable: str, state: str | int) -> str:
        if isinstance(state, (int, np.integer)):
            return self.network.state_names(variable)[int(state)]
        return str(state)

    def _to_indices(self, sample: Mapping[str, str]) -> dict[str, int]:
        return {variable: self.network.state_names(variable).index(str(state))
                for variable, state in sample.items()}


def sample_dataset(network: BayesianNetwork, count: int,
                   seed: int | np.random.Generator | None = None,
                   missing_fraction: float = 0.0,
                   missing_value: object = None) -> list[dict[str, object]]:
    """Sample ``count`` cases, optionally hiding a fraction of the entries.

    A hidden entry is replaced by ``missing_value`` (``None`` by default),
    which is the convention the EM learner and the Dlog2BBN case generator
    use for "block state unknown for this device".
    """
    if not 0.0 <= missing_fraction <= 1.0:
        raise InferenceError("missing_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    sampler = ForwardSampler(network, seed=rng)
    cases: list[dict[str, object]] = []
    for sample in sampler.sample(count):
        case: dict[str, object] = {}
        for variable, state in sample.items():
            if missing_fraction > 0.0 and rng.random() < missing_fraction:
                case[variable] = missing_value
            else:
                case[variable] = state
        cases.append(case)
    return cases
