"""The Bayesian belief network itself.

A :class:`BayesianNetwork` couples a directed acyclic graph (the structure
model of Section III-A.1) with one :class:`~repro.bayesnet.cpd.TabularCPD`
per node (the parameter model of Section III-A.2).  It validates that the
two are mutually consistent and offers the joint-probability and
factor-export primitives on which inference and learning are built.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.cpd import TabularCPD, uniform_cpd
from repro.bayesnet.factor import DiscreteFactor, factor_product
from repro.bayesnet.graph import DirectedGraph
from repro.exceptions import NetworkError


class BayesianNetwork:
    """A discrete Bayesian belief network.

    Parameters
    ----------
    edges:
        Iterable of ``(parent, child)`` pairs describing the DAG.
    nodes:
        Optional additional (possibly isolated) nodes.
    """

    def __init__(self, edges: Iterable[tuple[str, str]] | None = None,
                 nodes: Iterable[str] | None = None) -> None:
        self.graph = DirectedGraph(edges=edges, nodes=nodes)
        self._cpds: dict[str, TabularCPD] = {}
        #: Monotonic counter bumped on every CPD attachment/replacement.
        #: Caches compare it to detect parameter updates in O(1) instead of
        #: walking the CPD objects (in-place table mutation stays
        #: undetectable, as before).
        self.cpd_version: int = 0

    # ----------------------------------------------------------------- graph
    @property
    def nodes(self) -> list[str]:
        """All node names."""
        return self.graph.nodes

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All ``(parent, child)`` edges."""
        return self.graph.edges

    def add_node(self, node: str) -> None:
        """Add an isolated node."""
        self.graph.add_node(node)

    def add_edge(self, parent: str, child: str) -> None:
        """Add a dependency arc ``parent -> child``."""
        self.graph.add_edge(parent, child)

    def parents(self, node: str) -> list[str]:
        """Return the parents of ``node``."""
        return self.graph.parents(node)

    def children(self, node: str) -> list[str]:
        """Return the children of ``node``."""
        return self.graph.children(node)

    # ------------------------------------------------------------------ CPDs
    def add_cpd(self, cpd: TabularCPD) -> None:
        """Attach ``cpd`` to its variable.

        The CPD's parent list must match the node's parents in the graph
        (order included — the column enumeration depends on it).
        """
        if cpd.variable not in self.graph:
            raise NetworkError(f"node {cpd.variable!r} is not in the network")
        graph_parents = self.graph.parents(cpd.variable)
        if sorted(cpd.parents) != sorted(graph_parents):
            raise NetworkError(
                f"CPD for {cpd.variable!r} lists parents {cpd.parents} but the "
                f"graph has parents {graph_parents}")
        self._cpds[cpd.variable] = cpd
        self.cpd_version += 1

    def add_cpds(self, *cpds: TabularCPD) -> None:
        """Attach several CPDs at once."""
        for cpd in cpds:
            self.add_cpd(cpd)

    def get_cpd(self, node: str) -> TabularCPD:
        """Return the CPD attached to ``node``."""
        if node not in self._cpds:
            raise NetworkError(f"no CPD attached to node {node!r}")
        return self._cpds[node]

    @property
    def cpds(self) -> list[TabularCPD]:
        """All attached CPDs."""
        return list(self._cpds.values())

    def cardinality(self, node: str) -> int:
        """Return the number of states of ``node`` (requires its CPD)."""
        return self.get_cpd(node).cardinality

    def state_names(self, node: str) -> list[str]:
        """Return the state names of ``node`` (requires its CPD)."""
        return list(self.get_cpd(node).state_names[node])

    def check_model(self) -> bool:
        """Validate that every node has a consistent CPD.

        Returns ``True`` on success, raises :class:`NetworkError` otherwise.
        Consistency means: a CPD exists for every node, its parent list
        matches the graph, and the cardinalities/state names used for a
        variable agree across every CPD that mentions it.

        A passing validation is memoised against :attr:`cpd_version`, so the
        many layers that defensively re-check (learning, builders, every
        inference-engine constructor) pay for one walk per parameter change,
        not one per call.  In-place table mutation stays undetectable, as
        with every ``cpd_version``-keyed cache.
        """
        if self.__dict__.get("_checked_version") == self.cpd_version:
            return True
        seen_cards: dict[str, int] = {}
        seen_states: dict[str, list[str]] = {}
        for node in self.graph.nodes:
            if node not in self._cpds:
                raise NetworkError(f"node {node!r} has no CPD")
            cpd = self._cpds[node]
            graph_parents = self.graph.parents(node)
            if sorted(cpd.parents) != sorted(graph_parents):
                raise NetworkError(
                    f"CPD parents {cpd.parents} for node {node!r} do not match "
                    f"graph parents {graph_parents}")
            mentioned = [(cpd.variable, cpd.cardinality)] + list(
                zip(cpd.parents, cpd.parent_cardinalities))
            for name, card in mentioned:
                if name in seen_cards and seen_cards[name] != card:
                    raise NetworkError(
                        f"variable {name!r} has inconsistent cardinalities: "
                        f"{seen_cards[name]} vs {card}")
                seen_cards[name] = card
                states = cpd.state_names[name]
                if name in seen_states and seen_states[name] != states:
                    raise NetworkError(
                        f"variable {name!r} has inconsistent state names")
                seen_states[name] = states
        self.__dict__["_checked_version"] = self.cpd_version
        return True

    # ------------------------------------------------------------- factorised
    def to_factors(self) -> list[DiscreteFactor]:
        """Return one factor per CPD (the factorised joint distribution)."""
        self.check_model()
        return [cpd.to_factor() for cpd in self._cpds.values()]

    def joint_probability(self, assignment: Mapping[str, str | int]) -> float:
        """Return the joint probability of a full assignment of all nodes."""
        self.check_model()
        probability = 1.0
        for node in self.graph.nodes:
            cpd = self._cpds[node]
            parent_assignment = {p: assignment[p] for p in cpd.parents}
            probability *= cpd.probability(assignment[node], parent_assignment)
        return probability

    def joint_distribution(self) -> DiscreteFactor:
        """Return the full joint distribution as one (possibly large) factor.

        Only sensible for small networks (used in tests to cross-check the
        inference engines against brute force).
        """
        self.check_model()
        return factor_product(self.to_factors()).normalize()

    # ---------------------------------------------------------------- utility
    def copy(self) -> "BayesianNetwork":
        """Return an independent copy of the network (structure and CPDs).

        Copies the attachments directly: the source's CPDs already passed
        :meth:`add_cpd`'s parent check against the same structure, so
        replaying it per CPD would only redo work.
        """
        clone = BayesianNetwork()
        clone.graph = self.graph.copy()
        clone._cpds = {name: cpd.copy() for name, cpd in self._cpds.items()}
        clone.cpd_version = len(clone._cpds)
        return clone

    def with_uniform_cpds(self, cardinalities: Mapping[str, int],
                          state_names: Mapping[str, Sequence[str]] | None = None
                          ) -> "BayesianNetwork":
        """Return a copy of the structure with uniform CPDs attached.

        Convenience used as the "no prior knowledge" starting point for
        parameter learning.
        """
        state_names = dict(state_names or {})
        clone = BayesianNetwork()
        clone.graph = self.graph.copy()
        for node in clone.nodes:
            parents = clone.parents(node)
            names = {node: state_names.get(node,
                                           [str(i) for i in range(cardinalities[node])])}
            for parent in parents:
                names[parent] = state_names.get(
                    parent, [str(i) for i in range(cardinalities[parent])])
            clone.add_cpd(uniform_cpd(node, cardinalities[node], parents,
                                      [cardinalities[p] for p in parents], names))
        return clone

    def markov_blanket(self, node: str) -> set[str]:
        """Return the Markov blanket of ``node`` (parents, children, co-parents)."""
        blanket: set[str] = set(self.graph.parents(node))
        for child in self.graph.children(node):
            blanket.add(child)
            blanket.update(self.graph.parents(child))
        blanket.discard(node)
        return blanket

    def log_likelihood(self, cases: Sequence[Mapping[str, str | int]]) -> float:
        """Return the log-likelihood of fully observed ``cases`` under the model."""
        self.check_model()
        total = 0.0
        for case in cases:
            probability = self.joint_probability(case)
            if probability <= 0:
                total += -np.inf
            else:
                total += float(np.log(probability))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BayesianNetwork(nodes={len(self.graph.nodes)}, "
                f"edges={len(self.graph.edges)}, cpds={len(self._cpds)})")
