"""Discrete Bayesian-belief-network substrate.

This subpackage replaces the commercial Netica engine used by the paper with
an open implementation of everything block-level diagnosis needs:

* :class:`~repro.bayesnet.graph.DirectedGraph` — DAG with cycle detection,
  topological ordering, ancestor/descendant queries and d-separation.
* :class:`~repro.bayesnet.factor.DiscreteFactor` — multidimensional discrete
  factors with product, marginalisation, reduction and normalisation.
* :class:`~repro.bayesnet.cpd.TabularCPD` — conditional probability tables.
* :class:`~repro.bayesnet.network.BayesianNetwork` — the network itself.
* Exact inference — variable elimination and junction-tree belief
  propagation (``repro.bayesnet.inference``).
* Approximate inference — likelihood weighting and Gibbs sampling.
* Parameter learning — maximum likelihood, Bayesian (Dirichlet) estimation
  and Expectation–Maximisation for cases with missing values
  (``repro.bayesnet.learning``).
* Forward/rejection sampling (``repro.bayesnet.sampling``).
"""

from repro.bayesnet.graph import DirectedGraph
from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.inference import (
    VariableElimination,
    JunctionTree,
    LikelihoodWeighting,
    GibbsSampling,
)
from repro.bayesnet.learning import (
    CaseMatrix,
    MaximumLikelihoodEstimator,
    BayesianEstimator,
    ExpectationMaximization,
)
from repro.bayesnet.sampling import ForwardSampler

__all__ = [
    "DirectedGraph",
    "DiscreteFactor",
    "TabularCPD",
    "BayesianNetwork",
    "VariableElimination",
    "JunctionTree",
    "LikelihoodWeighting",
    "GibbsSampling",
    "CaseMatrix",
    "MaximumLikelihoodEstimator",
    "BayesianEstimator",
    "ExpectationMaximization",
    "ForwardSampler",
]
