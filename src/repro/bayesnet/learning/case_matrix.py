"""Integer-encoded case matrices for batched CPT learning.

A :class:`CaseMatrix` is the array-native form of a list of learning cases:
one ``int16`` code per ``(case, variable)`` cell, with ``-1`` for "state
unknown" (the ``None`` of the dict-based cases).  Codes are positions into a
per-variable state-name list — the same codec
:meth:`StateTable.classify_indices <repro.core.states.StateTable.classify_indices>`
produces — so the case generator can discretise measurement planes straight
into a matrix and the estimators can count CPTs with ``np.bincount`` instead
of per-case Python loops.

The matrix optionally carries the provenance columns of
:class:`~repro.core.case_generation.LabeledCase` (device id, condition label,
failed flag) so it can round-trip to labeled cases for the equivalence
suites.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import LearningError

_MISSING = -1


class CaseMatrix:
    """A ``(cases, variables)`` matrix of integer state codes.

    Parameters
    ----------
    variables:
        Column order of the matrix.
    codes:
        ``(cases, variables)`` integer array; ``-1`` marks an unknown state,
        any other value is a position into the variable's state-name list.
    state_names:
        Full state-name list per variable (the codec).  Must cover every
        variable of the matrix.
    device_ids / condition_labels / failed:
        Optional per-case provenance, all of length ``cases`` when given.
    """

    def __init__(self, variables: Sequence[str], codes: np.ndarray,
                 state_names: Mapping[str, Sequence[str]],
                 device_ids: Sequence[str] | None = None,
                 condition_labels: Sequence[str] | None = None,
                 failed: np.ndarray | Sequence[bool] | None = None) -> None:
        self.variables = [str(v) for v in variables]
        self.codes = np.asarray(codes, dtype=np.int16)
        if self.codes.ndim != 2 or self.codes.shape[1] != len(self.variables):
            raise LearningError(
                f"case matrix codes must be (cases, {len(self.variables)}), "
                f"got shape {self.codes.shape}")
        self.state_names: dict[str, list[str]] = {}
        for column, variable in enumerate(self.variables):
            if variable not in state_names:
                raise LearningError(
                    f"case matrix is missing state names for {variable!r}")
            names = [str(s) for s in state_names[variable]]
            self.state_names[variable] = names
            if len(self.codes) and self.codes[:, column].max() >= len(names):
                raise LearningError(
                    f"case matrix code out of range for variable {variable!r} "
                    f"({len(names)} states)")
        self._column = {v: i for i, v in enumerate(self.variables)}
        # Provenance columns: numpy string arrays pass through unconverted —
        # at ATE scale (10^5+ rows) a list of per-row Python strings costs
        # more resident memory than every measurement plane combined.
        self.device_ids = (device_ids if device_ids is None
                           or isinstance(device_ids, np.ndarray)
                           else list(device_ids))
        self.condition_labels = (condition_labels if condition_labels is None
                                 or isinstance(condition_labels, np.ndarray)
                                 else list(condition_labels))
        self.failed = (np.asarray(failed, dtype=bool)
                       if failed is not None else None)
        for name, extra in (("device_ids", self.device_ids),
                            ("condition_labels", self.condition_labels),
                            ("failed", self.failed)):
            if extra is not None and len(extra) != len(self.codes):
                raise LearningError(
                    f"case matrix has {len(self.codes)} cases but "
                    f"{len(extra)} {name}")

    # ------------------------------------------------------------------ shape
    def __len__(self) -> int:
        return self.codes.shape[0]

    @property
    def case_count(self) -> int:
        """Number of case rows."""
        return self.codes.shape[0]

    def column(self, variable: str) -> np.ndarray:
        """Return the code column of ``variable`` (-1 where unknown)."""
        try:
            return self.codes[:, self._column[variable]]
        except KeyError:
            raise LearningError(
                f"variable {variable!r} is not in the case matrix") from None

    def __contains__(self, variable: str) -> bool:
        return variable in self._column

    def select(self, rows: np.ndarray | Sequence[int]) -> "CaseMatrix":
        """Return a new matrix holding only the selected case rows."""
        rows = np.asarray(rows)
        if rows.dtype == bool:
            rows = np.flatnonzero(rows)
        def pick(extra):
            if extra is None:
                return None
            if isinstance(extra, np.ndarray):
                return extra[rows]
            return [extra[i] for i in rows]

        return CaseMatrix(
            self.variables, self.codes[rows], self.state_names,
            pick(self.device_ids), pick(self.condition_labels),
            None if self.failed is None else self.failed[rows])

    # ------------------------------------------------------------- conversion
    @classmethod
    def from_cases(cls, cases: Sequence[Mapping[str, object]],
                   state_names: Mapping[str, Sequence[str]],
                   variables: Sequence[str] | None = None) -> "CaseMatrix":
        """Encode dict-based cases (label, index or ``None`` values).

        ``variables`` defaults to the union of case keys in first-seen
        order.  A variable absent from a case encodes as missing.
        """
        if variables is None:
            seen: dict[str, None] = {}
            for case in cases:
                for variable in case:
                    seen.setdefault(variable)
            variables = list(seen)
        variables = list(variables)
        lookup = {}
        for variable in variables:
            if variable not in state_names:
                raise LearningError(
                    f"no state names supplied for variable {variable!r}")
            lookup[variable] = {str(name): code for code, name
                                in enumerate(state_names[variable])}
        codes = np.full((len(cases), len(variables)), _MISSING, dtype=np.int16)
        for row, case in enumerate(cases):
            for column, variable in enumerate(variables):
                value = case.get(variable)
                if value is None:
                    continue
                if isinstance(value, (int, np.integer)) \
                        and not isinstance(value, bool):
                    code = int(value)
                    if not 0 <= code < len(lookup[variable]):
                        raise LearningError(
                            f"state index {code} out of range for variable "
                            f"{variable!r}")
                else:
                    code = lookup[variable].get(str(value), _MISSING)
                    if code < 0:
                        raise LearningError(
                            f"unknown state {value!r} for variable "
                            f"{variable!r}; known states: "
                            f"{list(state_names[variable])}")
                codes[row, column] = code
        return cls(variables, codes, state_names)

    @classmethod
    def from_labeled_cases(cls, cases: Sequence,
                           state_names: Mapping[str, Sequence[str]],
                           variables: Sequence[str] | None = None
                           ) -> "CaseMatrix":
        """Encode :class:`LabeledCase` rows, keeping their provenance."""
        matrix = cls.from_cases([case.assignments for case in cases],
                                state_names, variables)
        matrix.device_ids = [case.device_id for case in cases]
        matrix.condition_labels = [case.condition_label for case in cases]
        matrix.failed = np.array([case.failed for case in cases], dtype=bool)
        return matrix

    def to_cases(self) -> list[dict[str, object]]:
        """Decode back into plain learning cases (labels, ``None`` missing)."""
        names = [self.state_names[v] for v in self.variables]
        cases: list[dict[str, object]] = []
        for row in self.codes:
            cases.append({variable: (None if code < 0 else names[column][code])
                          for column, (variable, code)
                          in enumerate(zip(self.variables, row))})
        return cases

    def to_labeled_cases(self) -> list:
        """Decode back into :class:`LabeledCase` rows (requires provenance)."""
        from repro.core.case_generation import LabeledCase

        if (self.device_ids is None or self.condition_labels is None
                or self.failed is None):
            raise LearningError(
                "case matrix carries no provenance; use to_cases()")
        return [LabeledCase(device_id=str(self.device_ids[row]),
                            condition_label=str(self.condition_labels[row]),
                            assignments=assignments,
                            failed=bool(self.failed[row]))
                for row, assignments in enumerate(self.to_cases())]

    # ---------------------------------------------------------------- counting
    def encode_for(self, variable: str,
                   state_names: Sequence[str]) -> np.ndarray:
        """Return the codes of ``variable`` under a target state-name list.

        This is the estimator-facing accessor: when the matrix codec for the
        variable matches the estimator's schema the stored column is
        returned as-is; otherwise the codes are remapped through the labels
        (unknown labels raise, matching the dict-path semantics).  A
        variable the matrix does not carry is all-missing.
        """
        if variable not in self._column:
            return np.full(len(self), _MISSING, dtype=np.int16)
        column = self.column(variable)
        own = self.state_names[variable]
        target = [str(name) for name in state_names]
        if own == target:
            return column
        mapping = np.empty(len(own) + 1, dtype=np.int16)
        mapping[_MISSING] = _MISSING
        positions = {name: code for code, name in enumerate(target)}
        for code, name in enumerate(own):
            mapped = positions.get(name)
            if mapped is None:
                if bool((column == code).any()):
                    raise LearningError(
                        f"unknown state {name!r} for variable {variable!r}; "
                        f"known states: {target}")
                mapped = _MISSING
            mapping[code] = mapped
        return mapping[column]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CaseMatrix(cases={len(self)}, "
                f"variables={len(self.variables)})")
