"""Bayesian (Dirichlet) parameter estimation.

The paper's flow starts from a designer-provided "rough estimate" of every
conditional probability table and fine-tunes it with cases generated from 70
failed products.  That is exactly maximum-a-posteriori estimation with a
Dirichlet prior centred on the designer's tables:

    P(child = i | parents = j) = (alpha_ij + N_ij) / (alpha_j + N_j)

where ``alpha_ij`` is the prior pseudo-count and ``N_ij`` the observed count.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import math

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.bayesnet.learning.mle import MaximumLikelihoodEstimator, resolve_schema
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import LearningError

Case = Mapping[str, object]


class BayesianEstimator:
    """Dirichlet-smoothed CPT estimation.

    Parameters
    ----------
    structure:
        Network defining the parent sets (CPDs optional).
    prior_network:
        Optional network whose CPDs act as the prior mean (the designer
        estimate).  When omitted a symmetric (uniform) prior is used.
    equivalent_sample_size:
        Total pseudo-count weight given to the prior, per node.  Larger values
        make the learned tables stick closer to the prior.
    cardinalities / state_names:
        Schema when the structure carries no CPDs.
    """

    def __init__(self, structure: BayesianNetwork,
                 prior_network: BayesianNetwork | None = None,
                 equivalent_sample_size: float = 10.0,
                 cardinalities: Mapping[str, int] | None = None,
                 state_names: Mapping[str, Sequence[str]] | None = None) -> None:
        if equivalent_sample_size <= 0:
            raise LearningError("equivalent_sample_size must be positive")
        self.structure = structure
        self.prior_network = prior_network
        self.equivalent_sample_size = float(equivalent_sample_size)
        self._mle = MaximumLikelihoodEstimator(structure, cardinalities, state_names)
        self._cardinalities, self._state_names = resolve_schema(
            structure, cardinalities, state_names)

    def _prior_pseudo_counts(self, node: str) -> np.ndarray:
        """Return the Dirichlet pseudo-count matrix for ``node``."""
        parents = self.structure.parents(node)
        child_card = self._cardinalities[node]
        parent_cards = [self._cardinalities[p] for p in parents]
        columns = math.prod(parent_cards) if parents else 1
        per_column = self.equivalent_sample_size / columns
        if self.prior_network is None:
            return np.full((child_card, columns), per_column / child_card)
        prior_cpd = self.prior_network.get_cpd(node)
        if prior_cpd.table.shape != (child_card, columns):
            raise LearningError(
                f"prior CPD for {node!r} has shape {prior_cpd.table.shape}, "
                f"expected {(child_card, columns)}")
        return prior_cpd.table * per_column

    def estimate_cpd(self, cases: Sequence[Case] | CaseMatrix,
                     node: str) -> TabularCPD:
        """Return the MAP CPD of ``node`` under the Dirichlet prior."""
        parents = self.structure.parents(node)
        counts = self._mle.state_counts(cases, node)
        pseudo = self._prior_pseudo_counts(node)
        posterior = counts + pseudo
        table = posterior / posterior.sum(axis=0, keepdims=True)
        names = {node: self._state_names[node]}
        names.update({p: self._state_names[p] for p in parents})
        # The Dirichlet posterior columns are normalised by construction.
        return TabularCPD._from_trusted(
            node, self._cardinalities[node], table, list(parents),
            [self._cardinalities[p] for p in parents], names)

    def fit(self, cases: Sequence[Case] | CaseMatrix) -> BayesianNetwork:
        """Return a network with MAP CPDs learned from ``cases``."""
        if not isinstance(cases, (CaseMatrix, list)):
            cases = list(cases)
        learned = BayesianNetwork(nodes=self.structure.nodes)
        for parent, child in self.structure.edges:
            learned.add_edge(parent, child)
        for node in learned.nodes:
            learned.add_cpd(self.estimate_cpd(cases, node))
        learned.check_model()
        return learned
