"""Maximum-likelihood parameter estimation from fully observed cases."""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import LearningError

Case = Mapping[str, object]


class MaximumLikelihoodEstimator:
    """Estimate CPTs by relative frequency counting.

    Parameters
    ----------
    structure:
        A network whose graph defines the parent sets.  Existing CPDs are
        used only to obtain cardinalities and state names; they are replaced
        by the learned CPDs in :meth:`fit`.
    cardinalities / state_names:
        Required when ``structure`` has no CPDs attached.
    """

    def __init__(self, structure: BayesianNetwork,
                 cardinalities: Mapping[str, int] | None = None,
                 state_names: Mapping[str, Sequence[str]] | None = None) -> None:
        self.structure = structure
        self._cardinalities, self._state_names = resolve_schema(
            structure, cardinalities, state_names)

    # ----------------------------------------------------------------- fitting
    def state_counts(self, cases: Sequence[Case] | CaseMatrix,
                     node: str) -> np.ndarray:
        """Return the (child_card, parent_configs) count matrix for ``node``.

        ``cases`` may be dict-based rows or a :class:`CaseMatrix`; the matrix
        path counts the whole population in one ``np.bincount`` pass over
        ravelled (child, parent-configuration) indices and is pinned to the
        row path by the columnar equivalence suite.
        """
        parents = self.structure.parents(node)
        child_card = self._cardinalities[node]
        parent_cards = [self._cardinalities[p] for p in parents]
        columns = math.prod(parent_cards) if parents else 1
        if isinstance(cases, CaseMatrix):
            # Counts are a pure function of (matrix, node, schema), and the
            # ablation/serving pattern fits several priors against the same
            # population — memoise on the matrix.  Callers must not mutate
            # the returned array (both estimators derive fresh tables).
            key = (node, tuple(parents), tuple(self._state_names[node]),
                   tuple(tuple(self._state_names[p]) for p in parents))
            cache = cases.__dict__.setdefault("_state_counts_cache", {})
            counts = cache.get(key)
            if counts is not None:
                return counts
            child = cases.encode_for(node, self._state_names[node])
            valid = child >= 0
            column = np.zeros(len(cases), dtype=np.int64)
            for parent, card in zip(parents, parent_cards):
                codes = cases.encode_for(parent, self._state_names[parent])
                valid &= codes >= 0
                column = column * card + np.where(codes >= 0, codes, 0)
            flat = child[valid].astype(np.int64) * columns + column[valid]
            counts = np.bincount(flat, minlength=child_card * columns) \
                .reshape(child_card, columns).astype(float)
            cache[key] = counts
            return counts
        counts = np.zeros((child_card, columns), dtype=float)
        for case in cases:
            row = state_index(case.get(node), node, self._state_names)
            if row is None:
                continue
            column = 0
            skip = False
            for parent, card in zip(parents, parent_cards):
                parent_index = state_index(case.get(parent), parent, self._state_names)
                if parent_index is None:
                    skip = True
                    break
                column = column * card + parent_index
            if skip:
                continue
            counts[row, column] += 1.0
        return counts

    def estimate_cpd(self, cases: Sequence[Case] | CaseMatrix,
                     node: str) -> TabularCPD:
        """Return the MLE CPD of ``node`` (uniform where a configuration was never seen)."""
        parents = self.structure.parents(node)
        counts = self.state_counts(cases, node)
        column_sums = counts.sum(axis=0)
        table = np.where(column_sums > 0,
                         counts / np.where(column_sums > 0, column_sums, 1.0),
                         1.0 / counts.shape[0])
        names = {node: self._state_names[node]}
        names.update({p: self._state_names[p] for p in parents})
        # Columns are normalised by construction; skip re-validation.
        return TabularCPD._from_trusted(
            node, self._cardinalities[node], table, list(parents),
            [self._cardinalities[p] for p in parents], names)

    def fit(self, cases: Sequence[Case] | CaseMatrix) -> BayesianNetwork:
        """Return a copy of the structure with MLE CPDs learned from ``cases``."""
        if len(cases) == 0:
            raise LearningError("cannot learn parameters from an empty case list")
        learned = BayesianNetwork(nodes=self.structure.nodes)
        for parent, child in self.structure.edges:
            learned.add_edge(parent, child)
        for node in learned.nodes:
            learned.add_cpd(self.estimate_cpd(cases, node))
        learned.check_model()
        return learned


# --------------------------------------------------------------------- helpers
def resolve_schema(structure: BayesianNetwork,
                   cardinalities: Mapping[str, int] | None,
                   state_names: Mapping[str, Sequence[str]] | None
                   ) -> tuple[dict[str, int], dict[str, list[str]]]:
    """Resolve per-variable cardinalities and state names.

    Priority: explicit arguments, then CPDs already attached to the structure.
    """
    resolved_cards: dict[str, int] = {}
    resolved_names: dict[str, list[str]] = {}
    for node in structure.nodes:
        if cardinalities and node in cardinalities:
            resolved_cards[node] = int(cardinalities[node])
            names = list(state_names[node]) if state_names and node in state_names \
                else [str(i) for i in range(resolved_cards[node])]
            resolved_names[node] = names
            continue
        try:
            cpd = structure.get_cpd(node)
        except Exception as exc:
            raise LearningError(
                f"no cardinality available for node {node!r}: supply "
                "cardinalities/state_names or attach prior CPDs") from exc
        resolved_cards[node] = cpd.cardinality
        resolved_names[node] = list(cpd.state_names[node])
    return resolved_cards, resolved_names


def state_index(value: object, variable: str,
                state_names: Mapping[str, Sequence[str]]) -> int | None:
    """Translate a case value into a state index.

    ``None`` (missing observation) maps to ``None``; integers are taken as
    indices; anything else is looked up among the state names.
    """
    if value is None:
        return None
    names = list(state_names[variable])
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        index = int(value)
        if not 0 <= index < len(names):
            raise LearningError(
                f"state index {index} out of range for variable {variable!r}")
        return index
    text = str(value)
    if text not in names:
        raise LearningError(
            f"unknown state {value!r} for variable {variable!r}; "
            f"known states: {names}")
    return names.index(text)
