"""Structure scores (BIC, BDeu) and a greedy hill-climbing structure search.

The paper obtains its structure from design knowledge (the block dependency
diagram), not from data.  Structure learning is included as an *extension*:
the ablation benchmarks compare the expert structure against a data-driven
one, which quantifies how much the designer's knowledge is worth.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
from scipy.special import gammaln

from repro.bayesnet.learning.mle import MaximumLikelihoodEstimator, state_index
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import LearningError

Case = Mapping[str, object]


def _family_counts(cases: Sequence[Case], node: str, parents: Sequence[str],
                   cardinalities: Mapping[str, int],
                   state_names: Mapping[str, Sequence[str]]) -> np.ndarray:
    child_card = cardinalities[node]
    parent_cards = [cardinalities[p] for p in parents]
    columns = int(np.prod(parent_cards)) if parents else 1
    counts = np.zeros((child_card, columns), dtype=float)
    for case in cases:
        row = state_index(case.get(node), node, state_names)
        if row is None:
            continue
        column = 0
        skip = False
        for parent, card in zip(parents, parent_cards):
            parent_index = state_index(case.get(parent), parent, state_names)
            if parent_index is None:
                skip = True
                break
            column = column * card + parent_index
        if not skip:
            counts[row, column] += 1.0
    return counts


def bic_score(cases: Sequence[Case], node: str, parents: Sequence[str],
              cardinalities: Mapping[str, int],
              state_names: Mapping[str, Sequence[str]]) -> float:
    """Return the BIC family score of ``node`` with parent set ``parents``."""
    counts = _family_counts(cases, node, parents, cardinalities, state_names)
    sample_size = counts.sum()
    if sample_size == 0:
        return 0.0
    column_sums = counts.sum(axis=0)
    log_likelihood = 0.0
    for row in range(counts.shape[0]):
        for column in range(counts.shape[1]):
            count = counts[row, column]
            if count > 0:
                log_likelihood += count * np.log(count / column_sums[column])
    free_parameters = (counts.shape[0] - 1) * counts.shape[1]
    return float(log_likelihood - 0.5 * np.log(sample_size) * free_parameters)


def bdeu_score(cases: Sequence[Case], node: str, parents: Sequence[str],
               cardinalities: Mapping[str, int],
               state_names: Mapping[str, Sequence[str]],
               equivalent_sample_size: float = 10.0) -> float:
    """Return the BDeu family score of ``node`` with parent set ``parents``."""
    if equivalent_sample_size <= 0:
        raise LearningError("equivalent_sample_size must be positive")
    counts = _family_counts(cases, node, parents, cardinalities, state_names)
    child_card, columns = counts.shape
    alpha_column = equivalent_sample_size / columns
    alpha_cell = alpha_column / child_card
    score = 0.0
    for column in range(columns):
        column_count = counts[:, column].sum()
        score += gammaln(alpha_column) - gammaln(alpha_column + column_count)
        for row in range(child_card):
            score += gammaln(alpha_cell + counts[row, column]) - gammaln(alpha_cell)
    return float(score)


def network_score(network: BayesianNetwork, cases: Sequence[Case],
                  cardinalities: Mapping[str, int],
                  state_names: Mapping[str, Sequence[str]],
                  score: str = "bic") -> float:
    """Return the decomposable structure score of a whole network."""
    total = 0.0
    for node in network.nodes:
        parents = network.parents(node)
        if score == "bic":
            total += bic_score(cases, node, parents, cardinalities, state_names)
        elif score == "bdeu":
            total += bdeu_score(cases, node, parents, cardinalities, state_names)
        else:
            raise LearningError(f"unknown score {score!r}; use 'bic' or 'bdeu'")
    return total


class HillClimbSearch:
    """Greedy structure search over edge additions, deletions and reversals.

    Parameters
    ----------
    cardinalities / state_names:
        Variable schema (all variables that may appear in the structure).
    score:
        ``"bic"`` or ``"bdeu"``.
    max_parents:
        Upper bound on the number of parents per node (keeps CPTs small).
    max_iterations:
        Maximum number of greedy moves.
    """

    def __init__(self, cardinalities: Mapping[str, int],
                 state_names: Mapping[str, Sequence[str]] | None = None,
                 score: str = "bic", max_parents: int = 3,
                 max_iterations: int = 200) -> None:
        self.cardinalities = dict(cardinalities)
        self.state_names = {
            node: list(state_names[node]) if state_names and node in state_names
            else [str(i) for i in range(card)]
            for node, card in self.cardinalities.items()}
        self.score = score
        self.max_parents = int(max_parents)
        self.max_iterations = int(max_iterations)

    def _family_score(self, cases: Sequence[Case], node: str,
                      parents: Sequence[str]) -> float:
        if self.score == "bic":
            return bic_score(cases, node, parents, self.cardinalities, self.state_names)
        return bdeu_score(cases, node, parents, self.cardinalities, self.state_names)

    def fit(self, cases: Sequence[Case],
            start: BayesianNetwork | None = None) -> BayesianNetwork:
        """Return the structure found by greedy hill climbing from ``start``."""
        cases = list(cases)
        if not cases:
            raise LearningError("cannot search structure on an empty case list")
        nodes = list(self.cardinalities)
        current = start.copy() if start is not None else BayesianNetwork(nodes=nodes)
        for node in nodes:
            current.add_node(node)
        family_scores = {node: self._family_score(cases, node, current.parents(node))
                         for node in nodes}

        for _ in range(self.max_iterations):
            best_delta = 0.0
            best_move = None
            for parent in nodes:
                for child in nodes:
                    if parent == child:
                        continue
                    if current.graph.has_edge(parent, child):
                        # Consider deleting the edge.
                        new_parents = [p for p in current.parents(child) if p != parent]
                        delta = (self._family_score(cases, child, new_parents)
                                 - family_scores[child])
                        if delta > best_delta:
                            best_delta, best_move = delta, ("remove", parent, child)
                    else:
                        # Consider adding the edge (if acyclic and within fan-in).
                        if len(current.parents(child)) >= self.max_parents:
                            continue
                        if parent in current.graph.descendants(child):
                            continue
                        new_parents = current.parents(child) + [parent]
                        delta = (self._family_score(cases, child, new_parents)
                                 - family_scores[child])
                        if delta > best_delta:
                            best_delta, best_move = delta, ("add", parent, child)
            if best_move is None:
                break
            action, parent, child = best_move
            if action == "add":
                current.add_edge(parent, child)
            else:
                current.graph.remove_edge(parent, child)
            family_scores[child] = self._family_score(cases, child,
                                                      current.parents(child))
        return current
