"""Expectation–Maximisation parameter learning for partially observed cases.

In the paper's setting the controllable and observable blocks of every failed
device are measured, but the internal ("NOT CONTROL/OBSERVE") blocks never
are — their states are latent in every learning case.  EM handles exactly
this: the E step computes the expected sufficient statistics of the hidden
blocks with exact inference, the M step re-estimates the CPTs (optionally
against the designer's Dirichlet prior), and the loop repeats until the
log-likelihood stops improving.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.inference.variable_elimination import VariableElimination
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.bayesnet.learning.mle import resolve_schema, state_index
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import LearningError

Case = Mapping[str, object]


class ExpectationMaximization:
    """EM parameter learning with exact E steps.

    Parameters
    ----------
    structure:
        Network defining the parent sets.
    initial_network:
        Optional starting point (e.g. the designer-estimate network).  When
        omitted the structure's own CPDs are used; if it has none, uniform
        CPDs are constructed from ``cardinalities``.
    prior_network / equivalent_sample_size:
        Optional Dirichlet prior applied in every M step (MAP-EM).  The prior
        mean is the prior network's CPTs; ``equivalent_sample_size`` is the
        total pseudo-count weight per node.
    max_iterations / tolerance:
        Stopping criteria on the number of iterations and on the improvement
        of the observed-data log-likelihood.
    """

    def __init__(self, structure: BayesianNetwork,
                 initial_network: BayesianNetwork | None = None,
                 prior_network: BayesianNetwork | None = None,
                 equivalent_sample_size: float = 10.0,
                 cardinalities: Mapping[str, int] | None = None,
                 state_names: Mapping[str, Sequence[str]] | None = None,
                 max_iterations: int = 50,
                 tolerance: float = 1e-4) -> None:
        if max_iterations < 1:
            raise LearningError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise LearningError("tolerance must be positive")
        self.structure = structure
        self.prior_network = prior_network
        self.equivalent_sample_size = float(equivalent_sample_size)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._cardinalities, self._state_names = resolve_schema(
            structure, cardinalities, state_names)
        if initial_network is not None:
            self._initial = initial_network.copy()
        else:
            try:
                structure.check_model()
                self._initial = structure.copy()
            except Exception:
                self._initial = structure.with_uniform_cpds(
                    self._cardinalities, self._state_names)
        self.log_likelihood_trace: list[float] = []

    # ----------------------------------------------------------------- E step
    def _expected_counts(self, network: BayesianNetwork,
                         cases: Sequence[Case]) -> dict[str, np.ndarray]:
        """Return expected family counts for every node."""
        engine = VariableElimination(network)
        counts: dict[str, np.ndarray] = {}
        for node in network.nodes:
            parents = network.parents(node)
            child_card = self._cardinalities[node]
            parent_cards = [self._cardinalities[p] for p in parents]
            columns = int(np.prod(parent_cards)) if parents else 1
            counts[node] = np.zeros((child_card, columns), dtype=float)

        # Many ATE cases are identical once discretised (same condition set,
        # same response pattern); group them and weight each unique evidence
        # configuration by its multiplicity so the E step runs once per
        # distinct configuration instead of once per case.
        if isinstance(cases, CaseMatrix):
            grouped = self._group_matrix(network, cases)
        else:
            grouped = {}
            for case in cases:
                evidence = {}
                for variable, value in case.items():
                    if variable not in network.graph:
                        continue
                    index = state_index(value, variable, self._state_names)
                    if index is not None:
                        evidence[variable] = index
                key = tuple(sorted(evidence.items()))
                if key in grouped:
                    grouped[key] = (grouped[key][0], grouped[key][1] + 1)
                else:
                    grouped[key] = (evidence, 1)

        log_likelihood = 0.0
        for evidence, multiplicity in grouped.values():
            probability = engine.probability_of_evidence(evidence) if evidence else 1.0
            if probability <= 0:
                # Impossible case under the current parameters; skip it but
                # penalise the log-likelihood so convergence still reflects it.
                log_likelihood += -1e6 * multiplicity
                continue
            log_likelihood += float(np.log(probability)) * multiplicity
            for node in network.nodes:
                parents = network.parents(node)
                family = [node] + parents
                hidden = [v for v in family if v not in evidence]
                parent_cards = [self._cardinalities[p] for p in parents]
                if hidden:
                    joint = engine.query(hidden, evidence)
                else:
                    joint = None
                self._accumulate_family_counts(
                    counts[node], node, parents, parent_cards, evidence, joint,
                    weight=multiplicity)
        self.log_likelihood_trace.append(log_likelihood)
        return counts

    def _group_matrix(self, network: BayesianNetwork, matrix: CaseMatrix
                      ) -> dict[tuple, tuple[dict[str, int], int]]:
        """Group the rows of a case matrix by unique evidence configuration.

        One ``np.unique`` over the schema-aligned code rows replaces the
        per-case dict building of the row path; the resulting evidence
        dicts (variable -> state index, missing codes dropped) are identical
        to those the row path would produce.
        """
        variables = [v for v in matrix.variables if v in network.graph]
        if not variables:
            return {(): ({}, len(matrix))} if len(matrix) else {}
        aligned = np.stack([matrix.encode_for(v, self._state_names[v])
                            for v in variables], axis=1)
        rows, counts = np.unique(aligned, axis=0, return_counts=True)
        grouped: dict[tuple, tuple[dict[str, int], int]] = {}
        for row, multiplicity in zip(rows, counts):
            evidence = {variable: int(code)
                        for variable, code in zip(variables, row) if code >= 0}
            key = tuple(sorted(evidence.items()))
            if key in grouped:
                grouped[key] = (grouped[key][0],
                                grouped[key][1] + int(multiplicity))
            else:
                grouped[key] = (evidence, int(multiplicity))
        return grouped

    def _accumulate_family_counts(self, counts: np.ndarray, node: str,
                                  parents: list[str], parent_cards: list[int],
                                  evidence: Mapping[str, int], joint,
                                  weight: float = 1.0) -> None:
        """Add one case's (expected) contribution to the family count matrix."""
        family = [node] + parents
        hidden = [v for v in family if v not in evidence]
        if not hidden:
            row = evidence[node]
            column = 0
            for parent, card in zip(parents, parent_cards):
                column = column * card + evidence[parent]
            counts[row, column] += weight
            return
        # Enumerate joint states of the hidden family members weighted by the
        # posterior factor returned by the E-step query.
        hidden_cards = [self._cardinalities[v] for v in hidden]
        for flat in range(int(np.prod(hidden_cards))):
            indices = np.unravel_index(flat, hidden_cards)
            assignment = dict(evidence)
            for variable, index in zip(hidden, indices):
                assignment[variable] = int(index)
            posterior_mass = joint.get({v: int(i) for v, i in zip(hidden, indices)})
            if posterior_mass <= 0:
                continue
            row = assignment[node]
            column = 0
            for parent, card in zip(parents, parent_cards):
                column = column * card + assignment[parent]
            counts[row, column] += posterior_mass * weight

    # ----------------------------------------------------------------- M step
    def _maximize(self, counts: Mapping[str, np.ndarray]) -> BayesianNetwork:
        learned = BayesianNetwork(nodes=self.structure.nodes)
        for parent, child in self.structure.edges:
            learned.add_edge(parent, child)
        for node in learned.nodes:
            parents = learned.parents(node)
            parent_cards = [self._cardinalities[p] for p in parents]
            matrix = counts[node].copy()
            if self.prior_network is not None:
                prior_cpd = self.prior_network.get_cpd(node)
                columns = matrix.shape[1]
                matrix += prior_cpd.table * (self.equivalent_sample_size / columns)
            column_sums = matrix.sum(axis=0)
            table = np.empty_like(matrix)
            for column, total in enumerate(column_sums):
                if total > 0:
                    table[:, column] = matrix[:, column] / total
                else:
                    table[:, column] = 1.0 / matrix.shape[0]
            names = {node: self._state_names[node]}
            names.update({p: self._state_names[p] for p in parents})
            learned.add_cpd(TabularCPD(node, self._cardinalities[node], table,
                                       parents, parent_cards, names))
        learned.check_model()
        return learned

    # -------------------------------------------------------------------- fit
    def fit(self, cases: Sequence[Case] | CaseMatrix) -> BayesianNetwork:
        """Run EM on ``cases`` and return the learned network."""
        if not isinstance(cases, CaseMatrix):
            cases = list(cases)
        if len(cases) == 0:
            raise LearningError("cannot run EM on an empty case list")
        current = self._initial.copy()
        self.log_likelihood_trace = []
        previous_log_likelihood = -np.inf
        for _ in range(self.max_iterations):
            counts = self._expected_counts(current, cases)
            current = self._maximize(counts)
            log_likelihood = self.log_likelihood_trace[-1]
            if abs(log_likelihood - previous_log_likelihood) < self.tolerance:
                break
            previous_log_likelihood = log_likelihood
        return current
