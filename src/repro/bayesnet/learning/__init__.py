"""Parameter and structure learning for Bayesian belief networks.

The paper's parameter modelling (Section III-A.2) starts from designer
estimates and fine-tunes the conditional probability tables from learning
cases generated out of ATE test data, citing Expectation–Maximisation as the
learning algorithm.  This subpackage implements:

* :class:`MaximumLikelihoodEstimator` — counts/normalise for fully observed cases.
* :class:`BayesianEstimator` — Dirichlet-smoothed counting; the prior can be
  the designer-provided CPTs (the paper's "rough estimate"), making this the
  direct analogue of the paper's "fine-tuning" step.
* :class:`ExpectationMaximization` — EM for cases with missing block states
  (non-observable blocks are never measured directly, so real cases are
  always partial).
* :func:`bic_score`, :func:`bdeu_score` — structure scores used by the
  optional greedy structure-search extension.
* :class:`CaseMatrix` — integer-encoded case rows; the array-native input
  the estimators count with ``np.bincount`` instead of per-case loops.
"""

from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.bayesnet.learning.mle import MaximumLikelihoodEstimator
from repro.bayesnet.learning.bayesian_estimator import BayesianEstimator
from repro.bayesnet.learning.em import ExpectationMaximization
from repro.bayesnet.learning.structure_scores import bic_score, bdeu_score

__all__ = [
    "CaseMatrix",
    "MaximumLikelihoodEstimator",
    "BayesianEstimator",
    "ExpectationMaximization",
    "bic_score",
    "bdeu_score",
]
