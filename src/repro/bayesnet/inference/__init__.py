"""Inference engines for discrete Bayesian belief networks.

Two exact engines (variable elimination and junction-tree belief propagation)
and two approximate engines (likelihood weighting and Gibbs sampling) are
provided.  All engines share the same query interface:

``query(variables, evidence)``
    posterior marginal factors of ``variables`` given ``evidence``.
``posterior(variable, evidence)``
    convenience single-variable ``{state: probability}`` dictionary.
``map_query(variables, evidence)``
    most probable joint assignment of ``variables``.

The exact engines additionally support ahead-of-time compilation
(``compile_posteriors``) into static :class:`CompiledProgram` op-lists for
sub-millisecond single-device queries and vectorised population sweeps.
"""

from repro.bayesnet.inference.elimination_order import (
    min_degree_order,
    min_fill_order,
    min_weight_order,
)
from repro.bayesnet.inference.variable_elimination import VariableElimination
from repro.bayesnet.inference.junction_tree import JunctionTree
from repro.bayesnet.inference.likelihood_weighting import LikelihoodWeighting
from repro.bayesnet.inference.gibbs import GibbsSampling
from repro.bayesnet.inference.compiled import (
    BatchPosteriors,
    CompiledProgram,
    compile_posteriors,
)

__all__ = [
    "min_degree_order",
    "min_fill_order",
    "min_weight_order",
    "VariableElimination",
    "JunctionTree",
    "LikelihoodWeighting",
    "GibbsSampling",
    "BatchPosteriors",
    "CompiledProgram",
    "compile_posteriors",
]
