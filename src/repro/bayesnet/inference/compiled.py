"""Ahead-of-time compiled inference programs.

The interpreted exact engines re-walk a Python factor graph on every cold
query: ``DiscreteFactor`` objects are rebuilt, contraction plans are looked
up, and dictionaries are assembled per call.  For the interactive serving
story (one failing device on the bench, sub-millisecond posterior updates)
that bookkeeping dominates the arithmetic, so this module traces an
engine's whole sweep **once** into a static :class:`CompiledProgram`:

* the VE shared-bucket forward/backward sweep
  (:meth:`~repro.bayesnet.inference.variable_elimination.VariableElimination.compile_posteriors`), or
* the junction tree's collect/distribute calibration
  (:meth:`~repro.bayesnet.inference.junction_tree.JunctionTree.compile_posteriors`)

is recorded as a flat op-list of array contractions.  Every axis alignment
(transposes, broadcast slots, summed axes) is resolved at compile time;
wide contractions lower to ``einsum`` calls whose contraction paths are
precomputed through the shared :func:`~repro.bayesnet.factor.cached_einsum_path`
memo; narrow ones lower to broadcast multiply chains (``einsum``'s parsing
overhead dominates the arithmetic at these sizes).  Evidence is entered by
*indexed slicing into pinned CPT arrays*: each CPT is transposed once so
its evidence axes lead, flattened to a ``(evidence-configs, rest)`` plane,
and a query gathers one row (a zero-copy view for single queries, a
vectorised gather for batches) instead of rebuilding reduced factors.

Two entry points:

``run(evidence)``
    One device.  Executes the single-query plan over preallocated scratch
    buffers and returns every free-variable marginal as a ``(card,)``
    array — the sub-millisecond path.
``run_batch(evidence_matrix)``
    A whole failing population.  The same op-list executes with a leading
    batch axis carried through every contraction, returning
    ``(devices, variables, states)`` posterior planes plus per-device
    evidence probabilities.

Programs are immutable snapshots of the network's CPDs at compile time
(``cpd_version`` records which); callers such as
:class:`~repro.core.diagnosis.DiagnosisEngine` recompile when CPDs are
replaced, exactly like the interpreted evidence caches invalidate.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import (
    _MAX_EINSUM_VARIABLES,
    DiscreteFactor,
    cached_einsum_path,
)
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import ImpossibleEvidenceError, InferenceError

Evidence = Mapping[str, str | int]

#: Compile schedules a program can be traced from.
SCHEDULES = ("ve", "jt")

#: Contractions at least this many operands wide *and* whose union table is
#: at least this large lower to ``einsum`` with a precomputed contraction
#: path; smaller ones lower to broadcast multiply chains.
_EINSUM_MIN_OPERANDS = 3
_EINSUM_MIN_SIZE = 4096

#: Representative batch extent used when planning batched einsum paths at
#: compile time (the path's validity does not depend on the real extent).
_PATH_PLAN_BATCH = 8

# Executable step kinds (first element of every lowered step tuple).
_MUL, _EINSUM, _SUM, _DIV = 0, 1, 2, 3

_ZERO_PROBABILITY_MESSAGE = (
    "the evidence has zero probability under the model; "
    "posteriors are undefined")
_NON_FINITE_MESSAGE = (
    "non-finite evidence probability; the network contains corrupted "
    "(NaN/inf) CPD entries")


class _ProgramBuilder:
    """Records the abstract op graph while a schedule is being traced.

    Registers are integers; ``meta[reg]`` holds ``(variables, depends)``
    where ``depends`` marks values that change with the evidence codes
    (the leaves gathered from pinned CPTs and everything downstream of
    them) — exactly the values that carry the batch axis in batch mode.
    """

    def __init__(self, network: BayesianNetwork,
                 evidence_vars: tuple[str, ...]) -> None:
        self.network = network
        self.evidence_vars = evidence_vars
        self.evidence_pos = {v: i for i, v in enumerate(evidence_vars)}
        self.cards = {node: network.cardinality(node)
                      for node in network.nodes}
        self.meta: list[tuple[tuple[str, ...], bool]] = []
        self.consts: dict[int, np.ndarray] = {}
        self.leaves: list[tuple] = []
        self.ops: list[tuple] = []
        self.total_regs: list[int] = []
        self.marginal_regs: dict[str, int] = {}

    # ------------------------------------------------------------- registers
    def new_reg(self, variables: Sequence[str], depends: bool) -> int:
        self.meta.append((tuple(variables), bool(depends)))
        return len(self.meta) - 1

    def vars_of(self, reg: int) -> tuple[str, ...]:
        return self.meta[reg][0]

    def const(self, values: np.ndarray, variables: Sequence[str]) -> int:
        reg = self.new_reg(variables, depends=False)
        self.consts[reg] = np.asarray(values, dtype=float)
        return reg

    def ones(self, variables: Sequence[str]) -> int:
        cards = [self.cards[v] for v in variables]
        return self.const(np.ones(cards), variables)

    # ---------------------------------------------------------------- leaves
    def leaf(self, factor: DiscreteFactor) -> int:
        """Pin one CPT: evidence axes lead, flattened to a gather plane."""
        hit = [v for v in factor.variables if v in self.evidence_pos]
        if not hit:
            return self.const(factor.values, factor.variables)
        axes = {v: i for i, v in enumerate(factor.variables)}
        rest = [v for v in factor.variables if v not in set(hit)]
        perm = [axes[v] for v in hit] + [axes[v] for v in rest]
        pinned = np.ascontiguousarray(factor.values.transpose(perm),
                                      dtype=float)
        hit_cards = [factor.cardinalities[axes[v]] for v in hit]
        rest_shape = tuple(factor.cardinalities[axes[v]] for v in rest)
        plane = pinned.reshape(math.prod(hit_cards), -1)
        multipliers: list[int] = []
        running = 1
        for card in reversed(hit_cards):
            multipliers.append(running)
            running *= card
        multipliers.reverse()
        columns = tuple(self.evidence_pos[v] for v in hit)
        reg = self.new_reg(rest, depends=True)
        self.leaves.append((reg, plane, columns, tuple(multipliers),
                            rest_shape))
        return reg

    # ------------------------------------------------------------------- ops
    def contract(self, srcs: Sequence[int],
                 keep: Sequence[str] | frozenset[str] | None = None) -> int:
        """Multiply registers, summing out every variable not in ``keep``.

        Output variables appear in first-seen order across the operands
        (the :func:`~repro.bayesnet.factor.contract_factors` convention).
        An identity contraction returns its operand register with no op.
        """
        srcs = list(srcs)
        if not srcs:
            return self.const(np.array(1.0), ())
        order: list[str] = []
        seen: set[str] = set()
        depends = False
        for reg in srcs:
            variables, reg_depends = self.meta[reg]
            depends = depends or reg_depends
            for variable in variables:
                if variable not in seen:
                    seen.add(variable)
                    order.append(variable)
        if keep is None:
            out_vars = order
        else:
            keep_set = set(keep)
            out_vars = [v for v in order if v in keep_set]
        if len(srcs) == 1 and len(out_vars) == len(order):
            return srcs[0]
        out = self.new_reg(out_vars, depends)
        self.ops.append(("contract", out, tuple(srcs),
                         None if keep is None else frozenset(keep)))
        return out

    def divide(self, num: int, den: int) -> int:
        """``num / den`` with the 0/0-equals-0 convention, over num's axes."""
        out = self.new_reg(self.meta[num][0],
                           self.meta[num][1] or self.meta[den][1])
        self.ops.append(("divide", out, num, den))
        return out


# --------------------------------------------------------------- lowering
def _lower(builder: _ProgramBuilder, *, batch: bool,
           buffers: bool) -> tuple[tuple, ...]:
    """Lower the abstract op graph to executable steps for one mode.

    ``batch=True`` threads a leading batch axis through every
    evidence-dependent value; ``buffers=True`` (single mode only)
    preallocates every op's output/scratch arrays so the steady-state query
    path performs no per-call output allocation.
    """
    steps = []
    for op in builder.ops:
        if op[0] == "contract":
            steps.append(_lower_contract(builder, op, batch, buffers))
        else:
            steps.append(_lower_divide(builder, op, batch, buffers))
    return tuple(steps)


def _lower_contract(builder: _ProgramBuilder, op: tuple, batch: bool,
                    buffers: bool) -> tuple:
    _, out, srcs, keep = op
    metas = [builder.meta[reg] for reg in srcs]
    flags = [batch and depends for _, depends in metas]
    order: list[str] = []
    seen: set[str] = set()
    for variables, _ in metas:
        for variable in variables:
            if variable not in seen:
                seen.add(variable)
                order.append(variable)
    position = {variable: i for i, variable in enumerate(order)}
    out_batched = any(flags)
    keep_set = None if keep is None else set(keep)
    out_vars = order if keep_set is None \
        else [v for v in order if v in keep_set]
    union_shape = tuple(builder.cards[v] for v in order)
    out_shape = tuple(builder.cards[v] for v in out_vars)

    if len(srcs) == 1:
        # Lone operand: no alignment, just sum the dropped axes in place.
        variables = metas[0][0]
        offset = 1 if flags[0] else 0
        axes = tuple(offset + i for i, v in enumerate(variables)
                     if v not in keep_set)
        buf = np.empty(out_shape) if buffers else None
        return (_SUM, out, srcs[0], axes, buf)

    size = math.prod(union_shape) if order else 1
    if (len(srcs) >= _EINSUM_MIN_OPERANDS and size >= _EINSUM_MIN_SIZE
            and len(order) < _MAX_EINSUM_VARIABLES):
        return _lower_einsum(builder, out, srcs, metas, flags, position,
                             out_vars, out_batched, out_shape, buffers)

    width = len(order)
    aligners = []
    for (variables, _), flag in zip(metas, flags):
        perm = sorted(range(len(variables)),
                      key=lambda i: position[variables[i]])
        identity = perm == list(range(len(variables)))
        if flag:
            transpose = None if identity \
                else tuple([0] + [1 + i for i in perm])
        else:
            transpose = None if identity else tuple(perm)
        index: list[object] = [slice(None)] if flag \
            else ([np.newaxis] if out_batched else [])
        present = {position[v] for v in variables}
        index.extend(slice(None) if axis in present else np.newaxis
                     for axis in range(width))
        if any(entry is np.newaxis for entry in index):
            aligners.append((transpose, tuple(index)))
        else:
            aligners.append((transpose, None))
    offset = 1 if out_batched else 0
    drop = () if keep_set is None else tuple(
        offset + i for i, v in enumerate(order) if v not in keep_set)
    mul_buf = np.empty(union_shape) if buffers else None
    sum_buf = np.empty(out_shape) if buffers and drop else None
    return (_MUL, out, tuple(srcs), tuple(aligners), drop, mul_buf, sum_buf)


def _lower_einsum(builder: _ProgramBuilder, out: int, srcs: tuple,
                  metas: list, flags: list, position: dict,
                  out_vars: list, out_batched: bool, out_shape: tuple,
                  buffers: bool) -> tuple:
    """Wide contraction: one einsum call with a precomputed path."""
    batch_label = len(position)
    subscripts: list[tuple[int, ...]] = []
    shapes: list[tuple[int, ...]] = []
    for (variables, _), flag in zip(metas, flags):
        labels = [position[v] for v in variables]
        shape = tuple(builder.cards[v] for v in variables)
        if flag:
            labels = [batch_label] + labels
            shape = (_PATH_PLAN_BATCH,) + shape
        subscripts.append(tuple(labels))
        shapes.append(shape)
    out_labels = [position[v] for v in out_vars]
    if out_batched:
        out_labels = [batch_label] + out_labels
    key = ("compiled", tuple(zip(subscripts, shapes)), tuple(out_labels))
    plan_operands: list[object] = []
    for shape, labels in zip(shapes, subscripts):
        plan_operands.append(np.empty(shape))
        plan_operands.append(list(labels))
    plan_operands.append(list(out_labels))
    path = cached_einsum_path(key, plan_operands)
    buf = np.empty(out_shape) if buffers else None
    return (_EINSUM, out, tuple(srcs), tuple(subscripts),
            tuple(out_labels), path, buf)


def _lower_divide(builder: _ProgramBuilder, op: tuple, batch: bool,
                  buffers: bool) -> tuple:
    _, out, num, den = op
    num_vars, num_depends = builder.meta[num]
    den_vars, den_depends = builder.meta[den]
    num_batched = batch and num_depends
    den_batched = batch and den_depends
    axes = [den_vars.index(v) for v in num_vars]
    identity = axes == list(range(len(den_vars)))
    if den_batched:
        transpose = None if identity else tuple([0] + [1 + a for a in axes])
    else:
        transpose = None if identity else tuple(axes)
    den_expand = num_batched and not den_batched
    num_expand = den_batched and not num_batched
    buf = np.empty(tuple(builder.cards[v] for v in num_vars)) \
        if buffers else None
    return (_DIV, out, num, den, transpose, den_expand, num_expand, buf)


def _execute(steps: tuple[tuple, ...], regs: list) -> None:
    """Run the lowered op-list over the register file, in place."""
    for step in steps:
        kind = step[0]
        if kind == _MUL:
            _, out, srcs, aligners, drop, mul_buf, sum_buf = step
            acc = None
            last = len(srcs) - 1
            for k in range(len(srcs)):
                value = regs[srcs[k]]
                transpose, index = aligners[k]
                if transpose is not None:
                    value = value.transpose(transpose)
                if index is not None:
                    value = value[index]
                if acc is None:
                    acc = value
                elif k == last and mul_buf is not None:
                    acc = np.multiply(acc, value, out=mul_buf)
                else:
                    acc = acc * value
            if drop:
                acc = acc.sum(axis=drop, out=sum_buf) \
                    if sum_buf is not None else acc.sum(axis=drop)
            regs[out] = acc
        elif kind == _SUM:
            _, out, src, axes, buf = step
            value = regs[src]
            regs[out] = value.sum(axis=axes, out=buf) \
                if buf is not None else value.sum(axis=axes)
        elif kind == _DIV:
            _, out, num, den, transpose, den_expand, num_expand, buf = step
            den_value = regs[den]
            if transpose is not None:
                den_value = den_value.transpose(transpose)
            if den_expand:
                den_value = den_value[np.newaxis]
            num_value = regs[num]
            if num_expand:
                num_value = num_value[np.newaxis]
            if buf is not None:
                buf.fill(0.0)
                np.divide(num_value, den_value, out=buf,
                          where=den_value > 0)
                regs[out] = buf
            else:
                with np.errstate(divide="ignore", invalid="ignore"):
                    regs[out] = np.where(den_value > 0,
                                         num_value / den_value, 0.0)
        else:  # _EINSUM
            _, out, srcs, subscripts, out_labels, path, buf = step
            operands: list[object] = []
            for reg, labels in zip(srcs, subscripts):
                operands.append(regs[reg])
                operands.append(list(labels))
            operands.append(list(out_labels))
            if buf is not None:
                regs[out] = np.einsum(*operands, out=buf, optimize=path)
            else:
                regs[out] = np.einsum(*operands, optimize=path)


# ----------------------------------------------------------------- tracing
def _trace_ve(builder: _ProgramBuilder, engine) -> None:
    """Record the shared-bucket VE forward/backward sweep as ops.

    Mirrors ``VariableElimination._forward_pass_batch`` and
    ``_sweep_batch`` op for op: same elimination order, same bucket
    assignment, same backward divisions — so compiled and interpreted
    posteriors agree to floating-point noise.
    """
    network = builder.network
    free = [node for node in network.nodes
            if node not in builder.evidence_pos]
    order = engine._elimination_order(free)
    position = {variable: i for i, variable in enumerate(order)}
    buckets: list[list[int]] = [[] for _ in order]
    for factor in engine._factors():
        reg = builder.leaf(factor)
        variables = builder.vars_of(reg)
        if variables:
            buckets[min(position[v] for v in variables)].append(reg)
        else:
            builder.total_regs.append(reg)

    potentials: list[int | None] = [None] * len(order)
    forward: list[int | None] = [None] * len(order)
    parent: list[int | None] = [None] * len(order)
    for i, variable in enumerate(order):
        psi = builder.contract(buckets[i], keep=None)
        potentials[i] = psi
        message = builder.contract(
            [psi], keep=[v for v in builder.vars_of(psi) if v != variable])
        forward[i] = message
        message_vars = builder.vars_of(message)
        if message_vars:
            target = min(position[v] for v in message_vars)
            parent[i] = target
            buckets[target].append(message)
        else:
            builder.total_regs.append(message)

    back: list[int | None] = [None] * len(order)
    for j in range(len(order) - 1, -1, -1):
        belief = potentials[j]
        if back[j] is not None:
            belief = builder.contract([potentials[j], back[j]], keep=None)
        potentials[j] = belief
        builder.marginal_regs[order[j]] = builder.contract(
            [belief], keep=[order[j]])
        for i in range(j):
            if parent[i] == j:
                separator = set(builder.vars_of(forward[i]))
                numerator = builder.contract(
                    [belief], keep=[v for v in builder.vars_of(belief)
                                    if v in separator])
                back[i] = builder.divide(numerator, forward[i])


def _trace_jt(builder: _ProgramBuilder, engine) -> None:
    """Record the junction tree's collect/distribute calibration as ops.

    Mirrors ``JunctionTree.calibrate``: same CPD-to-home-clique
    assignment, same Shafer-Shenoy messages over the same DFS order, with
    the total evidence mass read from the root clique's belief.
    """
    network = builder.network
    evidence = set(builder.evidence_pos)
    cliques = engine._cliques
    assigned: list[list[int]] = [[] for _ in cliques]
    for cpd in network.cpds:
        family = set(cpd.parents) | {cpd.variable}
        home = None
        for clique in cliques:
            if family <= clique.variables:
                home = clique.index
                break
        if home is None:
            raise InferenceError(
                f"no clique contains the family of {cpd.variable!r}; "
                "triangulation is inconsistent")
        assigned[home].append(builder.leaf(cpd.to_factor()))

    potentials: list[int] = []
    for clique in cliques:
        scope = sorted(v for v in clique.variables if v not in evidence)
        covered: set[str] = set()
        for reg in assigned[clique.index]:
            covered.update(builder.vars_of(reg))
        missing = [v for v in scope if v not in covered]
        operands = list(assigned[clique.index])
        if missing:
            # Clique scope not covered by any assigned CPD: keep those
            # axes present, as the interpreted identity factor does.
            operands = [builder.ones(missing)] + operands
        potentials.append(builder.contract(operands, keep=None))

    root = 0
    order = engine._dfs_order(root)
    parent_map = dict(engine._dfs_parent)
    messages: dict[tuple[int, int], int] = {}

    def message(source: int, target: int) -> int:
        operands = [potentials[source]]
        for neighbour in cliques[source].neighbours:
            if neighbour == target:
                continue
            operands.append(messages[(neighbour, source)])
        return builder.contract(operands,
                                keep=engine._sepsets[(source, target)])

    for node in reversed(order):  # collect: leaves towards the root
        parent = parent_map.get(node)
        if parent is not None:
            messages[(node, parent)] = message(node, parent)
    for node in order:  # distribute: root towards the leaves
        for child in cliques[node].neighbours:
            if child == parent_map.get(node):
                continue
            messages[(node, child)] = message(node, child)

    free = [node for node in network.nodes if node not in evidence]
    needed = {root} | {engine._home_clique[v] for v in free}
    beliefs: dict[int, int] = {}
    for index in sorted(needed):
        beliefs[index] = builder.contract(
            [potentials[index]] + [messages[(neighbour, index)]
                                   for neighbour
                                   in cliques[index].neighbours],
            keep=None)
    builder.total_regs.append(builder.contract([beliefs[root]], keep=()))
    for variable in free:
        builder.marginal_regs[variable] = builder.contract(
            [beliefs[engine._home_clique[variable]]], keep=[variable])


# ----------------------------------------------------------------- program
class BatchPosteriors:
    """The result of one :meth:`CompiledProgram.run_batch` sweep.

    Attributes
    ----------
    variables:
        Free variables, in network node order — the second plane axis.
    state_names:
        ``{variable: [state, ...]}`` naming the third plane axis.
    planes:
        ``(devices, variables, states)`` normalised posteriors,
        zero-padded past each variable's cardinality.  Rows whose evidence
        is impossible are all-zero.
    evidence_probability:
        ``(devices,)`` per-row ``P(evidence)``; ``<= 0`` marks impossible
        rows.
    """

    __slots__ = ("variables", "state_names", "planes",
                 "evidence_probability", "_index")

    def __init__(self, variables: tuple[str, ...],
                 state_names: dict[str, list[str]], planes: np.ndarray,
                 evidence_probability: np.ndarray) -> None:
        self.variables = variables
        self.state_names = state_names
        self.planes = planes
        self.evidence_probability = evidence_probability
        self._index = {variable: i for i, variable in enumerate(variables)}

    def __len__(self) -> int:
        return self.planes.shape[0]

    def distribution(self, row: int, variable: str) -> dict[str, float]:
        """Return one ``{state: probability}`` cell of the planes."""
        try:
            plane = self.planes[row, self._index[variable]]
        except KeyError:
            raise InferenceError(
                f"variable {variable!r} is not a free variable of this "
                f"compiled program") from None
        names = self.state_names[variable]
        return {name: float(value)
                for name, value in zip(names, plane)}

    def distributions(self, row: int) -> dict[str, dict[str, float]] | None:
        """All marginals of one device; ``None`` for impossible evidence."""
        if not self.evidence_probability[row] > 0.0:
            return None
        return {variable: self.distribution(row, variable)
                for variable in self.variables}


class CompiledProgram:
    """A traced, ready-to-execute all-marginals inference program.

    Built by :func:`compile_posteriors` (or the engines'
    ``compile_posteriors`` methods) for one network and one fixed set of
    evidence variables; evidence *values* are per-call inputs.  Single
    queries execute over preallocated buffers, so :meth:`run` is not
    re-entrant — concurrent callers transparently fall back to an
    allocation-per-op plan.

    Attributes
    ----------
    schedule:
        ``"ve"`` or ``"jt"`` — which engine's sweep was traced.
    evidence_vars:
        The evidence signature (sorted variable names).
    variables:
        Free variables answered by the program, in network node order.
    cpd_version:
        The network's CPD generation this program pinned; stale programs
        must be recompiled after CPD replacement.
    compile_ms:
        Wall-clock compile time in milliseconds.
    """

    def __init__(self, network: BayesianNetwork, schedule: str,
                 builder: _ProgramBuilder) -> None:
        self.network = network
        self.schedule = schedule
        self.evidence_vars = builder.evidence_vars
        self.variables = tuple(node for node in network.nodes
                               if node not in builder.evidence_pos)
        self.state_names = {node: list(network.state_names(node))
                            for node in network.nodes}
        self.cpd_version = network.cpd_version
        self.compile_ms = 0.0
        self.run_count = 0
        self.batch_run_count = 0
        self._cards = {v: network.cardinality(v) for v in network.nodes}
        self.max_states = max((self._cards[v] for v in self.variables),
                              default=0)
        self._evidence_lookup = {
            v: {name: i for i, name in enumerate(self.state_names[v])}
            for v in self.evidence_vars}
        self._leaves = tuple(builder.leaves)
        self._total_regs = tuple(builder.total_regs)
        self._marginal_regs = {v: builder.marginal_regs[v]
                               for v in self.variables}
        template: list = [None] * len(builder.meta)
        for reg, values in builder.consts.items():
            template[reg] = values
        self._template = template
        self._steps_single = _lower(builder, batch=False, buffers=True)
        self._steps_unbuffered = _lower(builder, batch=False, buffers=False)
        self._steps_batch = _lower(builder, batch=True, buffers=False)
        self._buffer_lock = threading.Lock()

    # ------------------------------------------------------------- encoding
    @property
    def op_count(self) -> int:
        """Number of executable steps per query (plus one gather per leaf)."""
        return len(self._steps_single)

    def _state_code(self, variable: str, state: str | int) -> int:
        if isinstance(state, (int, np.integer)):
            index = int(state)
            if not 0 <= index < self._cards[variable]:
                raise InferenceError(
                    f"state index {index} out of range for evidence "
                    f"variable {variable!r}")
            return index
        try:
            return self._evidence_lookup[variable][str(state)]
        except KeyError:
            raise InferenceError(
                f"unknown state {state!r} for evidence variable "
                f"{variable!r}; known states: "
                f"{self.state_names[variable]}") from None

    def encode_one(self, evidence: Evidence) -> np.ndarray:
        """Encode one evidence mapping to the program's code vector."""
        if set(evidence) != set(self.evidence_vars):
            missing = sorted(set(self.evidence_vars) - set(evidence))
            extra = sorted(set(evidence) - set(self.evidence_vars))
            raise InferenceError(
                "evidence does not match this compiled program's "
                f"signature {self.evidence_vars}: "
                f"missing {missing}, unexpected {extra}")
        codes = np.empty(len(self.evidence_vars), dtype=np.int64)
        for i, variable in enumerate(self.evidence_vars):
            codes[i] = self._state_code(variable, evidence[variable])
        return codes

    def encode(self, evidence_list: Sequence[Evidence]) -> np.ndarray:
        """Encode many evidence mappings to a ``(devices, vars)`` matrix."""
        count = len(evidence_list)
        codes = np.empty((count, len(self.evidence_vars)), dtype=np.int64)
        for row, evidence in enumerate(evidence_list):
            codes[row] = self.encode_one(evidence)
        return codes

    def _decode(self, codes: np.ndarray) -> dict[str, str]:
        return {variable: self.state_names[variable][int(codes[i])]
                for i, variable in enumerate(self.evidence_vars)}

    def _validate_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(self.evidence_vars):
            raise InferenceError(
                f"evidence matrix must have shape (devices, "
                f"{len(self.evidence_vars)}), got {codes.shape}")
        codes = codes.astype(np.int64, copy=False)
        for i, variable in enumerate(self.evidence_vars):
            column = codes[:, i]
            if column.size and (column.min() < 0
                                or column.max() >= self._cards[variable]):
                raise InferenceError(
                    f"state index out of range for evidence variable "
                    f"{variable!r} in the evidence matrix")
        return codes

    # ------------------------------------------------------------ execution
    def _gather_single(self, regs: list, codes: np.ndarray) -> None:
        for reg, plane, columns, multipliers, shape in self._leaves:
            index = 0
            for column, multiplier in zip(columns, multipliers):
                index += int(codes[column]) * multiplier
            regs[reg] = plane[index].reshape(shape)

    def run(self, evidence: Evidence | np.ndarray | None = None
            ) -> dict[str, np.ndarray]:
        """Answer one device: every free-variable posterior marginal.

        ``evidence`` is a ``{variable: state}`` mapping over exactly the
        program's evidence variables (or a pre-encoded code vector).
        Returns ``{variable: (card,) ndarray}`` of normalised posteriors.
        Raises :class:`~repro.exceptions.ImpossibleEvidenceError` for
        zero-probability evidence and
        :class:`~repro.exceptions.InferenceError` for corrupted CPDs.
        """
        if isinstance(evidence, np.ndarray):
            codes = evidence.astype(np.int64, copy=False)
        else:
            codes = self.encode_one(evidence or {})
        buffered = self._buffer_lock.acquire(blocking=False)
        try:
            steps = self._steps_single if buffered \
                else self._steps_unbuffered
            regs = self._template.copy()
            self._gather_single(regs, codes)
            _execute(steps, regs)
            total = 1.0
            for reg in self._total_regs:
                total *= float(regs[reg])
            if not math.isfinite(total):
                raise InferenceError(_NON_FINITE_MESSAGE)
            if not total > 0.0:
                raise ImpossibleEvidenceError(
                    _ZERO_PROBABILITY_MESSAGE,
                    evidence=self._decode(codes))
            marginals = {}
            for variable, reg in self._marginal_regs.items():
                values = regs[reg]
                marginals[variable] = values / values.sum()
            self.run_count += 1
            return marginals
        finally:
            if buffered:
                self._buffer_lock.release()

    def posteriors(self, evidence: Evidence | None = None
                   ) -> dict[str, dict[str, float]]:
        """:meth:`run`, with the marginals expanded to state-name dicts."""
        marginals = self.run(evidence)
        return {variable: dict(zip(self.state_names[variable],
                                   (float(p) for p in values)))
                for variable, values in marginals.items()}

    def run_batch(self, evidence: Sequence[Evidence] | np.ndarray, *,
                  on_impossible: str = "raise") -> BatchPosteriors:
        """Push a whole failing population through the program at once.

        ``evidence`` is a sequence of evidence mappings or a pre-encoded
        ``(devices, len(evidence_vars))`` integer state matrix.  One
        vectorised pass executes the op-list with a leading device axis;
        the result holds ``(devices, variables, states)`` posterior planes
        plus per-device evidence probabilities.

        ``on_impossible`` decides what a zero-probability row does:
        ``"raise"`` (default) aborts with
        :class:`~repro.exceptions.ImpossibleEvidenceError` naming the row;
        ``"mask"`` zeroes the row's planes and lets
        ``evidence_probability`` flag it.
        """
        if on_impossible not in ("raise", "mask"):
            raise InferenceError(
                f"unknown on_impossible mode {on_impossible!r}; "
                "use 'raise' or 'mask'")
        if isinstance(evidence, np.ndarray):
            codes = self._validate_codes(evidence)
        else:
            codes = self.encode(list(evidence))
        count = codes.shape[0]
        if count == 0:
            return BatchPosteriors(
                self.variables,
                {v: self.state_names[v] for v in self.variables},
                np.zeros((0, len(self.variables), self.max_states)),
                np.ones(0))
        regs = self._template.copy()
        for reg, plane, columns, multipliers, shape in self._leaves:
            index = codes[:, columns[0]] * multipliers[0]
            for column, multiplier in zip(columns[1:], multipliers[1:]):
                index = index + codes[:, column] * multiplier
            regs[reg] = plane[index].reshape((count,) + shape)
        _execute(self._steps_batch, regs)
        total = np.ones(count)
        for reg in self._total_regs:
            total = total * np.asarray(regs[reg])
        if not np.all(np.isfinite(total)):
            raise InferenceError(_NON_FINITE_MESSAGE)
        impossible = ~(total > 0.0)
        if impossible.any() and on_impossible == "raise":
            row = int(np.argmax(impossible))
            raise ImpossibleEvidenceError(
                _ZERO_PROBABILITY_MESSAGE + f" (device row {row})",
                evidence=self._decode(codes[row]))
        planes = np.zeros((count, len(self.variables), self.max_states))
        with np.errstate(divide="ignore", invalid="ignore"):
            for slot, variable in enumerate(self.variables):
                values = regs[self._marginal_regs[variable]]
                if values.ndim == 1:
                    values = np.broadcast_to(values, (count,) + values.shape)
                sums = values.sum(axis=-1, keepdims=True)
                planes[:, slot, :values.shape[-1]] = np.where(
                    sums > 0, values / np.where(sums > 0, sums, 1.0), 0.0)
        if impossible.any():
            planes[impossible] = 0.0
        self.batch_run_count += 1
        return BatchPosteriors(
            self.variables,
            {v: self.state_names[v] for v in self.variables},
            planes, total)

    # --------------------------------------------------------- serialization
    def __getstate__(self) -> dict:
        """Pickle support: drop the (unpicklable) buffer lock."""
        state = self.__dict__.copy()
        del state["_buffer_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._buffer_lock = threading.Lock()

    def to_bytes(self) -> bytes:
        """Serialize the traced op-list (trace once, ship everywhere).

        The blob captures everything a query needs — pinned CPT planes,
        lowered steps, contraction paths, buffers — so a receiving process
        answers ``run``/``run_batch`` without touching the network or
        re-tracing.  Pair with :meth:`from_bytes`; the durable cache stores
        these keyed by model fingerprint, making a stale program
        unreachable rather than wrong.
        """
        import pickle
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledProgram":
        """Deserialize a program written by :meth:`to_bytes`.

        Raises :class:`~repro.exceptions.PersistError` when the blob does
        not decode to a :class:`CompiledProgram` — callers treat that as a
        cache miss and re-trace.
        """
        import pickle

        from repro.exceptions import PersistError
        try:
            program = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001 - wrapped structurally
            raise PersistError(
                f"compiled-program blob does not deserialize: {error}"
                ) from error
        if not isinstance(program, cls):
            raise PersistError(
                f"compiled-program blob holds a "
                f"{type(program).__name__}, not a CompiledProgram")
        return program


# ----------------------------------------------------------------- compile
def compile_from_engine(engine, evidence_vars, schedule: str
                        ) -> CompiledProgram:
    """Trace ``engine``'s sweep for ``evidence_vars`` into a program.

    Used by the engines' ``compile_posteriors`` methods; ``engine`` is a
    :class:`~repro.bayesnet.inference.variable_elimination.VariableElimination`
    (``schedule="ve"``) or
    :class:`~repro.bayesnet.inference.junction_tree.JunctionTree`
    (``schedule="jt"``).
    """
    if schedule not in SCHEDULES:
        raise InferenceError(
            f"unknown compile schedule {schedule!r}; use one of {SCHEDULES}")
    started = time.perf_counter()
    network = engine.network
    signature = tuple(sorted(dict.fromkeys(evidence_vars)))
    for variable in signature:
        if variable not in network.graph:
            raise InferenceError(
                f"unknown evidence variable {variable!r}")
    builder = _ProgramBuilder(network, signature)
    if schedule == "ve":
        engine._refresh_caches()
        _trace_ve(builder, engine)
    else:
        _trace_jt(builder, engine)
    program = CompiledProgram(network, schedule, builder)
    program.compile_ms = (time.perf_counter() - started) * 1e3
    return program


def compile_posteriors(network: BayesianNetwork,
                       evidence_vars: Sequence[str], *,
                       schedule: str = "jt") -> CompiledProgram:
    """Compile an all-marginals program for one evidence signature.

    Convenience entry point that builds a fresh engine; hold on to an
    engine and call its ``compile_posteriors`` method to share its
    structures (elimination orders, the built tree) across signatures.
    """
    if schedule == "jt":
        from repro.bayesnet.inference.junction_tree import JunctionTree
        return JunctionTree(network).compile_posteriors(evidence_vars)
    if schedule == "ve":
        from repro.bayesnet.inference.variable_elimination import (
            VariableElimination,
        )
        return VariableElimination(network).compile_posteriors(evidence_vars)
    raise InferenceError(
        f"unknown compile schedule {schedule!r}; use one of {SCHEDULES}")
