"""Junction-tree (clique-tree) belief propagation.

Netica, the commercial engine used by the paper, compiles the BBN into a
junction tree and answers every marginal query from the calibrated clique
potentials.  This module reproduces that behaviour: the tree is built once
(moralisation, triangulation with the min-fill heuristic, maximum-spanning
sepset tree), evidence is entered, the tree is calibrated with a single
collect/distribute pass, and every node marginal is then available without
further elimination work.

Calibrations are cached keyed by the evidence signature (not just the most
recent evidence set), and the per-variable marginals read from the calibrated
cliques are memoised alongside each calibration, so population workflows that
revisit the same failing condition pay for calibration exactly once.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor, contract_factors
from repro.bayesnet.inference._evidence_cache import (
    EvidenceCache,
    evidence_key,
    resolve_cache_size,
)
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import ImpossibleEvidenceError, InferenceError

Evidence = Mapping[str, str | int]


class _Clique:
    """A clique node of the junction tree."""

    def __init__(self, index: int, variables: frozenset[str]) -> None:
        self.index = index
        self.variables = variables
        self.neighbours: list[int] = []
        self.potential: DiscreteFactor | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clique({sorted(self.variables)})"


class _Calibration:
    """One calibrated state of the tree: potentials, P(e) and marginal memo."""

    __slots__ = ("evidence", "potentials", "probability", "marginals",
                 "distributions")

    def __init__(self, evidence: dict, potentials: list[DiscreteFactor],
                 probability: float) -> None:
        self.evidence = evidence
        self.potentials = potentials
        self.probability = probability
        self.marginals: dict[str, DiscreteFactor] = {}
        #: ``{state: probability}`` dicts memoised per variable, so repeated
        #: single-marginal queries on an unchanged calibration skip both the
        #: marginalisation and the dict construction.
        self.distributions: dict[str, dict[str, float]] = {}


class JunctionTree:
    """Exact inference through junction-tree calibration.

    Parameters
    ----------
    network:
        A fully specified Bayesian network.

    Attributes
    ----------
    calibration_count:
        Number of collect/distribute calibrations executed so far.  Cache
        hits do not increment it; tests use it to assert the calibrate-once,
        query-many behaviour.
    """

    def __init__(self, network: BayesianNetwork, *,
                 cache_size: int | None = None) -> None:
        network.check_model()
        self.network = network
        self._cardinalities = {node: network.cardinality(node)
                               for node in network.nodes}
        self._state_names = {node: network.state_names(node)
                             for node in network.nodes}
        self._cliques: list[_Clique] = []
        self._sepsets: dict[tuple[int, int], frozenset[str]] = {}
        self._build_tree()
        self._home_clique = {
            node: min((c.index for c in self._cliques if node in c.variables),
                      key=lambda i: len(self._cliques[i].variables))
            for node in network.nodes}
        self.calibration_count = 0
        self._calibrations = EvidenceCache(network, resolve_cache_size(cache_size))
        self._current: _Calibration | None = None

    # ------------------------------------------------------------ construction
    def _build_tree(self) -> None:
        adjacency = self.network.graph.moral_graph()
        cliques = self._triangulate(adjacency)
        self._cliques = [_Clique(i, frozenset(c)) for i, c in enumerate(cliques)]
        self._connect_cliques()

    def _triangulate(self, adjacency: dict[str, set[str]]) -> list[set[str]]:
        """Triangulate the moral graph and return its maximal cliques.

        Uses greedy min-fill elimination; each elimination step produces a
        candidate clique (the node plus its current neighbours), and
        non-maximal candidates are discarded.
        """
        adjacency = {node: set(neighbours) for node, neighbours in adjacency.items()}
        remaining = set(adjacency)
        candidate_cliques: list[set[str]] = []
        while remaining:
            def fill_in(node: str) -> int:
                neighbours = [n for n in adjacency[node] if n in remaining]
                count = 0
                for i, first in enumerate(neighbours):
                    for second in neighbours[i + 1:]:
                        if second not in adjacency[first]:
                            count += 1
                return count

            node = min(sorted(remaining), key=fill_in)
            neighbours = [n for n in adjacency[node] if n in remaining]
            clique = set(neighbours) | {node}
            candidate_cliques.append(clique)
            for i, first in enumerate(neighbours):
                for second in neighbours[i + 1:]:
                    adjacency[first].add(second)
                    adjacency[second].add(first)
            remaining.discard(node)

        maximal: list[set[str]] = []
        for clique in candidate_cliques:
            if not any(clique < other for other in candidate_cliques if other != clique):
                if clique not in maximal:
                    maximal.append(clique)
        return maximal

    def _connect_cliques(self) -> None:
        """Build a maximum-spanning tree over clique intersections (Kruskal)."""
        count = len(self._cliques)
        if count <= 1:
            return
        edges = []
        for i in range(count):
            for j in range(i + 1, count):
                intersection = self._cliques[i].variables & self._cliques[j].variables
                if intersection:
                    edges.append((len(intersection), i, j, intersection))
        edges.sort(key=lambda e: -e[0])

        parent = list(range(count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        added = 0
        for weight, i, j, intersection in edges:
            root_i, root_j = find(i), find(j)
            if root_i != root_j:
                parent[root_i] = root_j
                self._cliques[i].neighbours.append(j)
                self._cliques[j].neighbours.append(i)
                self._sepsets[(i, j)] = frozenset(intersection)
                self._sepsets[(j, i)] = frozenset(intersection)
                added += 1
                if added == count - 1:
                    break

        # A disconnected moral graph yields a forest; join the components with
        # empty sepsets so that a single message-passing pass still works.
        components: dict[int, int] = {}
        for i in range(count):
            components.setdefault(find(i), i)
        representatives = list(components.values())
        for first, second in zip(representatives, representatives[1:]):
            self._cliques[first].neighbours.append(second)
            self._cliques[second].neighbours.append(first)
            self._sepsets[(first, second)] = frozenset()
            self._sepsets[(second, first)] = frozenset()

    # ------------------------------------------------------------- potentials
    def _identity_factor(self, variables: Iterable[str]) -> DiscreteFactor:
        variables = sorted(variables)
        if not variables:
            return DiscreteFactor._from_parts([], [], np.array(1.0), {})
        cards = [self._cardinalities[v] for v in variables]
        names = {v: self._state_names[v] for v in variables}
        return DiscreteFactor._from_parts(variables, cards, np.ones(cards), names)

    def _initial_potentials(self, evidence: Evidence) -> list[DiscreteFactor]:
        assigned: list[list[DiscreteFactor]] = [[] for _ in self._cliques]
        for cpd in self.network.cpds:
            factor = cpd.to_factor().reduce(evidence)
            family = set(cpd.parents) | {cpd.variable}
            home = None
            for clique in self._cliques:
                if family <= clique.variables:
                    home = clique.index
                    break
            if home is None:
                raise InferenceError(
                    f"no clique contains the family of {cpd.variable!r}; "
                    "triangulation is inconsistent")
            assigned[home].append(factor)
        potentials = []
        for index, clique in enumerate(self._cliques):
            # Evidence variables disappear from the reduced CPD factors, and
            # other clique variables may have no assigned CPD factor at all;
            # multiplying by the identity over the unobserved clique scope
            # keeps every non-evidence axis present for querying.
            scope = [v for v in clique.variables if v not in evidence]
            potentials.append(contract_factors(
                [self._identity_factor(scope)] + assigned[index]))
        return potentials

    # -------------------------------------------------------------- calibration
    def calibrate(self, evidence: Evidence | None = None) -> None:
        """Enter ``evidence`` and calibrate the tree with collect/distribute."""
        evidence = dict(evidence or {})
        for variable, state in evidence.items():
            if variable not in self.network.graph:
                raise InferenceError(f"unknown evidence variable {variable!r}")
            names = self._state_names[variable]
            if isinstance(state, str) and state not in names:
                raise InferenceError(
                    f"unknown state {state!r} for evidence variable {variable!r}")
        potentials = self._initial_potentials(evidence)
        count = len(self._cliques)
        if count == 0:
            raise InferenceError("network has no nodes")
        self.calibration_count += 1

        messages: dict[tuple[int, int], DiscreteFactor] = {}

        root = 0
        order = self._dfs_order(root)

        # Collect: leaves towards the root.
        for node in reversed(order):
            parent = self._dfs_parent.get(node)
            if parent is None:
                continue
            messages[(node, parent)] = self._message(
                node, parent, potentials, messages, exclude=parent)

        # Distribute: root towards the leaves.
        for node in order:
            for child in self._cliques[node].neighbours:
                if child == self._dfs_parent.get(node):
                    continue
                messages[(node, child)] = self._message(
                    node, child, potentials, messages, exclude=child)

        calibrated = []
        for clique in self._cliques:
            belief = contract_factors(
                [potentials[clique.index]]
                + [messages[(neighbour, clique.index)]
                   for neighbour in clique.neighbours])
            calibrated.append(belief)

        total = float(calibrated[root].values.sum())
        if not np.isfinite(total):
            raise InferenceError(
                f"non-finite calibration mass {total!r}; the network "
                "contains corrupted (NaN/inf) CPD entries")
        if total <= 0:
            raise ImpossibleEvidenceError(
                "evidence has zero probability under the model; "
                "cannot calibrate the junction tree", evidence=evidence)
        calibration = _Calibration(evidence, calibrated, total)
        self._calibrations.refresh()
        self._calibrations.put(evidence_key(self.network, evidence), calibration)
        self._current = calibration

    def _ensure_calibrated(self, evidence: dict) -> _Calibration:
        """Return the calibration for ``evidence``, computing it if needed.

        Replacing a CPD on the network drops every cached calibration (and
        the current one), so parameter updates recalibrate from live tables.
        """
        if self._calibrations.refresh():
            self._current = None
        if self._current is not None and self._current.evidence == evidence:
            return self._current
        cached = self._calibrations.get(evidence_key(self.network, evidence))
        if cached is not None:
            self._current = cached
            return cached
        self.calibrate(evidence)
        assert self._current is not None
        return self._current

    def _dfs_order(self, root: int) -> list[int]:
        order = []
        self._dfs_parent: dict[int, int | None] = {root: None}
        stack = [root]
        seen = {root}
        while stack:
            node = stack.pop()
            order.append(node)
            for neighbour in self._cliques[node].neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    self._dfs_parent[neighbour] = node
                    stack.append(neighbour)
        return order

    def _message(self, source: int, target: int,
                 potentials: list[DiscreteFactor],
                 messages: dict[tuple[int, int], DiscreteFactor],
                 exclude: int) -> DiscreteFactor:
        incoming = [potentials[source]]
        for neighbour in self._cliques[source].neighbours:
            if neighbour == exclude:
                continue
            incoming.append(messages[(neighbour, source)])
        sepset = self._sepsets[(source, target)]
        return contract_factors(incoming, keep=sepset)

    # ---------------------------------------------------------------- marginals
    def _marginal(self, variable: str, calibration: _Calibration) -> DiscreteFactor:
        """Return the normalised single-variable marginal, memoised."""
        cached = calibration.marginals.get(variable)
        if cached is not None:
            return cached
        potential = calibration.potentials[self._home_clique[variable]]
        extra = [v for v in potential.variables if v != variable]
        marginal = potential.marginalize(extra).normalize()
        calibration.marginals[variable] = marginal
        return marginal

    def _distribution(self, variable: str,
                      calibration: _Calibration) -> dict[str, float]:
        """Return the memoised ``{state: probability}`` dict of a marginal."""
        cached = calibration.distributions.get(variable)
        if cached is None:
            cached = self._marginal(variable, calibration).to_distribution()
            calibration.distributions[variable] = cached
        # Hand out copies: callers may mutate the posterior dicts.
        return dict(cached)

    # ------------------------------------------------------------------ query
    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return the posterior factor of ``variables`` given ``evidence``.

        When all query variables live in one clique the answer comes straight
        from the calibrated potential; otherwise the engine falls back to
        combining calibrated potentials with out-of-clique elimination (exact,
        just slower).
        """
        evidence = dict(evidence or {})
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
            if variable in evidence:
                raise InferenceError(
                    f"variable {variable!r} appears both as query and evidence")
        calibration = self._ensure_calibrated(evidence)

        query_set = set(variables)
        for clique, potential in zip(self._cliques, calibration.potentials):
            if query_set <= clique.variables:
                extra = [v for v in potential.variables if v not in query_set]
                return potential.marginalize(extra).normalize()

        # The query spans several cliques.  Exact joint posteriors across
        # cliques require out-of-clique elimination; delegate to variable
        # elimination, which is exact and handles arbitrary query sets.
        from repro.bayesnet.inference.variable_elimination import VariableElimination

        return VariableElimination(self.network).query(variables, evidence)

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        evidence = dict(evidence or {})
        if variable not in self.network.graph:
            raise InferenceError(f"unknown query variable {variable!r}")
        if variable in evidence:
            raise InferenceError(
                f"variable {variable!r} appears both as query and evidence")
        calibration = self._ensure_calibrated(evidence)
        return self._distribution(variable, calibration)

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return every requested marginal from one calibration of the tree."""
        evidence = dict(evidence or {})
        variables = list(variables)
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
            if variable in evidence:
                raise InferenceError(
                    f"variable {variable!r} appears both as query and evidence")
        calibration = self._ensure_calibrated(evidence)
        return {variable: self._distribution(variable, calibration)
                for variable in variables}

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the most probable joint assignment of ``variables``."""
        return self.query(variables, evidence).argmax()

    def probability_of_evidence(self, evidence: Evidence) -> float:
        """Return ``P(evidence)`` after calibrating on ``evidence``."""
        return self._ensure_calibrated(dict(evidence)).probability

    def compile_posteriors(self, evidence_vars):
        """Trace this tree's calibration into a ``CompiledProgram``.

        The collect/distribute schedule for the evidence-variable set is
        recorded once as a static op-list (pinned CPT gathers, precomputed
        contraction plans, preallocated buffers); the returned program
        answers ``run(evidence)`` / ``run_batch(matrix)`` without
        rebuilding per-query potentials.  See
        :mod:`repro.bayesnet.inference.compiled`.
        """
        from repro.bayesnet.inference.compiled import compile_from_engine
        return compile_from_engine(self, evidence_vars, "jt")

    # ------------------------------------------------------------- inspection
    @property
    def cliques(self) -> list[frozenset[str]]:
        """The variable sets of the junction-tree cliques."""
        return [clique.variables for clique in self._cliques]

    @property
    def tree_width(self) -> int:
        """The induced tree width (largest clique size minus one)."""
        return max(len(clique.variables) for clique in self._cliques) - 1
