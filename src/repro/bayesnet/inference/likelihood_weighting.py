"""Approximate inference by likelihood weighting.

Likelihood weighting forward-samples the non-evidence variables in
topological order and weights each sample by the likelihood of the evidence
under the sampled parents.  It is used in the benchmark harness to compare
cheap approximate posteriors against the exact engines on the voltage
regulator network.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng

Evidence = Mapping[str, str | int]


class LikelihoodWeighting:
    """Likelihood-weighted sampling inference.

    Parameters
    ----------
    network:
        A fully specified network.
    num_samples:
        Number of weighted samples drawn per query.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork, num_samples: int = 5000,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        if num_samples < 1:
            raise InferenceError("num_samples must be at least 1")
        self.network = network
        self.num_samples = int(num_samples)
        self._rng = ensure_rng(seed)
        self._topological_order = network.graph.topological_sort()

    def _state_index(self, variable: str, state: str | int) -> int:
        cpd = self.network.get_cpd(variable)
        if isinstance(state, (int, np.integer)):
            index = int(state)
            if not 0 <= index < cpd.cardinality:
                raise InferenceError(
                    f"state index {index} out of range for {variable!r}")
            return index
        names = cpd.state_names[variable]
        if str(state) not in names:
            raise InferenceError(
                f"unknown state {state!r} for variable {variable!r}")
        return names.index(str(state))

    def _sample_once(self, evidence: dict[str, int]) -> tuple[dict[str, int], float]:
        sample: dict[str, int] = {}
        weight = 1.0
        for node in self._topological_order:
            cpd = self.network.get_cpd(node)
            parent_assignment = {p: sample[p] for p in cpd.parents}
            column = cpd.parent_configuration_index(parent_assignment)
            distribution = cpd.table[:, column]
            if node in evidence:
                index = evidence[node]
                sample[node] = index
                weight *= float(distribution[index])
            else:
                index = int(self._rng.choice(len(distribution), p=distribution))
                sample[node] = index
        return sample, weight

    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return an estimate of the posterior factor of ``variables``."""
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        evidence = dict(evidence or {})
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
            if variable in evidence:
                raise InferenceError(
                    f"variable {variable!r} appears both as query and evidence")
        evidence_indices = {variable: self._state_index(variable, state)
                            for variable, state in evidence.items()}

        cards = [self.network.cardinality(v) for v in variables]
        names = {v: self.network.state_names(v) for v in variables}
        counts = np.zeros(cards, dtype=float)
        total_weight = 0.0
        for _ in range(self.num_samples):
            sample, weight = self._sample_once(evidence_indices)
            if weight <= 0:
                continue
            index = tuple(sample[v] for v in variables)
            counts[index] += weight
            total_weight += weight
        if total_weight <= 0:
            raise InferenceError(
                "all samples received zero weight; the evidence is (nearly) "
                "impossible under the model or num_samples is too small")
        return DiscreteFactor(variables, cards, counts / total_weight, names)

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        return self.query([variable], evidence).to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the (independently estimated) marginals of several variables."""
        variables = list(variables)
        evidence = dict(evidence or {})
        # One shared sample set estimates every marginal at once, which keeps
        # the estimates mutually consistent and costs a single pass.
        joint = self.query(variables, evidence) if len(variables) <= 6 else None
        if joint is not None:
            return {variable: joint.marginalize(
                [v for v in variables if v != variable]).to_distribution()
                for variable in variables}
        return {variable: self.posterior(variable, evidence)
                for variable in variables}

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the (estimated) most probable joint assignment of ``variables``."""
        return self.query(variables, evidence).argmax()
