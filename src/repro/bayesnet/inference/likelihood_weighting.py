"""Approximate inference by likelihood weighting.

Likelihood weighting forward-samples the non-evidence variables in
topological order and weights each sample by the likelihood of the evidence
under the sampled parents.  It is used in the benchmark harness to compare
cheap approximate posteriors against the exact engines on the voltage
regulator network.

The sampler is vectorised: all ``num_samples`` particles advance through the
topological order together as integer state arrays, with the per-node CPT
lookups and the evidence weights computed by row-indexed numpy gathers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.sampling import CompiledSampler, state_to_index
from repro.exceptions import ImpossibleEvidenceError, InferenceError
from repro.utils.rng import ensure_rng

Evidence = Mapping[str, str | int]


class LikelihoodWeighting(CompiledSampler):
    """Likelihood-weighted sampling inference.

    Parameters
    ----------
    network:
        A fully specified network.
    num_samples:
        Number of weighted samples drawn per query.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork, num_samples: int = 5000,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        if num_samples < 1:
            raise InferenceError("num_samples must be at least 1")
        self._init_compiled(network)
        self.num_samples = int(num_samples)
        self._rng = ensure_rng(seed)
        self._topological_order = network.graph.topological_sort()
        #: Effective sample size of the most recent query's weight population,
        #: ``(sum w)^2 / sum w^2``; serving layers read it as a confidence
        #: signal on degraded (sampled) posteriors.
        self.last_effective_sample_size: float | None = None

    def _finish_weights(self, weights: np.ndarray,
                        evidence: Mapping) -> float:
        """Validate the weight population and record its effective size."""
        total_weight = float(weights.sum())
        if not np.isfinite(total_weight):
            raise InferenceError(
                f"non-finite sample weights (sum {total_weight!r}); the "
                "network contains corrupted (NaN/inf) CPD entries")
        if total_weight <= 0:
            self.last_effective_sample_size = 0.0
            raise ImpossibleEvidenceError(
                "all samples received zero weight; the evidence is (nearly) "
                "impossible under the model or num_samples is too small",
                evidence=dict(evidence))
        self.last_effective_sample_size = float(
            total_weight ** 2 / float((weights ** 2).sum()))
        return total_weight

    def _state_index(self, variable: str, state: str | int) -> int:
        return state_to_index(self.network, variable, state)

    def _sample_batch(self, evidence: Mapping[str, int]
                      ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Draw the whole particle population in one vectorised pass.

        Returns ``({variable: int state array}, weight array)``.
        """
        self._refresh_tables()
        count = self.num_samples
        states: dict[str, np.ndarray] = {}
        weights = np.ones(count, dtype=float)
        for node in self._topological_order:
            compiled = self._compiled[node]
            columns = compiled.columns(states, count)
            if node in evidence:
                index = evidence[node]
                states[node] = np.full(count, index, dtype=np.intp)
                weights *= compiled.table_t[columns, index]
            else:
                states[node] = compiled.draw(columns, self._rng)
        return states, weights

    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return an estimate of the posterior factor of ``variables``."""
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        evidence = dict(evidence or {})
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
            if variable in evidence:
                raise InferenceError(
                    f"variable {variable!r} appears both as query and evidence")
        evidence_indices = {variable: self._state_index(variable, state)
                            for variable, state in evidence.items()}

        cards = [self.network.cardinality(v) for v in variables]
        names = {v: self.network.state_names(v) for v in variables}
        states, weights = self._sample_batch(evidence_indices)
        total_weight = self._finish_weights(weights, evidence)
        flat = np.zeros(int(np.prod(cards)), dtype=float)
        indices = states[variables[0]]
        for variable, card in zip(variables[1:], cards[1:]):
            indices = indices * card + states[variable]
        np.add.at(flat, indices, weights)
        counts = flat.reshape(cards)
        return DiscreteFactor(variables, cards, counts / total_weight, names)

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        return self.query([variable], evidence).to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginals of several variables from one shared sample set."""
        variables = list(variables)
        evidence = dict(evidence or {})
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
            if variable in evidence:
                raise InferenceError(
                    f"variable {variable!r} appears both as query and evidence")
        evidence_indices = {variable: self._state_index(variable, state)
                            for variable, state in evidence.items()}
        states, weights = self._sample_batch(evidence_indices)
        total_weight = self._finish_weights(weights, evidence)
        result: dict[str, dict[str, float]] = {}
        for variable in variables:
            card = self.network.cardinality(variable)
            counts = np.bincount(states[variable], weights=weights,
                                 minlength=card)
            names = self.network.state_names(variable)
            result[variable] = {name: float(count / total_weight)
                                for name, count in zip(names, counts)}
        return result

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the (estimated) most probable joint assignment of ``variables``."""
        return self.query(variables, evidence).argmax()
