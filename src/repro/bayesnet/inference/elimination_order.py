"""Heuristics for choosing variable-elimination orderings.

Exact inference cost is driven by the size of the intermediate factors, which
in turn is driven by the order in which variables are summed out.  Three
classical greedy heuristics are provided; ``min_fill`` is the default used by
:class:`~repro.bayesnet.inference.variable_elimination.VariableElimination`
and by junction-tree construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.bayesnet.network import BayesianNetwork


def _interaction_graph(network: BayesianNetwork) -> dict[str, set[str]]:
    """Return the moralised (interaction) graph of the network."""
    return network.graph.moral_graph()


def _eliminate_node(adjacency: dict[str, set[str]], node: str) -> None:
    """Remove ``node`` from ``adjacency``, connecting its neighbours pairwise."""
    neighbours = adjacency.pop(node)
    for neighbour in neighbours:
        adjacency[neighbour].discard(node)
    neighbours = list(neighbours)
    for i, first in enumerate(neighbours):
        for second in neighbours[i + 1:]:
            adjacency[first].add(second)
            adjacency[second].add(first)


def _fill_in_count(adjacency: Mapping[str, set[str]], node: str) -> int:
    """Return how many new edges eliminating ``node`` would add."""
    neighbours = list(adjacency[node])
    count = 0
    for i, first in enumerate(neighbours):
        for second in neighbours[i + 1:]:
            if second not in adjacency[first]:
                count += 1
    return count


def _cluster_weight(adjacency: Mapping[str, set[str]], node: str,
                    cardinalities: Mapping[str, int]) -> int:
    """Return the state-space size of the cluster formed by eliminating ``node``."""
    weight = cardinalities[node]
    for neighbour in adjacency[node]:
        weight *= cardinalities[neighbour]
    return weight


def _greedy_order(network: BayesianNetwork, to_eliminate: Iterable[str],
                  cost) -> list[str]:
    adjacency = _interaction_graph(network)
    remaining = set(to_eliminate)
    order: list[str] = []
    while remaining:
        best = min(sorted(remaining), key=lambda node: cost(adjacency, node))
        order.append(best)
        remaining.discard(best)
        _eliminate_node(adjacency, best)
    return order


def min_fill_order(network: BayesianNetwork,
                   to_eliminate: Iterable[str] | None = None) -> list[str]:
    """Greedy ordering that minimises the number of fill-in edges at each step."""
    if to_eliminate is None:
        to_eliminate = network.nodes
    return _greedy_order(network, to_eliminate, _fill_in_count)


def min_degree_order(network: BayesianNetwork,
                     to_eliminate: Iterable[str] | None = None) -> list[str]:
    """Greedy ordering that eliminates the lowest-degree node at each step."""
    if to_eliminate is None:
        to_eliminate = network.nodes
    return _greedy_order(network, to_eliminate,
                         lambda adjacency, node: len(adjacency[node]))


def min_weight_order(network: BayesianNetwork,
                     to_eliminate: Iterable[str] | None = None) -> list[str]:
    """Greedy ordering that minimises the created cluster's state-space size."""
    if to_eliminate is None:
        to_eliminate = network.nodes
    cardinalities = {node: network.cardinality(node) for node in network.nodes}
    return _greedy_order(
        network, to_eliminate,
        lambda adjacency, node: _cluster_weight(adjacency, node, cardinalities))
