"""Approximate inference by Gibbs sampling.

Gibbs sampling resamples each non-evidence variable from its full conditional
given the current state of its Markov blanket.  It is included as a second
approximate engine for the inference-engine comparison benchmark and as a
cross-check of the exact engines on larger synthetic networks.

The implementation is vectorised: ``chains`` independent chains advance in
lock-step, and each per-node resampling step computes the full conditionals
of every chain at once with row-indexed CPT gathers (no per-sample Python
loops).  Retained samples are drawn round-robin across the chains after each
chain's burn-in, which also improves mixing over a single long chain.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.sampling import CompiledSampler, state_to_index
from repro.exceptions import ImpossibleEvidenceError, InferenceError
from repro.utils.rng import ensure_rng

Evidence = Mapping[str, str | int]


class GibbsSampling(CompiledSampler):
    """Gibbs-sampling inference over a discrete Bayesian network.

    Parameters
    ----------
    network:
        A fully specified network.
    num_samples:
        Number of retained samples per query (after burn-in and thinning),
        pooled across all chains.
    burn_in:
        Number of initial sweeps discarded (per chain).
    thin:
        Keep one sample every ``thin`` sweeps.
    chains:
        Number of chains advanced in lock-step; the vectorisation batch size.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork, num_samples: int = 2000,
                 burn_in: int = 200, thin: int = 2,
                 chains: int = 16,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        if num_samples < 1:
            raise InferenceError("num_samples must be at least 1")
        if burn_in < 0 or thin < 1:
            raise InferenceError("burn_in must be >= 0 and thin >= 1")
        if chains < 1:
            raise InferenceError("chains must be at least 1")
        self._init_compiled(network)
        self.num_samples = int(num_samples)
        self.burn_in = int(burn_in)
        self.thin = int(thin)
        self.chains = min(int(chains), self.num_samples)
        self._rng = ensure_rng(seed)
        self._order = network.graph.topological_sort()
        self._build_child_strides()

    def _build_child_strides(self) -> None:
        # Per node: its children with the stride of this node inside each
        # child's parent-configuration index, for vectorised conditionals.
        self._child_strides: dict[str, list[tuple[str, int]]] = {}
        for node in self._order:
            entries = []
            for child in self.network.children(node):
                child_cpd = self.network.get_cpd(child)
                position = child_cpd.parents.index(node)
                entries.append((child, self._compiled[child].strides[position]))
            self._child_strides[node] = entries

    def _recompile(self) -> None:
        super()._recompile()
        self._build_child_strides()

    def _state_index(self, variable: str, state: str | int) -> int:
        return state_to_index(self.network, variable, state)

    # ---------------------------------------------------------- vectorised core
    def _initial_states(self, evidence: Mapping[str, int],
                        count: int) -> dict[str, np.ndarray]:
        """Forward-sample ``count`` chains with the evidence clamped."""
        states: dict[str, np.ndarray] = {}
        for node in self._order:
            compiled = self._compiled[node]
            if node in evidence:
                states[node] = np.full(count, evidence[node], dtype=np.intp)
                continue
            columns = compiled.columns(states, count)
            states[node] = compiled.draw(columns, self._rng)
        return states

    def _conditionals(self, node: str,
                      states: Mapping[str, np.ndarray]) -> np.ndarray:
        """Return the unnormalised full conditionals, one row per chain."""
        compiled = self._compiled[node]
        count = len(next(iter(states.values())))
        columns = compiled.columns(states, count)
        probabilities = compiled.table_t[columns].copy()
        candidates = np.arange(compiled.cardinality, dtype=np.intp)
        for child, stride in self._child_strides[node]:
            child_compiled = self._compiled[child]
            base = child_compiled.columns(states, count) - states[node] * stride
            child_columns = base[:, None] + candidates[None, :] * stride
            probabilities *= child_compiled.table_t[
                child_columns, states[child][:, None]]
        return probabilities

    def _resample_node(self, node: str, states: dict[str, np.ndarray],
                       evidence: Mapping[str, int]) -> None:
        probabilities = self._conditionals(node, states)
        totals = probabilities.sum(axis=1)
        dead = np.flatnonzero(totals <= 0)
        if len(dead):
            # Those chains reached a configuration inconsistent with the
            # evidence; restart them from fresh forward samples.
            fresh = self._initial_states(evidence, len(dead))
            for variable in self._order:
                states[variable][dead] = fresh[variable]
            probabilities[dead] = self._conditionals(
                node, {v: s[dead] for v, s in states.items()})
            totals = probabilities.sum(axis=1)
            if np.any(totals <= 0):
                raise ImpossibleEvidenceError(
                    f"cannot resample {node!r}: all conditional "
                    "probabilities are zero; the evidence is (nearly) "
                    "impossible under the model", evidence=dict(evidence))
        if not np.all(np.isfinite(totals)):
            raise InferenceError(
                f"non-finite conditional mass while resampling {node!r}; "
                "the network contains corrupted (NaN/inf) CPD entries")
        cumulative = np.cumsum(probabilities, axis=1)
        uniforms = self._rng.random(len(totals)) * totals
        drawn = (cumulative < uniforms[:, None]).sum(axis=1)
        states[node] = np.minimum(drawn, probabilities.shape[1] - 1).astype(np.intp)

    def _has_feasible_chain(self, states: Mapping[str, np.ndarray],
                            count: int) -> bool:
        """Return whether any chain starts at nonzero clamped joint probability.

        A deterministic-zero evidence factor need not touch any free node's
        Markov blanket, so the per-node conditional check alone cannot see
        global impossibility; the clamped joint probability of the
        forward-sampled chains is the tell.  Consumes no RNG.
        """
        joint = np.ones(count, dtype=float)
        for node in self._order:
            compiled = self._compiled[node]
            columns = compiled.columns(states, count)
            joint *= compiled.table_t[columns, states[node]]
        if not np.all(np.isfinite(joint)):
            raise InferenceError(
                "non-finite chain probability; the network contains "
                "corrupted (NaN/inf) CPD entries")
        return bool(np.any(joint > 0.0))

    def sample_states(self, evidence: Evidence | None = None
                      ) -> dict[str, np.ndarray]:
        """Return retained samples as ``{variable: int state array}``.

        The arrays have length ``num_samples``; retained sweeps contribute
        one sample per chain (round-robin) after each chain's burn-in.
        """
        self._refresh_tables()
        evidence_indices = {variable: self._state_index(variable, state)
                            for variable, state in (evidence or {}).items()}
        for variable in evidence_indices:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown evidence variable {variable!r}")
        chains = self.chains
        states = self._initial_states(evidence_indices, chains)
        # Truly-impossible evidence keeps every redraw at joint probability
        # zero; possible-but-unlucky starts are fixed by a redraw almost
        # surely.  Valid first draws consume no extra RNG.
        for _ in range(5):
            if self._has_feasible_chain(states, chains):
                break
            states = self._initial_states(evidence_indices, chains)
        else:
            raise ImpossibleEvidenceError(
                "every initial chain has zero probability under the clamped "
                "evidence; the evidence is impossible under the model",
                evidence=dict(evidence or {}))
        free = [node for node in self._order if node not in evidence_indices]
        kept: dict[str, list[np.ndarray]] = {node: [] for node in self._order}
        retained = 0
        sweep = 0
        while retained < self.num_samples:
            for node in free:
                self._resample_node(node, states, evidence_indices)
            if sweep >= self.burn_in and (sweep - self.burn_in) % self.thin == 0:
                take = min(chains, self.num_samples - retained)
                for node in self._order:
                    kept[node].append(states[node][:take].copy())
                retained += take
            sweep += 1
        return {node: np.concatenate(kept[node]) for node in self._order}

    def sample(self, evidence: Evidence | None = None) -> list[dict[str, int]]:
        """Return retained Gibbs samples as state-index assignments."""
        states = self.sample_states(evidence)
        return [{node: int(states[node][row]) for node in self._order}
                for row in range(self.num_samples)]

    # ----------------------------------------------------------------- queries
    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return an estimate of the posterior factor of ``variables``."""
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
        states = self.sample_states(evidence)
        cards = [self.network.cardinality(v) for v in variables]
        names = {v: self.network.state_names(v) for v in variables}
        indices = states[variables[0]]
        for variable, card in zip(variables[1:], cards[1:]):
            indices = indices * card + states[variable]
        flat = np.bincount(indices, minlength=int(np.prod(cards))).astype(float)
        counts = flat.reshape(cards)
        return DiscreteFactor(variables, cards, counts / counts.sum(), names)

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        return self.query([variable], evidence).to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginal posterior estimate of each variable."""
        variables = list(variables)
        states = self.sample_states(evidence)
        result: dict[str, dict[str, float]] = {}
        for variable in variables:
            card = self.network.cardinality(variable)
            counts = np.bincount(states[variable], minlength=card).astype(float)
            names = self.network.state_names(variable)
            total = counts.sum()
            result[variable] = {name: float(count / total)
                                for name, count in zip(names, counts)}
        return result
