"""Approximate inference by Gibbs sampling.

Gibbs sampling resamples each non-evidence variable from its full conditional
given the current state of its Markov blanket.  It is included as a second
approximate engine for the inference-engine comparison benchmark and as a
cross-check of the exact engines on larger synthetic networks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng

Evidence = Mapping[str, str | int]


class GibbsSampling:
    """Gibbs-sampling inference over a discrete Bayesian network.

    Parameters
    ----------
    network:
        A fully specified network.
    num_samples:
        Number of retained samples per query (after burn-in and thinning).
    burn_in:
        Number of initial sweeps discarded.
    thin:
        Keep one sample every ``thin`` sweeps.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, network: BayesianNetwork, num_samples: int = 2000,
                 burn_in: int = 200, thin: int = 2,
                 seed: int | np.random.Generator | None = None) -> None:
        network.check_model()
        if num_samples < 1:
            raise InferenceError("num_samples must be at least 1")
        if burn_in < 0 or thin < 1:
            raise InferenceError("burn_in must be >= 0 and thin >= 1")
        self.network = network
        self.num_samples = int(num_samples)
        self.burn_in = int(burn_in)
        self.thin = int(thin)
        self._rng = ensure_rng(seed)
        self._order = network.graph.topological_sort()

    def _state_index(self, variable: str, state: str | int) -> int:
        cpd = self.network.get_cpd(variable)
        if isinstance(state, (int, np.integer)):
            return int(state)
        names = cpd.state_names[variable]
        if str(state) not in names:
            raise InferenceError(
                f"unknown state {state!r} for variable {variable!r}")
        return names.index(str(state))

    def _full_conditional(self, variable: str,
                          assignment: dict[str, int]) -> np.ndarray:
        """Return the unnormalised full conditional of ``variable``."""
        cpd = self.network.get_cpd(variable)
        column = cpd.parent_configuration_index(
            {p: assignment[p] for p in cpd.parents})
        probabilities = cpd.table[:, column].copy()
        for child in self.network.children(variable):
            child_cpd = self.network.get_cpd(child)
            child_state = assignment[child]
            for candidate in range(cpd.cardinality):
                parent_assignment = {p: assignment[p] for p in child_cpd.parents}
                parent_assignment[variable] = candidate
                child_column = child_cpd.parent_configuration_index(parent_assignment)
                probabilities[candidate] *= child_cpd.table[child_state, child_column]
        return probabilities

    def _initial_state(self, evidence: dict[str, int]) -> dict[str, int]:
        assignment: dict[str, int] = {}
        for node in self._order:
            if node in evidence:
                assignment[node] = evidence[node]
                continue
            cpd = self.network.get_cpd(node)
            column = cpd.parent_configuration_index(
                {p: assignment[p] for p in cpd.parents})
            distribution = cpd.table[:, column]
            assignment[node] = int(self._rng.choice(len(distribution), p=distribution))
        return assignment

    def sample(self, evidence: Evidence | None = None) -> list[dict[str, int]]:
        """Return retained Gibbs samples as state-index assignments."""
        evidence_indices = {variable: self._state_index(variable, state)
                            for variable, state in (evidence or {}).items()}
        for variable in evidence_indices:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown evidence variable {variable!r}")
        assignment = self._initial_state(evidence_indices)
        free = [node for node in self._order if node not in evidence_indices]
        samples: list[dict[str, int]] = []
        total_sweeps = self.burn_in + self.num_samples * self.thin
        for sweep in range(total_sweeps):
            for node in free:
                probabilities = self._full_conditional(node, assignment)
                total = probabilities.sum()
                if total <= 0:
                    # The current configuration is inconsistent with the
                    # evidence; restart from a fresh forward sample.
                    assignment = self._initial_state(evidence_indices)
                    probabilities = self._full_conditional(node, assignment)
                    total = probabilities.sum()
                    if total <= 0:
                        raise InferenceError(
                            f"cannot resample {node!r}: all conditional "
                            "probabilities are zero")
                assignment[node] = int(
                    self._rng.choice(len(probabilities), p=probabilities / total))
            if sweep >= self.burn_in and (sweep - self.burn_in) % self.thin == 0:
                samples.append(dict(assignment))
        return samples

    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return an estimate of the posterior factor of ``variables``."""
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
        samples = self.sample(evidence)
        cards = [self.network.cardinality(v) for v in variables]
        names = {v: self.network.state_names(v) for v in variables}
        counts = np.zeros(cards, dtype=float)
        for sample in samples:
            counts[tuple(sample[v] for v in variables)] += 1.0
        return DiscreteFactor(variables, cards, counts / counts.sum(), names)

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        return self.query([variable], evidence).to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginal posterior estimate of each variable."""
        variables = list(variables)
        samples = self.sample(evidence)
        result: dict[str, dict[str, float]] = {}
        for variable in variables:
            card = self.network.cardinality(variable)
            counts = np.zeros(card, dtype=float)
            for sample in samples:
                counts[sample[variable]] += 1.0
            names = self.network.state_names(variable)
            total = counts.sum()
            result[variable] = {name: float(c / total)
                                for name, c in zip(names, counts)}
        return result
