"""Exact inference by variable elimination.

This is the default inference engine of the diagnosis stack: the voltage
regulator network of the paper has 19 nodes with at most five states, which
variable elimination answers in well under a millisecond per query.

The hot path of diagnosis is *all-marginals* queries: every case asks for the
posterior of every model variable.  Answering those one elimination per
variable repeats almost all of the work, so :meth:`VariableElimination.posteriors`
runs a single shared-bucket sweep instead — a forward bucket-elimination pass
followed by a backward message pass over the implied bucket tree — which
yields every marginal at roughly the cost of one elimination.  The result is
cached keyed by the evidence signature, making repeated queries on the same
case near-free.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor, contract_factors
from repro.bayesnet.inference._evidence_cache import (
    EvidenceCache,
    evidence_key,
    resolve_cache_size,
)
from repro.bayesnet.inference.elimination_order import min_fill_order
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import ImpossibleEvidenceError, InferenceError

Evidence = Mapping[str, str | int]


class VariableElimination:
    """Sum-product variable elimination on a :class:`BayesianNetwork`.

    Parameters
    ----------
    network:
        A fully specified network (``check_model()`` must pass).
    elimination_order:
        Optional callable ``(network, to_eliminate) -> list`` used to pick the
        elimination order; defaults to the min-fill heuristic.

    Attributes
    ----------
    sweep_count:
        Number of full elimination sweeps executed so far (one per
        :meth:`query` call and one per uncached all-marginals pass).  Cache
        hits do not increment it; tests use it to assert the single-pass
        behaviour.
    """

    def __init__(self, network: BayesianNetwork, elimination_order=None, *,
                 cache_size: int | None = None) -> None:
        network.check_model()
        self.network = network
        self._order_heuristic = elimination_order or min_fill_order
        self.sweep_count = 0
        capacity = resolve_cache_size(cache_size)
        self._marginal_cache = EvidenceCache(network, capacity)
        self._probability_cache = EvidenceCache(network, capacity)
        # Elimination orders depend only on the (immutable) structure, so one
        # entry per free-variable set never goes stale; the base factor list
        # tracks CPD replacement through the evidence-cache refresh.
        self._order_cache: dict[frozenset, list[str]] = {}
        self._base_factors: list[DiscreteFactor] | None = None

    # ---------------------------------------------------------------- caching
    def _refresh_caches(self) -> None:
        # Both caches invalidate on the same trigger (CPD replacement), so
        # the probability cache only needs a refresh when the marginal cache
        # just detected one — no second signature scan on the hot path.
        if self._marginal_cache.refresh():
            self._base_factors = None
            self._probability_cache.refresh()

    def _factors(self) -> list[DiscreteFactor]:
        if self._base_factors is None:
            self._base_factors = self.network.to_factors()
        return self._base_factors

    def _elimination_order(self, to_eliminate: Sequence[str]) -> list[str]:
        """Return the memoised elimination order for one free-variable set.

        Cache misses run the (expensive) greedy heuristic once per distinct
        set of variables to eliminate; the typical diagnosis workload asks
        for the same set — all non-evidence variables of the standard test
        program — for every case, so this turns the per-sweep heuristic cost
        into a dictionary lookup.
        """
        key = frozenset(to_eliminate)
        order = self._order_cache.get(key)
        if order is None:
            order = self._order_heuristic(self.network, to_eliminate)
            self._order_cache[key] = order
        return order

    # ----------------------------------------------------------------- checks
    def _validate(self, variables: Sequence[str], evidence: Evidence) -> None:
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
        for variable, state in evidence.items():
            if variable not in self.network.graph:
                raise InferenceError(f"unknown evidence variable {variable!r}")
            cpd = self.network.get_cpd(variable)
            names = cpd.state_names[variable]
            if isinstance(state, str) and state not in names:
                raise InferenceError(
                    f"unknown state {state!r} for evidence variable {variable!r}; "
                    f"known states: {names}")
            if isinstance(state, int) and not 0 <= state < cpd.cardinality:
                raise InferenceError(
                    f"state index {state} out of range for evidence variable "
                    f"{variable!r}")
        overlap = set(variables) & set(evidence)
        if overlap:
            raise InferenceError(
                f"variables {sorted(overlap)} appear both as query and evidence")

    # ------------------------------------------------------------------ query
    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return the joint posterior factor of ``variables`` given ``evidence``."""
        evidence = dict(evidence or {})
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        self._validate(variables, evidence)

        self._refresh_caches()
        factors = [factor.reduce(evidence) if evidence else factor
                   for factor in self._factors()]
        keep = set(variables)
        to_eliminate = [node for node in self.network.nodes
                        if node not in keep and node not in evidence]
        order = self._elimination_order(to_eliminate)
        self.sweep_count += 1

        working = list(factors)
        for node in order:
            involved = [f for f in working if node in f._axes]
            if not involved:
                continue
            working = [f for f in working if node not in f._axes]
            working.append(contract_factors(
                involved, keep=[v for f in involved for v in f.variables
                                if v != node]))

        result = contract_factors(working, keep=keep)
        total = float(result.values.sum())
        if not total > 0.0 or not np.isfinite(total):
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return result.normalize()

    # ------------------------------------------------------- all-marginal sweep
    def _all_marginals(self, evidence: Evidence
                       ) -> tuple[dict[str, DiscreteFactor] | None, float]:
        """Return ``({variable: normalised marginal}, P(evidence))``.

        All non-evidence marginals come from ONE shared-bucket sweep: a
        forward bucket-elimination pass builds the bucket tree, a backward
        pass sends each bucket the information external to its subtree, and
        the product of a bucket's own potential with its backward message is
        the exact joint over the bucket scope.  Results are cached per
        evidence signature.  Zero-probability evidence yields ``(None, 0.0)``
        (also cached); posterior readers turn that into an error.  Replacing
        a CPD on the network drops the cache, so parameter updates are never
        served stale posteriors.
        """
        self._refresh_caches()
        key = evidence_key(self.network, evidence)
        cached = self._marginal_cache.get(key)
        if cached is not None:
            return cached
        result = self._sweep(dict(evidence))
        self._marginal_cache.put(key, result)
        return result

    def _forward_pass(self, evidence: Mapping) -> tuple:
        """Run the forward bucket-elimination pass once.

        Shared by the full sweep and the forward-only evidence-probability
        path so the two can never diverge.  Returns ``(order, potentials,
        forward, parent, constant)`` where ``constant`` is the accumulated
        scalar mass — equal to ``P(evidence)`` once the pass completes.
        """
        free = [node for node in self.network.nodes if node not in evidence]
        order = self._elimination_order(free)
        position = {variable: i for i, variable in enumerate(order)}
        count = len(order)

        buckets: list[list[DiscreteFactor]] = [[] for _ in range(count)]
        constant = 1.0
        for factor in self._factors():
            if evidence:
                factor = factor.reduce(evidence)
            if factor.variables:
                buckets[min(position[v] for v in factor.variables)].append(factor)
            else:
                constant *= float(factor.values)

        # Forward: eliminate each bucket's variable, route the message to the
        # bucket of its earliest remaining variable, remember the tree edge.
        potentials: list[DiscreteFactor | None] = [None] * count
        forward: list[DiscreteFactor | None] = [None] * count
        parent: list[int | None] = [None] * count
        for i, variable in enumerate(order):
            psi = contract_factors(buckets[i])
            potentials[i] = psi
            message = psi.marginalize([variable])
            forward[i] = message
            if message.variables:
                target = min(position[v] for v in message.variables)
                parent[i] = target
                buckets[target].append(message)
            else:
                constant *= float(message.values)
        return order, potentials, forward, parent, constant

    def _sweep(self, evidence: dict
               ) -> tuple[dict[str, DiscreteFactor] | None, float]:
        self.sweep_count += 1
        order, potentials, forward, parent, constant = self._forward_pass(evidence)
        count = len(order)

        if not np.isfinite(constant):
            raise InferenceError(
                f"non-finite evidence probability {constant!r}; the network "
                "contains corrupted (NaN/inf) CPD entries")
        if constant <= 0.0:
            return None, 0.0

        # Backward: from the roots down, hand every bucket the belief over its
        # forward-message scope divided by that message (Hugin-style), so that
        # psi_i * back_i is the exact unnormalised joint over bucket i's scope.
        back: list[DiscreteFactor | None] = [None] * count
        marginals: dict[str, DiscreteFactor] = {}
        for j in range(count - 1, -1, -1):
            belief = potentials[j]
            if back[j] is not None:
                belief = belief.product(back[j])
            potentials[j] = belief
            marginals[order[j]] = belief.marginalize(
                [v for v in belief.variables if v != order[j]]).normalize()
            # Children appear before j in elimination order; stash their
            # backward messages for when the loop reaches them.
            for i in range(j):
                if parent[i] == j:
                    separator = set(forward[i].variables)
                    back[i] = belief.marginalize(
                        [v for v in belief.variables if v not in separator]
                    ).divide(forward[i])
        return marginals, constant

    # -------------------------------------------------------------- posteriors
    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        evidence = dict(evidence or {})
        self._validate([variable], evidence)
        marginals, _ = self._all_marginals(evidence)
        if marginals is None:
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return marginals[variable].to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginal posterior of each variable from a single sweep."""
        variables = list(variables)
        evidence = dict(evidence or {})
        self._validate(variables, evidence)
        marginals, _ = self._all_marginals(evidence)
        if marginals is None:
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return {variable: marginals[variable].to_distribution()
                for variable in variables}

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the most probable joint assignment of ``variables``."""
        joint = self.query(variables, evidence)
        return joint.argmax()

    def probability_of_evidence(self, evidence: Evidence) -> float:
        """Return ``P(evidence)`` (the data likelihood of the observation).

        Uses a forward-only bucket pass — evidence probability needs no
        backward message pass, which roughly halves the sweep cost of
        likelihood scoring workloads.  Full-sweep results cached for the same
        evidence are reused instead of running a new pass.
        """
        evidence = dict(evidence)
        if not evidence:
            return 1.0
        self._validate([], evidence)
        self._refresh_caches()
        key = evidence_key(self.network, evidence)
        cached_sweep = self._marginal_cache.get(key)
        if cached_sweep is not None:
            return cached_sweep[1]
        cached_probability = self._probability_cache.get(key)
        if cached_probability is not None:
            return cached_probability
        probability = self._forward_constant(evidence)
        self._probability_cache.put(key, probability)
        return probability

    def _forward_constant(self, evidence: Evidence) -> float:
        """Run only the forward bucket pass and return ``P(evidence)``."""
        self.sweep_count += 1
        return self._forward_pass(evidence)[-1]
