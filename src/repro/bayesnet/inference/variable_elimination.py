"""Exact inference by variable elimination.

This is the default inference engine of the diagnosis stack: the voltage
regulator network of the paper has 19 nodes with at most five states, which
variable elimination answers in well under a millisecond per query.

The hot path of diagnosis is *all-marginals* queries: every case asks for the
posterior of every model variable.  Answering those one elimination per
variable repeats almost all of the work, so :meth:`VariableElimination.posteriors`
runs a single shared-bucket sweep instead — a forward bucket-elimination pass
followed by a backward message pass over the implied bucket tree — which
yields every marginal at roughly the cost of one elimination.  The result is
cached keyed by the evidence signature, making repeated queries on the same
case near-free.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor, contract_factors
from repro.bayesnet.inference._evidence_cache import (
    EvidenceCache,
    evidence_key,
    resolve_cache_size,
)
from repro.bayesnet.inference.elimination_order import (
    min_degree_order,
    min_fill_order,
    min_weight_order,
)
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import ImpossibleEvidenceError, InferenceError

Evidence = Mapping[str, str | int]

#: Elimination orders shared across engines.  The greedy heuristics are pure
#: functions of the DAG structure (plus cardinalities for min-weight), so
#: engines over structurally identical networks — e.g. one fresh engine per
#: learned model of the same circuit — reuse each other's orders instead of
#: re-running the O(n^2) heuristic.  Only the module's own heuristics
#: participate; a user-supplied callable may close over anything.
_SHARED_ORDER_HEURISTICS = (min_fill_order, min_degree_order, min_weight_order)
_SHARED_ORDER_CACHE: dict[tuple, list[str]] = {}
_SHARED_ORDER_CACHE_LIMIT = 256

#: Memoised contraction plans for the batched sweeps, keyed by the operands'
#: variable lists and the keep set: the same bucket structure repeats every
#: sweep, so the axis-alignment bookkeeping (transposes, broadcast slots,
#: summed axes) is computed once per contraction shape.
_CONTRACT_PLAN_CACHE: dict[tuple, tuple] = {}


class VariableElimination:
    """Sum-product variable elimination on a :class:`BayesianNetwork`.

    Parameters
    ----------
    network:
        A fully specified network (``check_model()`` must pass).
    elimination_order:
        Optional callable ``(network, to_eliminate) -> list`` used to pick the
        elimination order; defaults to the min-fill heuristic.

    Attributes
    ----------
    sweep_count:
        Number of full elimination sweeps executed so far (one per
        :meth:`query` call and one per uncached all-marginals pass).  Cache
        hits do not increment it; tests use it to assert the single-pass
        behaviour.
    """

    def __init__(self, network: BayesianNetwork, elimination_order=None, *,
                 cache_size: int | None = None) -> None:
        network.check_model()
        self.network = network
        self._order_heuristic = elimination_order or min_fill_order
        self.sweep_count = 0
        capacity = resolve_cache_size(cache_size)
        self._marginal_cache = EvidenceCache(network, capacity)
        self._probability_cache = EvidenceCache(network, capacity)
        # Elimination orders depend only on the (immutable) structure, so one
        # entry per free-variable set never goes stale; the base factor list
        # tracks CPD replacement through the evidence-cache refresh.
        self._order_cache: dict[frozenset, list[str]] = {}
        self._base_factors: list[DiscreteFactor] | None = None
        # Per-variable (state-name set, names, cardinality) entries used by
        # _validate, rebuilt lazily when CPDs are replaced.
        self._schema: dict[str, tuple[frozenset, list[str], int]] = {}
        self._schema_version = -1

    # ---------------------------------------------------------------- caching
    def _refresh_caches(self) -> None:
        # Both caches invalidate on the same trigger (CPD replacement), so
        # the probability cache only needs a refresh when the marginal cache
        # just detected one — no second signature scan on the hot path.
        if self._marginal_cache.refresh():
            self._base_factors = None
            self._probability_cache.refresh()

    def _factors(self) -> list[DiscreteFactor]:
        if self._base_factors is None:
            self._base_factors = self.network.to_factors()
        return self._base_factors

    def _elimination_order(self, to_eliminate: Sequence[str]) -> list[str]:
        """Return the memoised elimination order for one free-variable set.

        Cache misses run the (expensive) greedy heuristic once per distinct
        set of variables to eliminate; the typical diagnosis workload asks
        for the same set — all non-evidence variables of the standard test
        program — for every case, so this turns the per-sweep heuristic cost
        into a dictionary lookup.
        """
        key = frozenset(to_eliminate)
        order = self._order_cache.get(key)
        if order is None:
            shared_key = None
            if self._order_heuristic in _SHARED_ORDER_HEURISTICS:
                graph = self.network.graph
                shared_key = (self._order_heuristic.__name__,
                              tuple(graph.nodes), tuple(graph.edges),
                              tuple(self.network.cardinality(node)
                                    for node in graph.nodes),
                              key)
                order = _SHARED_ORDER_CACHE.get(shared_key)
            if order is None:
                order = self._order_heuristic(self.network, to_eliminate)
                if shared_key is not None:
                    if len(_SHARED_ORDER_CACHE) >= _SHARED_ORDER_CACHE_LIMIT:
                        _SHARED_ORDER_CACHE.clear()
                    _SHARED_ORDER_CACHE[shared_key] = order
            self._order_cache[key] = order
        return order

    # ----------------------------------------------------------------- checks
    def _validation_schema(self) -> dict[str, tuple[frozenset, list[str], int]]:
        """Per-variable ``(state-name set, cardinality)`` lookup for _validate.

        Batched queries validate hundreds of evidence dicts over the same
        handful of variables, so the per-variable CPD walk is done once per
        CPD generation and validation becomes plain dict probes.
        """
        version = self.network.cpd_version
        if self._schema_version != version:
            self._schema = {}
            self._schema_version = version
        return self._schema

    def _validate(self, variables: Sequence[str], evidence: Evidence) -> None:
        schema = self._validation_schema()
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
        for variable, state in evidence.items():
            entry = schema.get(variable)
            if entry is None:
                if variable not in self.network.graph:
                    raise InferenceError(
                        f"unknown evidence variable {variable!r}")
                cpd = self.network.get_cpd(variable)
                names = cpd.state_names[variable]
                entry = (frozenset(names), list(names), cpd.cardinality)
                schema[variable] = entry
            name_set, names, cardinality = entry
            if isinstance(state, str) and state not in name_set:
                raise InferenceError(
                    f"unknown state {state!r} for evidence variable {variable!r}; "
                    f"known states: {names}")
            if isinstance(state, int) and not 0 <= state < cardinality:
                raise InferenceError(
                    f"state index {state} out of range for evidence variable "
                    f"{variable!r}")
        if variables:
            overlap = set(variables) & set(evidence)
            if overlap:
                raise InferenceError(
                    f"variables {sorted(overlap)} appear both as query and "
                    f"evidence")

    # ------------------------------------------------------------------ query
    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return the joint posterior factor of ``variables`` given ``evidence``."""
        evidence = dict(evidence or {})
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        self._validate(variables, evidence)

        self._refresh_caches()
        factors = [factor.reduce(evidence) if evidence else factor
                   for factor in self._factors()]
        keep = set(variables)
        to_eliminate = [node for node in self.network.nodes
                        if node not in keep and node not in evidence]
        order = self._elimination_order(to_eliminate)
        self.sweep_count += 1

        working = list(factors)
        for node in order:
            involved = [f for f in working if node in f._axes]
            if not involved:
                continue
            working = [f for f in working if node not in f._axes]
            working.append(contract_factors(
                involved, keep=[v for f in involved for v in f.variables
                                if v != node]))

        result = contract_factors(working, keep=keep)
        total = float(result.values.sum())
        if not total > 0.0 or not np.isfinite(total):
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return result.normalize()

    # ------------------------------------------------------- all-marginal sweep
    def _all_marginals(self, evidence: Evidence
                       ) -> tuple[dict[str, dict[str, float]] | None, float]:
        """Return ``({variable: {state: probability}}, P(evidence))``.

        All non-evidence marginals come from ONE shared-bucket sweep: a
        forward bucket-elimination pass builds the bucket tree, a backward
        pass sends each bucket the information external to its subtree, and
        the product of a bucket's own potential with its backward message is
        the exact joint over the bucket scope.  The sweep runs through the
        batched array kernel with a single case row, so scalar and batched
        posteriors are bit-for-bit identical (every batched operation is
        elementwise along the case axis).  Results are cached per evidence
        signature.  Zero-probability evidence yields ``(None, 0.0)`` (also
        cached); posterior readers turn that into an error.  Replacing a CPD
        on the network drops the cache, so parameter updates are never
        served stale posteriors.
        """
        self._refresh_caches()
        key = evidence_key(self.network, evidence)
        cached = self._marginal_cache.get(key)
        if cached is not None:
            return cached
        # Callers validated the evidence already (posterior/posteriors).
        ((variables, codes, _),) = self._batch_groups([evidence],
                                                      validated=True)
        marginals, constants = self._sweep_batch(variables, codes)
        distributions = self._batch_distributions(marginals, constants)
        result = (distributions[0],
                  float(constants[0]) if distributions[0] is not None else 0.0)
        self._marginal_cache.put(key, result)
        return result

    # -------------------------------------------------------------- posteriors
    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        evidence = dict(evidence or {})
        self._validate([variable], evidence)
        marginals, _ = self._all_marginals(evidence)
        if marginals is None:
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return dict(marginals[variable])

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginal posterior of each variable from a single sweep."""
        variables = list(variables)
        evidence = dict(evidence or {})
        self._validate(variables, evidence)
        marginals, _ = self._all_marginals(evidence)
        if marginals is None:
            raise ImpossibleEvidenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined", evidence=evidence)
        return {variable: dict(marginals[variable])
                for variable in variables}

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the most probable joint assignment of ``variables``."""
        joint = self.query(variables, evidence)
        return joint.argmax()

    def compile_posteriors(self, evidence_vars):
        """Trace this engine's bucket sweep into a ``CompiledProgram``.

        The shared forward/backward sweep for the evidence-variable set is
        recorded once as a static op-list (pinned CPT gathers, precomputed
        contraction plans, preallocated buffers); the returned program
        answers ``run(evidence)`` / ``run_batch(matrix)`` without
        re-walking the factor graph.  See
        :mod:`repro.bayesnet.inference.compiled`.
        """
        from repro.bayesnet.inference.compiled import compile_from_engine
        return compile_from_engine(self, evidence_vars, "ve")

    def probability_of_evidence(self, evidence: Evidence) -> float:
        """Return ``P(evidence)`` (the data likelihood of the observation).

        Uses a forward-only bucket pass — evidence probability needs no
        backward message pass, which roughly halves the sweep cost of
        likelihood scoring workloads.  Full-sweep results cached for the same
        evidence are reused instead of running a new pass.
        """
        evidence = dict(evidence)
        if not evidence:
            return 1.0
        self._validate([], evidence)
        self._refresh_caches()
        key = evidence_key(self.network, evidence)
        cached_sweep = self._marginal_cache.get(key)
        if cached_sweep is not None:
            return cached_sweep[1]
        cached_probability = self._probability_cache.get(key)
        if cached_probability is not None:
            return cached_probability
        probability = self._forward_constant(evidence)
        self._probability_cache.put(key, probability)
        return probability

    def _forward_constant(self, evidence: Evidence) -> float:
        """Run only the forward bucket pass and return ``P(evidence)``.

        Routed through the batched kernel with a single case row so the
        scalar and batched likelihood paths can never diverge numerically.
        """
        self.sweep_count += 1
        ((variables, codes, _),) = self._batch_groups([evidence],
                                                      validated=True)
        return float(self._forward_pass_batch(variables, codes)[-1][0])

    # ------------------------------------------------------------ batched sweeps
    def posteriors_batch(self, evidence_list: Sequence[Evidence], *,
                         validated: bool = False
                         ) -> list[dict[str, dict[str, float]] | None]:
        """Return every case's all-marginal posteriors from batched sweeps.

        Cases are grouped by their evidence variable set, duplicate evidence
        configurations are deduplicated, and each group runs ONE elimination
        sweep with the case axis carried through every ``einsum`` contraction
        — the population-scoring counterpart of :meth:`posteriors`.  Each
        result slot maps every non-evidence variable to its posterior
        distribution; zero-probability evidence yields ``None`` in that slot
        (callers decide whether that is an error), and non-finite CPD entries
        raise :class:`InferenceError` exactly like the scalar sweep.

        ``validated=True`` skips per-case evidence validation — for callers
        (the batched diagnosis path) that already ran :meth:`_validate` on
        every case to keep failure isolation per slot.
        """
        results: list[dict[str, dict[str, float]] | None] = [None] * len(evidence_list)
        for variables, codes, indices in self._batch_groups(
                evidence_list, validated=validated):
            unique, inverse = np.unique(codes, axis=0, return_inverse=True)
            marginals, constants = self._sweep_batch(variables, unique)
            distributions = self._batch_distributions(marginals, constants)
            for slot, row in zip(indices, inverse):
                results[slot] = distributions[row]
        return results

    def probabilities_of_evidence(self, evidence_list: Sequence[Evidence]
                                  ) -> np.ndarray:
        """Return ``P(evidence)`` for many observations from batched passes.

        The batched counterpart of :meth:`probability_of_evidence`: one
        forward-only bucket pass per distinct evidence variable set, with all
        of that group's unique configurations evaluated along the case axis.
        """
        results = np.ones(len(evidence_list))
        for variables, codes, indices in self._batch_groups(evidence_list):
            if not variables:
                continue
            unique, inverse = np.unique(codes, axis=0, return_inverse=True)
            self.sweep_count += 1
            constants = self._forward_pass_batch(variables, unique)[-1]
            if not np.all(np.isfinite(constants)):
                raise InferenceError(
                    "non-finite evidence probability; the network contains "
                    "corrupted (NaN/inf) CPD entries")
            results[indices] = constants[inverse]
        return results

    def _batch_groups(self, evidence_list: Sequence[Evidence], *,
                      validated: bool = False
                      ) -> list[tuple[list[str], np.ndarray, list[int]]]:
        """Validate and encode cases, grouped by evidence variable set.

        Returns ``(variables, codes, indices)`` triples where ``codes`` is
        the ``(cases, len(variables))`` state-index matrix of the group and
        ``indices`` maps its rows back to ``evidence_list`` slots.
        """
        self._refresh_caches()
        lookups: dict[str, dict[str, int]] = {}
        groups: dict[frozenset, tuple[list[str], list[list[int]], list[int]]] = {}
        for slot, evidence in enumerate(evidence_list):
            evidence = dict(evidence or {})
            if not validated:
                self._validate([], evidence)
            key = frozenset(evidence)
            group = groups.get(key)
            if group is None:
                group = (sorted(evidence), [], [])
                groups[key] = group
            variables, rows, indices = group
            row = []
            for variable in variables:
                state = evidence[variable]
                if isinstance(state, str):
                    lookup = lookups.get(variable)
                    if lookup is None:
                        names = self.network.get_cpd(variable).state_names[variable]
                        lookup = {name: i for i, name in enumerate(names)}
                        lookups[variable] = lookup
                    row.append(lookup[state])
                else:
                    row.append(int(state))
            rows.append(row)
            indices.append(slot)
        return [(variables, np.array(rows, dtype=np.int64).reshape(len(rows),
                                                                   len(variables)),
                 indices)
                for variables, rows, indices in groups.values()]

    def _batch_distributions(self, marginals, constants
                             ) -> list[dict[str, dict[str, float]] | None]:
        """Expand batched marginal arrays into per-case distribution dicts."""
        count = len(constants)
        results: list[dict[str, dict[str, float]] | None] = [None] * count
        names = {variable: self.network.get_cpd(variable).state_names[variable]
                 for variable in marginals}
        for row in range(count):
            if constants[row] <= 0.0:
                continue
            results[row] = {
                variable: dict(zip(names[variable],
                                   (float(p) for p in values[row])))
                for variable, values in marginals.items()}
        return results

    def _reduce_rows(self, factor: DiscreteFactor,
                     columns: Mapping[str, np.ndarray], count: int
                     ) -> tuple[list[str], np.ndarray, bool]:
        """Condition one factor on per-case evidence codes.

        Returns ``(variables, values, batched)`` where ``values`` carries a
        leading case axis iff ``batched`` (the factor mentioned at least one
        evidence variable).
        """
        hit = [v for v in factor.variables if v in columns]
        if not hit:
            return list(factor.variables), factor.values, False
        variables = list(factor.variables)
        values = factor.values
        batched = False
        for variable in hit:
            axis = variables.index(variable) + (1 if batched else 0)
            if batched:
                values = values.transpose(
                    (0, axis) + tuple(a for a in range(1, values.ndim)
                                      if a != axis))
                values = values[np.arange(count), columns[variable]]
            else:
                values = values.take(columns[variable], axis=axis)
                values = values.transpose(
                    (axis,) + tuple(a for a in range(values.ndim)
                                    if a != axis))
                batched = True
            variables.remove(variable)
        return variables, values, batched

    @staticmethod
    def _contract_rows(items: Sequence[tuple[list[str], np.ndarray, bool]],
                       keep: Sequence[str] | None
                       ) -> tuple[list[str], np.ndarray, bool]:
        """Multiply batched/unbatched tables, summing out all but ``keep``.

        The batched analogue of :func:`contract_factors`, specialised for
        the sweep's tiny cluster tables: every operand is broadcast-aligned
        to the union variable order (with the case axis leading when any
        operand carries one), multiplied, and the dropped axes are summed in
        one pass.  For tables this small ``einsum``'s subscript parsing and
        path handling cost more than the arithmetic, so plain broadcasting
        wins.  ``keep=None`` keeps every variable.
        """
        if len(items) == 1:
            variables, values, batched = items[0]
            if keep is None or set(keep) == set(variables):
                return items[0]
            # A lone operand only needs axes summed out — no alignment.
            keep_set = set(keep)
            offset = 1 if batched else 0
            axes = tuple(offset + i for i, v in enumerate(variables)
                         if v not in keep_set)
            return ([v for v in variables if v in keep_set],
                    values.sum(axis=axes), batched)
        key = (tuple((tuple(variables), item_batched)
                     for variables, _, item_batched in items),
               None if keep is None else tuple(keep))
        plan = _CONTRACT_PLAN_CACHE.get(key)
        if plan is None:
            order: list[str] = []
            seen = set()
            batched = False
            for variables, _, item_batched in items:
                batched = batched or item_batched
                for variable in variables:
                    if variable not in seen:
                        seen.add(variable)
                        order.append(variable)
            position = {variable: i for i, variable in enumerate(order)}
            width = len(order)
            aligners: list[tuple[tuple[int, ...] | None, tuple]] = []
            for variables, _, item_batched in items:
                perm = sorted(range(len(variables)),
                              key=lambda i: position[variables[i]])
                if item_batched:
                    transpose: tuple[int, ...] | None = \
                        tuple([0] + [1 + i for i in perm])
                elif perm != list(range(len(variables))):
                    transpose = tuple(perm)
                else:
                    transpose = None
                if item_batched:
                    index: list[object] = [slice(None)]
                elif batched:
                    index = [np.newaxis]
                else:
                    index = []
                present = {position[v] for v in variables}
                index.extend(slice(None) if axis in present else np.newaxis
                             for axis in range(width))
                aligners.append((transpose, tuple(index)))
            if keep is None:
                out_vars = order
                drop: tuple[int, ...] = ()
            else:
                keep_set = set(keep)
                out_vars = [v for v in order if v in keep_set]
                offset = 1 if batched else 0
                drop = tuple(offset + i for i, v in enumerate(order)
                             if v not in keep_set)
            plan = (tuple(out_vars), batched, tuple(aligners), drop)
            if len(_CONTRACT_PLAN_CACHE) >= _SHARED_ORDER_CACHE_LIMIT:
                _CONTRACT_PLAN_CACHE.clear()
            _CONTRACT_PLAN_CACHE[key] = plan
        out_vars, batched, aligners, drop = plan
        result = None
        for (variables, values, item_batched), (transpose, index) in zip(
                items, aligners):
            if transpose is not None:
                values = values.transpose(transpose)
            aligned = values[index]
            result = aligned if result is None else result * aligned
        if drop:
            result = result.sum(axis=drop)
        return list(out_vars), result, batched

    def _forward_pass_batch(self, evidence_vars: Sequence[str],
                            codes: np.ndarray) -> tuple:
        """Batched forward bucket-elimination over ``codes.shape[0]`` cases.

        Mirrors :meth:`_forward_pass` with every bucket entry carrying a
        ``(variables, values, batched)`` table; ``constants`` accumulates to
        the per-case ``P(evidence)`` vector.
        """
        count = codes.shape[0]
        columns = {variable: codes[:, position]
                   for position, variable in enumerate(evidence_vars)}
        free = [node for node in self.network.nodes if node not in columns]
        order = self._elimination_order(free)
        position = {variable: i for i, variable in enumerate(order)}

        buckets: list[list[tuple[list[str], np.ndarray, bool]]] = \
            [[] for _ in order]
        constants = np.ones(count)
        for factor in self._factors():
            variables, values, batched = self._reduce_rows(factor, columns,
                                                           count)
            if variables:
                buckets[min(position[v] for v in variables)].append(
                    (variables, values, batched))
            else:
                constants = constants * values

        potentials: list[tuple | None] = [None] * len(order)
        forward: list[tuple | None] = [None] * len(order)
        parent: list[int | None] = [None] * len(order)
        for i, variable in enumerate(order):
            psi = self._contract_rows(buckets[i], keep=None)
            potentials[i] = psi
            psi_vars, psi_values, psi_batched = psi
            axis = psi_vars.index(variable) + (1 if psi_batched else 0)
            message_vars = [v for v in psi_vars if v != variable]
            message = (message_vars, psi_values.sum(axis=axis), psi_batched)
            forward[i] = message
            if message_vars:
                target = min(position[v] for v in message_vars)
                parent[i] = target
                buckets[target].append(message)
            else:
                constants = constants * message[1]
        return order, potentials, forward, parent, constants

    def _sweep_batch(self, evidence_vars: Sequence[str], codes: np.ndarray
                     ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Run one batched full sweep; return per-case marginal arrays.

        Returns ``({variable: (cases, card) normalised posteriors},
        (cases,) evidence probabilities)``.  Rows with zero evidence
        probability hold unspecified marginal values — callers mask them via
        the constants vector.
        """
        self.sweep_count += 1
        count = codes.shape[0]
        order, potentials, forward, parent, constants = \
            self._forward_pass_batch(evidence_vars, codes)
        if not np.all(np.isfinite(constants)):
            raise InferenceError(
                "non-finite evidence probability; the network contains "
                "corrupted (NaN/inf) CPD entries")

        back: list[tuple | None] = [None] * len(order)
        marginals: dict[str, np.ndarray] = {}
        with np.errstate(divide="ignore", invalid="ignore"):
            for j in range(len(order) - 1, -1, -1):
                belief = potentials[j]
                if back[j] is not None:
                    belief = self._contract_rows([belief, back[j]], keep=None)
                potentials[j] = belief
                variables, values, batched = belief
                marginal = self._contract_rows([belief], keep=[order[j]])[1]
                if not batched:
                    marginal = np.broadcast_to(marginal, (count,) + marginal.shape)
                totals = marginal.sum(axis=-1, keepdims=True)
                marginals[order[j]] = np.where(
                    totals > 0, marginal / np.where(totals > 0, totals, 1.0),
                    0.0)
                for i in range(j):
                    if parent[i] == j:
                        separator = set(forward[i][0])
                        numerator = self._contract_rows(
                            [belief], keep=[v for v in variables
                                            if v in separator])
                        back[i] = self._divide_rows(numerator, forward[i])
        return marginals, constants

    @staticmethod
    def _divide_rows(numerator: tuple, denominator: tuple) -> tuple:
        """Batched factor division with the 0/0-equals-0 convention."""
        num_vars, num_values, num_batched = numerator
        den_vars, den_values, den_batched = denominator
        # Align the denominator's axes to the numerator's variable order.
        axes = [den_vars.index(v) for v in num_vars]
        if den_batched:
            den_values = np.transpose(den_values, [0] + [1 + a for a in axes])
        else:
            den_values = np.transpose(den_values, axes)
            if num_batched:
                den_values = den_values[np.newaxis]
        if den_batched and not num_batched:
            num_values = num_values[np.newaxis]
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(den_values > 0, num_values / den_values, 0.0)
        return list(num_vars), values, num_batched or den_batched
