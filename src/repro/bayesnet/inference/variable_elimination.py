"""Exact inference by variable elimination.

This is the default inference engine of the diagnosis stack: the voltage
regulator network of the paper has 19 nodes with at most five states, which
variable elimination answers in well under a millisecond per query.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.bayesnet.factor import DiscreteFactor, factor_product
from repro.bayesnet.inference.elimination_order import min_fill_order
from repro.bayesnet.network import BayesianNetwork
from repro.exceptions import InferenceError

Evidence = Mapping[str, str | int]


class VariableElimination:
    """Sum-product variable elimination on a :class:`BayesianNetwork`.

    Parameters
    ----------
    network:
        A fully specified network (``check_model()`` must pass).
    elimination_order:
        Optional callable ``(network, to_eliminate) -> list`` used to pick the
        elimination order; defaults to the min-fill heuristic.
    """

    def __init__(self, network: BayesianNetwork, elimination_order=None) -> None:
        network.check_model()
        self.network = network
        self._order_heuristic = elimination_order or min_fill_order

    # ----------------------------------------------------------------- checks
    def _validate(self, variables: Sequence[str], evidence: Evidence) -> None:
        for variable in variables:
            if variable not in self.network.graph:
                raise InferenceError(f"unknown query variable {variable!r}")
        for variable, state in evidence.items():
            if variable not in self.network.graph:
                raise InferenceError(f"unknown evidence variable {variable!r}")
            cpd = self.network.get_cpd(variable)
            names = cpd.state_names[variable]
            if isinstance(state, str) and state not in names:
                raise InferenceError(
                    f"unknown state {state!r} for evidence variable {variable!r}; "
                    f"known states: {names}")
            if isinstance(state, int) and not 0 <= state < cpd.cardinality:
                raise InferenceError(
                    f"state index {state} out of range for evidence variable "
                    f"{variable!r}")
        overlap = set(variables) & set(evidence)
        if overlap:
            raise InferenceError(
                f"variables {sorted(overlap)} appear both as query and evidence")

    # ------------------------------------------------------------------ query
    def query(self, variables: Sequence[str],
              evidence: Evidence | None = None) -> DiscreteFactor:
        """Return the joint posterior factor of ``variables`` given ``evidence``."""
        evidence = dict(evidence or {})
        variables = list(variables)
        if not variables:
            raise InferenceError("query requires at least one variable")
        self._validate(variables, evidence)

        factors = [factor.reduce(evidence) if evidence else factor
                   for factor in self.network.to_factors()]
        keep = set(variables)
        to_eliminate = [node for node in self.network.nodes
                        if node not in keep and node not in evidence]
        order = self._order_heuristic(self.network, to_eliminate)

        working = list(factors)
        for node in order:
            involved = [f for f in working if node in f.variables]
            if not involved:
                continue
            working = [f for f in working if node not in f.variables]
            combined = factor_product(involved).marginalize([node])
            working.append(combined)

        result = factor_product(working)
        # Drop any stray evidence variables that survived as zero-dim axes.
        extra = [v for v in result.variables if v not in keep]
        if extra:
            result = result.marginalize(extra)
        if float(result.values.sum()) <= 0.0:
            raise InferenceError(
                "the evidence has zero probability under the model; "
                "posteriors are undefined")
        return result.normalize()

    def posterior(self, variable: str,
                  evidence: Evidence | None = None) -> dict[str, float]:
        """Return ``P(variable | evidence)`` as ``{state: probability}``."""
        return self.query([variable], evidence).to_distribution()

    def posteriors(self, variables: Iterable[str],
                   evidence: Evidence | None = None) -> dict[str, dict[str, float]]:
        """Return the marginal posterior of each variable independently."""
        return {variable: self.posterior(variable, evidence)
                for variable in variables}

    def map_query(self, variables: Sequence[str],
                  evidence: Evidence | None = None) -> dict[str, str]:
        """Return the most probable joint assignment of ``variables``."""
        joint = self.query(variables, evidence)
        return joint.argmax()

    def probability_of_evidence(self, evidence: Evidence) -> float:
        """Return ``P(evidence)`` (the data likelihood of the observation)."""
        evidence = dict(evidence)
        if not evidence:
            return 1.0
        self._validate([], evidence)
        factors = [factor.reduce(evidence) for factor in self.network.to_factors()]
        to_eliminate = [node for node in self.network.nodes if node not in evidence]
        order = self._order_heuristic(self.network, to_eliminate)
        working = list(factors)
        for node in order:
            involved = [f for f in working if node in f.variables]
            if not involved:
                continue
            working = [f for f in working if node not in f.variables]
            working.append(factor_product(involved).marginalize([node]))
        result = factor_product(working)
        if result.variables:
            result = result.marginalize(result.variables)
        return float(result.values)
