"""Shared evidence-signature and cache machinery for the exact engines.

Both exact engines follow the same compute-once, query-many pattern: a full
sweep (shared-bucket elimination or junction-tree calibration) is cached
keyed by the *evidence signature* — the evidence mapping with every state
normalised to its integer index — and repeated queries on the same failing
condition are answered from the cache.  This module keeps the signature and
LRU semantics identical across the engines, and guards against the one way a
cache can silently lie: replacing a CPD on the underlying network (the
public ``add_cpd`` mutation path) drops every cached sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping

import numpy as np

from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.sampling import cpd_signature
from repro.exceptions import InferenceError

#: Number of evidence signatures whose sweeps/calibrations are kept cached.
DEFAULT_CACHE_SIZE = 128

#: Environment variable overriding the default cache capacity process-wide —
#: the per-worker memory knob for serving fleets that host one engine per
#: process.
CACHE_SIZE_ENV_VAR = "REPRO_EVIDENCE_CACHE_SIZE"


def resolve_cache_size(explicit: int | None = None) -> int:
    """Return the evidence-cache capacity to use.

    Precedence: an ``explicit`` constructor argument, then the
    ``REPRO_EVIDENCE_CACHE_SIZE`` environment variable, then
    :data:`DEFAULT_CACHE_SIZE`.  The capacity must be a positive integer.
    """
    import os

    value = explicit
    if value is None:
        raw = os.environ.get(CACHE_SIZE_ENV_VAR)
        if raw is not None:
            try:
                value = int(raw)
            except ValueError:
                raise InferenceError(
                    f"{CACHE_SIZE_ENV_VAR} must be an integer, "
                    f"got {raw!r}") from None
    if value is None:
        return DEFAULT_CACHE_SIZE
    value = int(value)
    if value < 1:
        raise InferenceError(
            f"evidence cache capacity must be >= 1, got {value}")
    return value


def evidence_key(network: BayesianNetwork,
                 evidence: Mapping[str, str | int]) -> tuple:
    """Return a hashable signature of ``evidence`` with states normalised.

    Raises :class:`InferenceError` for unknown evidence variables or state
    names, so every cached path reports bad evidence the same way the
    uncached engines do.
    """
    items = []
    for variable, state in evidence.items():
        if variable not in network.graph:
            raise InferenceError(f"unknown evidence variable {variable!r}")
        if isinstance(state, (int, np.integer)):
            items.append((variable, int(state)))
        else:
            names = network.get_cpd(variable).state_names[variable]
            try:
                items.append((variable, names.index(str(state))))
            except ValueError:
                raise InferenceError(
                    f"unknown state {state!r} for evidence variable "
                    f"{variable!r}") from None
    return tuple(sorted(items))


class EvidenceCache:
    """A small LRU keyed by evidence signature, dropped on CPD replacement."""

    def __init__(self, network: BayesianNetwork,
                 max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        self._network = network
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._cpd_ids = cpd_signature(network)

    def refresh(self) -> bool:
        """Drop every entry if the network's CPDs were replaced.

        Returns ``True`` when an invalidation happened (callers with
        derived state of their own — compiled tables, current calibration —
        reset it on that signal).
        """
        signature = cpd_signature(self._network)
        if signature == self._cpd_ids:
            return False
        self._entries.clear()
        self._cpd_ids = signature
        return True

    def get(self, key: tuple):
        """Return the cached value for ``key`` (LRU-touched) or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: tuple, value: object) -> None:
        self._entries[key] = value
        if len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
