"""Tabular conditional probability distributions.

The parameter model of the paper (Section III-A.2, Tables III/IV) is a set of
conditional probability tables: for each model variable (child) the
probability of every usable state given each joint state of its parent model
variables.  :class:`TabularCPD` stores such a table, validates it, and can be
converted to a :class:`~repro.bayesnet.factor.DiscreteFactor` for inference.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import math

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.exceptions import CPDError


class TabularCPD:
    """Conditional probability table ``P(variable | parents)``.

    Parameters
    ----------
    variable:
        Name of the child variable.
    cardinality:
        Number of states of the child variable.
    table:
        Array of shape ``(cardinality, prod(parent_cardinalities))``.  Each
        column is the distribution of the child for one joint parent
        configuration; columns must therefore sum to one.  Parent
        configurations are enumerated with the *last* parent varying fastest
        (C order over ``parent_cardinalities``).
    parents:
        Parent variable names (empty for root nodes).
    parent_cardinalities:
        Cardinalities of the parents, aligned with ``parents``.
    state_names:
        Optional ``{variable: [state, ...]}`` for the child and parents.
    """

    def __init__(self, variable: str, cardinality: int,
                 table: Sequence | np.ndarray,
                 parents: Sequence[str] = (),
                 parent_cardinalities: Sequence[int] = (),
                 state_names: Mapping[str, Sequence[str]] | None = None) -> None:
        parents = list(parents)
        parent_cardinalities = [int(c) for c in parent_cardinalities]
        if len(parents) != len(parent_cardinalities):
            raise CPDError("parents and parent_cardinalities must have equal length")
        if variable in parents:
            raise CPDError(f"variable {variable!r} cannot be its own parent")
        cardinality = int(cardinality)
        if cardinality < 1:
            raise CPDError(f"variable {variable!r} needs at least one state")

        array = np.asarray(table, dtype=float)
        expected_cols = math.prod(parent_cardinalities) if parents else 1
        if array.ndim == 1:
            array = array.reshape(cardinality, 1)
        if array.shape != (cardinality, expected_cols):
            raise CPDError(
                f"CPD table for {variable!r} has shape {array.shape}, "
                f"expected {(cardinality, expected_cols)}")
        if np.any(array < 0):
            raise CPDError(f"CPD for {variable!r} contains negative probabilities")
        column_sums = array.sum(axis=0)
        if not np.allclose(column_sums, 1.0, atol=1e-6):
            raise CPDError(
                f"CPD columns for {variable!r} must each sum to 1.0, "
                f"got sums {column_sums}")

        self.variable = variable
        self.cardinality = cardinality
        self.parents = parents
        self.parent_cardinalities = parent_cardinalities
        self.table = array

        state_names = dict(state_names or {})
        self.state_names: dict[str, list[str]] = {}
        all_vars = [variable] + parents
        all_cards = [cardinality] + parent_cardinalities
        for name, card in zip(all_vars, all_cards):
            states = list(state_names.get(name, [str(i) for i in range(card)]))
            if len(states) != card:
                raise CPDError(
                    f"variable {name!r} has {card} states but "
                    f"{len(states)} state names were supplied")
            self.state_names[name] = states

    @classmethod
    def _from_trusted(cls, variable: str, cardinality: int, table: np.ndarray,
                      parents: list[str], parent_cardinalities: list[int],
                      state_names: dict[str, list[str]]) -> "TabularCPD":
        """Construct without validation.

        Callers guarantee ``table`` is a float64 ``(cardinality, columns)``
        array with normalised columns and that ``state_names`` is a complete
        ``{variable and every parent: full name list}`` dict.  Used on the
        estimator hot path, where every table is normalised by construction
        and the ``np.allclose`` column check dominates fit time.
        """
        cpd = cls.__new__(cls)
        cpd.variable = variable
        cpd.cardinality = cardinality
        cpd.parents = parents
        cpd.parent_cardinalities = parent_cardinalities
        cpd.table = table
        cpd.state_names = state_names
        return cpd

    # ----------------------------------------------------------------- export
    def to_factor(self) -> DiscreteFactor:
        """Return the CPD as a factor over ``[variable] + parents``."""
        variables = [self.variable] + self.parents
        cardinalities = [self.cardinality] + self.parent_cardinalities
        # self.table is (child_card, prod(parent_cards)) with the last parent
        # varying fastest, which is exactly C-order over the parent axes.
        # Everything a validated CPD holds is factor-valid, so skip the
        # public constructor's re-checks (engines export factors per sweep).
        values = self.table.reshape(cardinalities)
        return DiscreteFactor._from_parts(
            variables, list(cardinalities), values,
            {name: list(states) for name, states in self.state_names.items()})

    def copy(self) -> "TabularCPD":
        """Return an independent copy of the CPD."""
        return TabularCPD._from_trusted(
            self.variable, self.cardinality, self.table.copy(),
            list(self.parents), list(self.parent_cardinalities),
            {name: list(states) for name, states in self.state_names.items()})

    # ---------------------------------------------------------------- queries
    def parent_configuration_index(self, assignment: Mapping[str, str | int]) -> int:
        """Return the column index for a joint parent assignment."""
        index = 0
        for parent, card in zip(self.parents, self.parent_cardinalities):
            if parent not in assignment:
                raise CPDError(
                    f"assignment is missing parent {parent!r} of {self.variable!r}")
            state = assignment[parent]
            if isinstance(state, (int, np.integer)):
                state_index = int(state)
                if not 0 <= state_index < card:
                    raise CPDError(
                        f"state index {state_index} out of range for parent {parent!r}")
            else:
                try:
                    state_index = self.state_names[parent].index(str(state))
                except ValueError:
                    raise CPDError(
                        f"unknown state {state!r} for parent {parent!r}") from None
            index = index * card + state_index
        return index

    def distribution(self, parent_assignment: Mapping[str, str | int] | None = None
                     ) -> dict[str, float]:
        """Return ``P(variable | parent_assignment)`` as ``{state: probability}``."""
        column = self.parent_configuration_index(parent_assignment or {})
        return {state: float(p)
                for state, p in zip(self.state_names[self.variable],
                                    self.table[:, column])}

    def probability(self, state: str | int,
                    parent_assignment: Mapping[str, str | int] | None = None) -> float:
        """Return ``P(variable = state | parent_assignment)``."""
        column = self.parent_configuration_index(parent_assignment or {})
        if isinstance(state, (int, np.integer)):
            row = int(state)
        else:
            try:
                row = self.state_names[self.variable].index(str(state))
            except ValueError:
                raise CPDError(
                    f"unknown state {state!r} for variable {self.variable!r}") from None
        return float(self.table[row, column])

    def is_close_to(self, other: "TabularCPD", *, atol: float = 1e-8) -> bool:
        """Return ``True`` when both CPDs encode the same distribution."""
        return (self.variable == other.variable
                and self.parents == other.parents
                and self.table.shape == other.table.shape
                and bool(np.allclose(self.table, other.table, atol=atol)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TabularCPD(variable={self.variable!r}, parents={self.parents}, "
                f"cardinality={self.cardinality})")


def uniform_cpd(variable: str, cardinality: int,
                parents: Sequence[str] = (),
                parent_cardinalities: Sequence[int] = (),
                state_names: Mapping[str, Sequence[str]] | None = None) -> TabularCPD:
    """Return a CPD that is uniform over the child's states for every parent configuration."""
    if int(cardinality) < 1:
        raise CPDError(f"variable {variable!r} needs at least one state")
    parents = list(parents)
    parent_cardinalities = [int(c) for c in parent_cardinalities]
    columns = math.prod(parent_cardinalities) if parents else 1
    table = np.full((cardinality, columns), 1.0 / cardinality)
    names = dict(state_names or {})
    resolved = {}
    for name, card in zip([variable] + parents,
                          [int(cardinality)] + parent_cardinalities):
        states = list(names.get(name, [str(i) for i in range(card)]))
        if len(states) != card:
            raise CPDError(
                f"variable {name!r} has {card} states but "
                f"{len(states)} state names were supplied")
        resolved[name] = states
    return TabularCPD._from_trusted(variable, int(cardinality), table, parents,
                                    parent_cardinalities, resolved)


def random_cpd(variable: str, cardinality: int,
               parents: Sequence[str] = (),
               parent_cardinalities: Sequence[int] = (),
               state_names: Mapping[str, Sequence[str]] | None = None,
               rng: np.random.Generator | None = None,
               concentration: float = 1.0) -> TabularCPD:
    """Return a CPD with columns drawn from a symmetric Dirichlet distribution."""
    rng = rng if rng is not None else np.random.default_rng()
    columns = math.prod(parent_cardinalities) if parents else 1
    table = rng.dirichlet([concentration] * cardinality, size=columns).T
    return TabularCPD(variable, cardinality, table, parents,
                      parent_cardinalities, state_names)
