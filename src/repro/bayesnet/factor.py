"""Discrete factors over named variables.

A factor is a non-negative table indexed by the joint states of a set of
variables.  Conditional probability tables, intermediate results of variable
elimination and clique potentials in the junction tree are all factors.  The
implementation stores the table as a dense :class:`numpy.ndarray` with one
axis per variable, in the order of :attr:`DiscreteFactor.variables`.

State names are first-class: the paper's model variables have named states
("Non-Operational", "nominal level", ...), and the diagnostic reports are
expressed in those names, so every factor carries a ``state_names`` mapping.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import FactorError


class DiscreteFactor:
    """A dense discrete factor phi(X1, ..., Xn).

    Parameters
    ----------
    variables:
        Variable names, one per axis of ``values``.
    cardinalities:
        Number of states per variable, aligned with ``variables``.
    values:
        Array (or nested sequence) of non-negative reals whose size equals the
        product of the cardinalities.  It is reshaped to one axis per
        variable.
    state_names:
        Optional ``{variable: [state, ...]}`` mapping.  When omitted, states
        are the stringified integers ``"0" ... "k-1"``.
    """

    def __init__(self, variables: Sequence[str], cardinalities: Sequence[int],
                 values: Sequence | np.ndarray,
                 state_names: Mapping[str, Sequence[str]] | None = None) -> None:
        variables = list(variables)
        cardinalities = [int(c) for c in cardinalities]
        if len(variables) != len(cardinalities):
            raise FactorError("variables and cardinalities must have equal length")
        if len(set(variables)) != len(variables):
            raise FactorError(f"duplicate variables in factor: {variables}")
        for variable, card in zip(variables, cardinalities):
            if card < 1:
                raise FactorError(
                    f"variable {variable!r} must have at least one state, got {card}")
        array = np.asarray(values, dtype=float)
        expected = int(np.prod(cardinalities)) if variables else 1
        if array.size != expected:
            raise FactorError(
                f"values has {array.size} entries, expected {expected} "
                f"for cardinalities {cardinalities}")
        if np.any(array < 0):
            raise FactorError("factor values must be non-negative")
        self.variables: list[str] = variables
        self.cardinalities: list[int] = cardinalities
        self.values: np.ndarray = array.reshape(cardinalities) if variables else array.reshape(())
        self.state_names: dict[str, list[str]] = {}
        state_names = state_names or {}
        for variable, card in zip(variables, cardinalities):
            names = list(state_names.get(variable, [str(i) for i in range(card)]))
            if len(names) != card:
                raise FactorError(
                    f"variable {variable!r} has {card} states but "
                    f"{len(names)} state names were given")
            if len(set(names)) != len(names):
                raise FactorError(
                    f"variable {variable!r} has duplicate state names: {names}")
            self.state_names[variable] = names

    # ----------------------------------------------------------------- helpers
    def cardinality(self, variable: str) -> int:
        """Return the number of states of ``variable``."""
        return self.cardinalities[self._axis(variable)]

    def _axis(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise FactorError(
                f"variable {variable!r} is not in factor over {self.variables}") from None

    def state_index(self, variable: str, state: str | int) -> int:
        """Return the axis index of ``state`` for ``variable``.

        ``state`` may be a state name or an integer index.
        """
        names = self.state_names[self.variables[self._axis(variable)]]
        if isinstance(state, (int, np.integer)):
            index = int(state)
            if not 0 <= index < len(names):
                raise FactorError(
                    f"state index {index} out of range for variable {variable!r} "
                    f"with {len(names)} states")
            return index
        try:
            return names.index(str(state))
        except ValueError:
            raise FactorError(
                f"unknown state {state!r} for variable {variable!r}; "
                f"known states: {names}") from None

    def copy(self) -> "DiscreteFactor":
        """Return an independent copy of the factor."""
        return DiscreteFactor(self.variables, self.cardinalities,
                              self.values.copy(), self.state_names)

    # -------------------------------------------------------------- operations
    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Return the factor product ``self * other``.

        Shared variables must agree on cardinality and state names.
        """
        result_vars = list(self.variables)
        result_cards = list(self.cardinalities)
        result_states = {v: list(self.state_names[v]) for v in self.variables}
        for variable, card in zip(other.variables, other.cardinalities):
            if variable in result_states:
                if result_states[variable] != other.state_names[variable]:
                    raise FactorError(
                        f"state-name mismatch for shared variable {variable!r}: "
                        f"{result_states[variable]} vs {other.state_names[variable]}")
            else:
                result_vars.append(variable)
                result_cards.append(card)
                result_states[variable] = list(other.state_names[variable])

        left = self._broadcast_to(result_vars, result_cards)
        right = other._broadcast_to(result_vars, result_cards)
        return DiscreteFactor(result_vars, result_cards, left * right, result_states)

    def _broadcast_to(self, variables: Sequence[str],
                      cardinalities: Sequence[int]) -> np.ndarray:
        """Return ``self.values`` broadcast to the axes of ``variables``.

        ``variables`` must contain every variable of this factor; the result
        has one axis per entry of ``variables`` with the factor's values
        repeated along the axes it does not mention.
        """
        variables = list(variables)
        cardinalities = list(cardinalities)
        if not self.variables:
            return np.broadcast_to(self.values, cardinalities).astype(float)
        dest_axes = [variables.index(v) for v in self.variables]
        shape = [1] * len(variables)
        for axis, variable in enumerate(self.variables):
            shape[dest_axes[axis]] = self.cardinalities[axis]
        # Transpose the source axes into increasing destination order so that
        # the subsequent reshape places each axis at its destination slot.
        order = np.argsort(dest_axes)
        transposed = np.transpose(self.values, axes=order)
        reshaped = transposed.reshape(shape)
        return np.broadcast_to(reshaped, cardinalities).astype(float)

    def marginalize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Sum out ``variables`` and return the resulting factor."""
        to_remove = list(variables)
        for variable in to_remove:
            self._axis(variable)
        keep = [v for v in self.variables if v not in to_remove]
        axes = tuple(self._axis(v) for v in to_remove)
        values = self.values.sum(axis=axes) if axes else self.values.copy()
        cards = [self.cardinality(v) for v in keep]
        states = {v: self.state_names[v] for v in keep}
        return DiscreteFactor(keep, cards, values, states)

    def maximize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Max out ``variables`` (used for MAP-style queries)."""
        to_remove = list(variables)
        for variable in to_remove:
            self._axis(variable)
        keep = [v for v in self.variables if v not in to_remove]
        axes = tuple(self._axis(v) for v in to_remove)
        values = self.values.max(axis=axes) if axes else self.values.copy()
        cards = [self.cardinality(v) for v in keep]
        states = {v: self.state_names[v] for v in keep}
        return DiscreteFactor(keep, cards, values, states)

    def reduce(self, evidence: Mapping[str, str | int]) -> "DiscreteFactor":
        """Condition on ``evidence`` (variable -> state) and drop those axes."""
        indexer: list[object] = [slice(None)] * len(self.variables)
        drop = []
        for variable, state in evidence.items():
            if variable not in self.variables:
                continue
            axis = self._axis(variable)
            indexer[axis] = self.state_index(variable, state)
            drop.append(variable)
        values = self.values[tuple(indexer)]
        keep = [v for v in self.variables if v not in drop]
        cards = [self.cardinality(v) for v in keep]
        states = {v: self.state_names[v] for v in keep}
        return DiscreteFactor(keep, cards, values, states)

    def normalize(self) -> "DiscreteFactor":
        """Return the factor scaled so that its entries sum to one."""
        total = float(self.values.sum())
        if total <= 0:
            raise FactorError(
                "cannot normalise a factor whose entries sum to zero; "
                "the evidence is inconsistent with the model")
        return DiscreteFactor(self.variables, self.cardinalities,
                              self.values / total, self.state_names)

    def divide(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Return ``self / other`` with the 0/0 convention equal to 0.

        Used by junction-tree message passing when dividing a sepset's new
        potential by its old potential.
        """
        result_vars = list(self.variables)
        result_cards = list(self.cardinalities)
        for variable in other.variables:
            if variable not in result_vars:
                raise FactorError(
                    f"cannot divide: {variable!r} not present in numerator")
        numerator = self.values
        denominator = other._broadcast_to(result_vars, result_cards)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(denominator > 0, numerator / denominator, 0.0)
        return DiscreteFactor(result_vars, result_cards, values, self.state_names)

    # ----------------------------------------------------------------- queries
    def get(self, assignment: Mapping[str, str | int]) -> float:
        """Return the factor value for a full assignment of its variables."""
        indexer = []
        for variable in self.variables:
            if variable not in assignment:
                raise FactorError(
                    f"assignment is missing variable {variable!r}")
            indexer.append(self.state_index(variable, assignment[variable]))
        return float(self.values[tuple(indexer)])

    def to_distribution(self) -> dict[str, float]:
        """Return a single-variable factor as ``{state_name: probability}``."""
        if len(self.variables) != 1:
            raise FactorError(
                f"to_distribution requires a single-variable factor, "
                f"got variables {self.variables}")
        variable = self.variables[0]
        return {name: float(value)
                for name, value in zip(self.state_names[variable], self.values)}

    def argmax(self) -> dict[str, str]:
        """Return the assignment with the highest value."""
        flat_index = int(np.argmax(self.values))
        indices = np.unravel_index(flat_index, self.values.shape) if self.variables else ()
        return {variable: self.state_names[variable][index]
                for variable, index in zip(self.variables, indices)}

    def is_close_to(self, other: "DiscreteFactor", *, atol: float = 1e-8) -> bool:
        """Return ``True`` when both factors describe the same table."""
        if set(self.variables) != set(other.variables):
            return False
        aligned = other._broadcast_to(self.variables, self.cardinalities)
        return bool(np.allclose(self.values, aligned, atol=atol))

    def __mul__(self, other: "DiscreteFactor") -> "DiscreteFactor":
        return self.product(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteFactor(variables={self.variables}, cardinalities={self.cardinalities})"


def factor_product(factors: Iterable[DiscreteFactor]) -> DiscreteFactor:
    """Return the product of an iterable of factors.

    An empty iterable yields the neutral (scalar 1.0) factor.
    """
    result: DiscreteFactor | None = None
    for factor in factors:
        result = factor if result is None else result.product(factor)
    if result is None:
        return DiscreteFactor([], [], np.array(1.0))
    return result
