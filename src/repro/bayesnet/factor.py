"""Discrete factors over named variables.

A factor is a non-negative table indexed by the joint states of a set of
variables.  Conditional probability tables, intermediate results of variable
elimination and clique potentials in the junction tree are all factors.  The
implementation stores the table as a dense :class:`numpy.ndarray` with one
axis per variable, in the order of :attr:`DiscreteFactor.variables`.

State names are first-class: the paper's model variables have named states
("Non-Operational", "nominal level", ...), and the diagnostic reports are
expressed in those names, so every factor carries a ``state_names`` mapping.

Performance notes
-----------------
The public constructor validates everything (shape, non-negativity, state
names); the inference engines produce millions of *trusted* intermediate
factors per population sweep, so those go through
:meth:`DiscreteFactor._from_parts`, which skips re-validation.  Variable and
state lookups are dict-backed instead of ``list.index`` scans, and the
product/marginalise hot path of the engines is a single
:func:`contract_factors` ``einsum`` kernel that multiplies a whole bucket of
factors and sums out the eliminated variables in one call.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import math

import numpy as np

from repro.exceptions import FactorError

#: numpy's einsum supports at most 52 distinct subscript labels; contractions
#: over wider scopes fall back to pairwise products.
_MAX_EINSUM_VARIABLES = 52


class DiscreteFactor:
    """A dense discrete factor phi(X1, ..., Xn).

    Parameters
    ----------
    variables:
        Variable names, one per axis of ``values``.
    cardinalities:
        Number of states per variable, aligned with ``variables``.
    values:
        Array (or nested sequence) of non-negative reals whose size equals the
        product of the cardinalities.  It is reshaped to one axis per
        variable.
    state_names:
        Optional ``{variable: [state, ...]}`` mapping.  When omitted, states
        are the stringified integers ``"0" ... "k-1"``.
    """

    def __init__(self, variables: Sequence[str], cardinalities: Sequence[int],
                 values: Sequence | np.ndarray,
                 state_names: Mapping[str, Sequence[str]] | None = None) -> None:
        variables = list(variables)
        cardinalities = [int(c) for c in cardinalities]
        if len(variables) != len(cardinalities):
            raise FactorError("variables and cardinalities must have equal length")
        if len(set(variables)) != len(variables):
            raise FactorError(f"duplicate variables in factor: {variables}")
        for variable, card in zip(variables, cardinalities):
            if card < 1:
                raise FactorError(
                    f"variable {variable!r} must have at least one state, got {card}")
        array = np.asarray(values, dtype=float)
        expected = math.prod(cardinalities) if variables else 1
        if array.size != expected:
            raise FactorError(
                f"values has {array.size} entries, expected {expected} "
                f"for cardinalities {cardinalities}")
        if np.any(array < 0):
            raise FactorError("factor values must be non-negative")
        self.variables: list[str] = variables
        self.cardinalities: list[int] = cardinalities
        self.values: np.ndarray = array.reshape(cardinalities) if variables else array.reshape(())
        self.state_names: dict[str, list[str]] = {}
        state_names = state_names or {}
        for variable, card in zip(variables, cardinalities):
            names = list(state_names.get(variable, [str(i) for i in range(card)]))
            if len(names) != card:
                raise FactorError(
                    f"variable {variable!r} has {card} states but "
                    f"{len(names)} state names were given")
            if len(set(names)) != len(names):
                raise FactorError(
                    f"variable {variable!r} has duplicate state names: {names}")
            self.state_names[variable] = names
        self._axes: dict[str, int] = {v: i for i, v in enumerate(variables)}
        self._state_lookup: dict[str, dict[str, int]] | None = None

    @classmethod
    def _from_parts(cls, variables: list[str], cardinalities: list[int],
                    values: np.ndarray,
                    state_names: dict[str, list[str]]) -> "DiscreteFactor":
        """Trusted fast constructor for internal intermediate results.

        Skips every validation step of ``__init__``: the caller guarantees
        that ``values`` is a float ndarray already shaped to
        ``cardinalities``, that the lists are aligned and that
        ``state_names`` covers exactly ``variables``.
        """
        self = object.__new__(cls)
        self.variables = variables
        self.cardinalities = cardinalities
        self.values = values
        self.state_names = state_names
        self._axes = {v: i for i, v in enumerate(variables)}
        self._state_lookup = None
        return self

    # ----------------------------------------------------------------- helpers
    def cardinality(self, variable: str) -> int:
        """Return the number of states of ``variable``."""
        return self.cardinalities[self._axis(variable)]

    def _axis(self, variable: str) -> int:
        try:
            return self._axes[variable]
        except KeyError:
            raise FactorError(
                f"variable {variable!r} is not in factor over {self.variables}") from None

    def state_index(self, variable: str, state: str | int) -> int:
        """Return the axis index of ``state`` for ``variable``.

        ``state`` may be a state name or an integer index.
        """
        self._axis(variable)
        names = self.state_names[variable]
        if isinstance(state, (int, np.integer)):
            index = int(state)
            if not 0 <= index < len(names):
                raise FactorError(
                    f"state index {index} out of range for variable {variable!r} "
                    f"with {len(names)} states")
            return index
        if self._state_lookup is None:
            self._state_lookup = {v: {name: i for i, name in enumerate(self.state_names[v])}
                                  for v in self.variables}
        try:
            return self._state_lookup[variable][str(state)]
        except KeyError:
            raise FactorError(
                f"unknown state {state!r} for variable {variable!r}; "
                f"known states: {names}") from None

    def copy(self) -> "DiscreteFactor":
        """Return an independent copy of the factor."""
        return DiscreteFactor._from_parts(
            list(self.variables), list(self.cardinalities), self.values.copy(),
            {v: list(self.state_names[v]) for v in self.variables})

    # -------------------------------------------------------------- operations
    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Return the factor product ``self * other``.

        Shared variables must agree on cardinality and state names.
        """
        return contract_factors([self, other], check_states=True)

    def _broadcast_to(self, variables: Sequence[str],
                      cardinalities: Sequence[int]) -> np.ndarray:
        """Return ``self.values`` broadcast to the axes of ``variables``.

        ``variables`` must contain every variable of this factor; the result
        has one axis per entry of ``variables`` with the factor's values
        repeated along the axes it does not mention.
        """
        variables = list(variables)
        cardinalities = list(cardinalities)
        if not self.variables:
            return np.broadcast_to(self.values, cardinalities)
        dest_axes = [variables.index(v) for v in self.variables]
        shape = [1] * len(variables)
        for axis, variable in enumerate(self.variables):
            shape[dest_axes[axis]] = self.cardinalities[axis]
        # Transpose the source axes into increasing destination order so that
        # the subsequent reshape places each axis at its destination slot.
        order = np.argsort(dest_axes)
        transposed = np.transpose(self.values, axes=order)
        reshaped = transposed.reshape(shape)
        return np.broadcast_to(reshaped, cardinalities)

    def marginalize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Sum out ``variables`` and return the resulting factor."""
        to_remove = set()
        for variable in variables:
            self._axis(variable)
            to_remove.add(variable)
        if not to_remove:
            return DiscreteFactor._from_parts(
                list(self.variables), list(self.cardinalities),
                self.values.copy(), dict(self.state_names))
        axes = tuple(self._axes[v] for v in to_remove)
        keep = [v for v in self.variables if v not in to_remove]
        return DiscreteFactor._from_parts(
            keep, [self.cardinalities[self._axes[v]] for v in keep],
            self.values.sum(axis=axes),
            {v: self.state_names[v] for v in keep})

    def maximize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Max out ``variables`` (used for MAP-style queries)."""
        to_remove = set()
        for variable in variables:
            self._axis(variable)
            to_remove.add(variable)
        if not to_remove:
            return DiscreteFactor._from_parts(
                list(self.variables), list(self.cardinalities),
                self.values.copy(), dict(self.state_names))
        axes = tuple(self._axes[v] for v in to_remove)
        keep = [v for v in self.variables if v not in to_remove]
        return DiscreteFactor._from_parts(
            keep, [self.cardinalities[self._axes[v]] for v in keep],
            self.values.max(axis=axes),
            {v: self.state_names[v] for v in keep})

    def reduce(self, evidence: Mapping[str, str | int]) -> "DiscreteFactor":
        """Condition on ``evidence`` (variable -> state) and drop those axes."""
        indexer: list[object] = [slice(None)] * len(self.variables)
        drop = set()
        for variable, state in evidence.items():
            if variable not in self._axes:
                continue
            indexer[self._axes[variable]] = self.state_index(variable, state)
            drop.add(variable)
        if not drop:
            return DiscreteFactor._from_parts(
                list(self.variables), list(self.cardinalities),
                self.values.copy(), dict(self.state_names))
        values = self.values[tuple(indexer)]
        keep = [v for v in self.variables if v not in drop]
        return DiscreteFactor._from_parts(
            keep, [self.cardinalities[self._axes[v]] for v in keep],
            values, {v: self.state_names[v] for v in keep})

    def normalize(self) -> "DiscreteFactor":
        """Return the factor scaled so that its entries sum to one."""
        total = float(self.values.sum())
        if total <= 0:
            raise FactorError(
                "cannot normalise a factor whose entries sum to zero; "
                "the evidence is inconsistent with the model")
        return DiscreteFactor._from_parts(
            list(self.variables), list(self.cardinalities),
            self.values / total, dict(self.state_names))

    def divide(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Return ``self / other`` with the 0/0 convention equal to 0.

        Used by junction-tree message passing when dividing a sepset's new
        potential by its old potential.
        """
        for variable in other.variables:
            if variable not in self._axes:
                raise FactorError(
                    f"cannot divide: {variable!r} not present in numerator")
        numerator = self.values
        denominator = other._broadcast_to(self.variables, self.cardinalities)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(denominator > 0, numerator / denominator, 0.0)
        return DiscreteFactor._from_parts(
            list(self.variables), list(self.cardinalities), values,
            dict(self.state_names))

    # ----------------------------------------------------------------- queries
    def get(self, assignment: Mapping[str, str | int]) -> float:
        """Return the factor value for a full assignment of its variables."""
        indexer = []
        for variable in self.variables:
            if variable not in assignment:
                raise FactorError(
                    f"assignment is missing variable {variable!r}")
            indexer.append(self.state_index(variable, assignment[variable]))
        return float(self.values[tuple(indexer)])

    def to_distribution(self) -> dict[str, float]:
        """Return a single-variable factor as ``{state_name: probability}``."""
        if len(self.variables) != 1:
            raise FactorError(
                f"to_distribution requires a single-variable factor, "
                f"got variables {self.variables}")
        variable = self.variables[0]
        return {name: float(value)
                for name, value in zip(self.state_names[variable], self.values)}

    def argmax(self) -> dict[str, str]:
        """Return the assignment with the highest value."""
        flat_index = int(np.argmax(self.values))
        indices = np.unravel_index(flat_index, self.values.shape) if self.variables else ()
        return {variable: self.state_names[variable][index]
                for variable, index in zip(self.variables, indices)}

    def is_close_to(self, other: "DiscreteFactor", *, atol: float = 1e-8) -> bool:
        """Return ``True`` when both factors describe the same table."""
        if set(self.variables) != set(other.variables):
            return False
        aligned = other._broadcast_to(self.variables, self.cardinalities)
        return bool(np.allclose(self.values, aligned, atol=atol))

    def __mul__(self, other: "DiscreteFactor") -> "DiscreteFactor":
        return self.product(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteFactor(variables={self.variables}, cardinalities={self.cardinalities})"


def contract_factors(factors: Sequence[DiscreteFactor],
                     keep: Iterable[str] | None = None,
                     *, check_states: bool = False) -> DiscreteFactor:
    """Multiply ``factors`` and sum out every variable not in ``keep``.

    This is the shared product/marginalise kernel of the inference engines:
    one ``einsum`` call replaces a chain of pairwise broadcast products
    followed by a separate summation.  ``keep=None`` keeps every variable
    (a pure product).  Variables of the result appear in first-seen order
    across the operand factors.

    With ``check_states=True`` shared variables are verified to agree on
    their state names (the public :meth:`DiscreteFactor.product` contract);
    internal callers operating on factors derived from a single validated
    network skip the check.
    """
    factors = list(factors)
    if not factors:
        return DiscreteFactor._from_parts([], [], np.array(1.0), {})

    order: list[str] = []
    cards: dict[str, int] = {}
    states: dict[str, list[str]] = {}
    for factor in factors:
        for variable, card in zip(factor.variables, factor.cardinalities):
            if variable not in cards:
                order.append(variable)
                cards[variable] = card
                states[variable] = factor.state_names[variable]
            elif check_states and states[variable] != factor.state_names[variable]:
                raise FactorError(
                    f"state-name mismatch for shared variable {variable!r}: "
                    f"{states[variable]} vs {factor.state_names[variable]}")

    if keep is None:
        out_vars = order
    else:
        keep = set(keep)
        out_vars = [v for v in order if v in keep]

    if len(order) > _MAX_EINSUM_VARIABLES:
        result = factors[0]
        for factor in factors[1:]:
            result = _broadcast_product(result, factor)
        return result.marginalize([v for v in order if v not in set(out_vars)])

    subscript = {variable: i for i, variable in enumerate(order)}
    operands: list[object] = []
    key_parts: list[tuple] = []
    for factor in factors:
        labels = [subscript[v] for v in factor.variables]
        operands.append(factor.values)
        operands.append(labels)
        key_parts.append((tuple(labels), factor.values.shape))
    out_labels = [subscript[v] for v in out_vars]
    operands.append(out_labels)
    values = np.einsum(*operands,
                       optimize=_contraction_path(key_parts, out_labels,
                                                  operands)
                       if len(factors) > 2 else False)
    return DiscreteFactor._from_parts(
        out_vars, [cards[v] for v in out_vars], values,
        {v: states[v] for v in out_vars})


#: Memoised einsum contraction paths keyed by the operand subscript/shape
#: structure.  ``np.einsum(optimize=True)`` re-runs the path optimiser on
#: every call; the inference sweeps issue the same handful of contraction
#: shapes thousands of times per population, so the path is computed once
#: and replayed.  Shared between the interpreted engines (via
#: :func:`contract_factors`) and the ahead-of-time compiled programs of
#: :mod:`repro.bayesnet.inference.compiled`, which plan their wide
#: contractions through :func:`cached_einsum_path` at compile time.
_PATH_CACHE: dict[tuple, list] = {}
_PATH_CACHE_LIMIT = 4096


def cached_einsum_path(key: tuple, operands: Sequence[object]) -> list:
    """Return the memoised ``np.einsum_path`` for one contraction structure.

    ``key`` must uniquely describe the einsum call — the operand subscripts
    and shapes (and, for batched callers, the batch-axis convention) — since
    the returned path is replayed verbatim for every matching call.
    ``operands`` is the full interleaved einsum argument list used on a
    cache miss to run the path optimiser once.
    """
    path = _PATH_CACHE.get(key)
    if path is None:
        path = np.einsum_path(*operands, optimize=True)[0]
        if len(_PATH_CACHE) >= _PATH_CACHE_LIMIT:
            _PATH_CACHE.clear()
        _PATH_CACHE[key] = path
    return path


def _contraction_path(key_parts: list[tuple], out_labels: list[int],
                      operands: list[object]) -> list:
    return cached_einsum_path((tuple(key_parts), tuple(out_labels)), operands)


def _broadcast_product(left: DiscreteFactor, right: DiscreteFactor) -> DiscreteFactor:
    """Pairwise product via axis broadcasting; no einsum subscript limit."""
    result_vars = list(left.variables)
    result_cards = list(left.cardinalities)
    result_states = {v: left.state_names[v] for v in left.variables}
    for variable, card in zip(right.variables, right.cardinalities):
        if variable not in result_states:
            result_vars.append(variable)
            result_cards.append(card)
            result_states[variable] = right.state_names[variable]
    values = (left._broadcast_to(result_vars, result_cards)
              * right._broadcast_to(result_vars, result_cards))
    return DiscreteFactor._from_parts(result_vars, result_cards, values,
                                      result_states)


def factor_product(factors: Iterable[DiscreteFactor]) -> DiscreteFactor:
    """Return the product of an iterable of factors.

    An empty iterable yields the neutral (scalar 1.0) factor.
    """
    return contract_factors(list(factors), check_states=True)
