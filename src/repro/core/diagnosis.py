"""Block-level diagnosis: evidence entry, posterior update and candidate deduction.

In diagnostic mode (Section III-B of the paper) the BBN circuit model takes
the test data of a failing device — the states of the controllable and
observable blocks — and updates the probabilities of the remaining blocks
with Bayes' theorem.  The paper then deduces the suspect functional blocks
*manually* by iterating over the parent–child relations ("a common parent
block can be iteratively deduced").  :class:`DiagnosisEngine` automates both
steps; the deduction algorithm below reproduces the paper's reasoning on all
five published case studies when fed the paper's own posterior numbers.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.inference import (
    GibbsSampling,
    JunctionTree,
    LikelihoodWeighting,
    VariableElimination,
)
from repro.core.evidence import (
    EvidenceIssue,
    merge_case_evidence,
    validate_evidence,
)
from repro.core.model_builder import BuiltModel
from repro.exceptions import (
    DiagnosisError,
    EvidenceError,
    ImpossibleEvidenceError,
    ReproError,
)

#: Inference engines a DiagnosisEngine can run on, in decreasing exactness.
ENGINE_NAMES = ("jt", "ve", "lw", "gibbs")


def chunk_slices(total: int, chunk_size: int) -> list[slice]:
    """Split ``total`` batch slots into contiguous slices of ``chunk_size``.

    The shared chunking rule for every sharded batch entry point (the
    worker-pool service, future async APIs): deterministic, order-preserving
    and exhaustive, so per-slot accounting survives resharding.
    """
    if chunk_size < 1:
        raise DiagnosisError(f"chunk_size must be >= 1, got {chunk_size}")
    if total < 0:
        raise DiagnosisError(f"total must be >= 0, got {total}")
    return [slice(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


def case_from_evidence(model, evidence: Mapping[str, str],
                       name: str) -> "DiagnosticCase":
    """Wrap a raw evidence mapping into a :class:`DiagnosticCase`.

    Splits entries into controllable/observable by the model's variable
    roles.  Unknown variables are binned as observable so that evidence
    validation reports them as structured ``unknown-variable`` issues
    rather than this split raising first.  Module-level so serving layers
    can normalise cases before shipping them to worker processes.
    """
    known = set(model.variable_names)
    controllable = {variable: state for variable, state in evidence.items()
                    if variable in known
                    and model.variable(variable).is_controllable}
    observable = {variable: state for variable, state in evidence.items()
                  if variable not in controllable}
    return DiagnosticCase(name=name, controllable_states=controllable,
                          observable_states=observable)


@dataclasses.dataclass(frozen=True)
class DiagnosticCase:
    """One diagnostic query: the observed condition of a failing device.

    Attributes
    ----------
    name:
        Case identifier (the paper uses d1 ... d5).
    controllable_states:
        State label per controllable model variable (the test conditions).
    observable_states:
        State label per observable model variable (the responses).
    expected_fail_blocks:
        Optional ground truth / expert verdict, used only for scoring.
    """

    name: str
    controllable_states: Mapping[str, str]
    observable_states: Mapping[str, str]
    expected_fail_blocks: tuple[str, ...] = ()

    def evidence(self) -> dict[str, str]:
        """Return the combined evidence mapping.

        A variable appearing in both the controllable and the observable
        section with different states is a contradiction in the source data
        and raises :class:`~repro.exceptions.EvidenceError` naming every
        conflicting block.
        """
        return merge_case_evidence(self.controllable_states,
                                   self.observable_states)

    def raw_evidence(self) -> dict[str, str]:
        """Return the merged mapping without conflict checking (for logging)."""
        merged = {variable: str(state)
                  for variable, state in self.controllable_states.items()}
        for variable, state in self.observable_states.items():
            merged[variable] = str(state)
        return merged


@dataclasses.dataclass(frozen=True)
class AttemptRecord:
    """One inference attempt made while serving a diagnosis.

    Attributes
    ----------
    engine:
        Engine name (``"jt"``, ``"ve"``, ``"lw"`` or ``"gibbs"``).
    outcome:
        ``"ok"``, ``"timeout"`` or ``"error"``.
    elapsed:
        Wall time of the attempt in seconds.
    error:
        ``"ExceptionType: message"`` for failed attempts, else ``None``.
    """

    engine: str
    outcome: str
    elapsed: float
    error: str | None = None

    def to_dict(self) -> dict:
        """Return a JSON-safe dict (service responses, structured logs)."""
        return {"engine": self.engine, "outcome": self.outcome,
                "elapsed": float(self.elapsed), "error": self.error}


@dataclasses.dataclass
class DiagnosisProvenance:
    """How a diagnosis was produced — the serving layer's audit trail.

    Attributes
    ----------
    engine:
        The engine that produced the accepted posteriors.
    attempts:
        Every attempt made, in order, including failed ones.
    wall_time:
        Total serving wall time in seconds (all attempts plus overhead).
    degraded:
        True when the result did not come from the primary engine on the
        first try (fallback, retry) or carries reduced-precision notes.
    effective_sample_size:
        Weight-population ESS for likelihood weighting, retained-sample
        count for Gibbs, ``None`` for exact engines.
    evidence_issues:
        :class:`~repro.core.evidence.EvidenceIssue` records from evidence
        sanitisation (empty for clean cases).
    notes:
        Human-readable degradation notes ("fell back to lw", "low ESS").
    """

    engine: str
    attempts: tuple[AttemptRecord, ...] = ()
    wall_time: float = 0.0
    degraded: bool = False
    effective_sample_size: float | None = None
    evidence_issues: tuple = ()
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Return a JSON-safe dict (service responses, structured logs)."""
        return {
            "engine": self.engine,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "wall_time": float(self.wall_time),
            "degraded": bool(self.degraded),
            "effective_sample_size":
                None if self.effective_sample_size is None
                else float(self.effective_sample_size),
            "evidence_issues": [dataclasses.asdict(issue)
                                for issue in self.evidence_issues],
            "notes": list(self.notes),
        }


@dataclasses.dataclass
class DiagnosisFailure:
    """A per-case structured failure from ``diagnose_batch``.

    Returned (``on_error="collect"``) instead of raising, so one poisoned
    case cannot kill a population sweep.  Mirrors :class:`Diagnosis` enough
    for uniform handling: ``case_name``, ``evidence`` and the ``ok``
    discriminator.
    """

    case_name: str
    evidence: dict[str, str]
    error_type: str
    message: str
    attempts: tuple[AttemptRecord, ...] = ()
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return False

    @classmethod
    def from_exception(cls, case_name: str, evidence: Mapping[str, str],
                       error: BaseException,
                       attempts: tuple[AttemptRecord, ...] = (),
                       wall_time: float = 0.0) -> "DiagnosisFailure":
        return cls(case_name=case_name, evidence=dict(evidence),
                   error_type=type(error).__name__, message=str(error),
                   attempts=attempts, wall_time=wall_time)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"DiagnosisFailure({self.case_name!r}: "
                f"{self.error_type}: {self.message})")

    def to_dict(self) -> dict:
        """Return a JSON-safe dict (service responses, structured logs)."""
        return {
            "ok": False,
            "case_name": self.case_name,
            "evidence": {str(variable): str(state)
                         for variable, state in self.evidence.items()},
            "error_type": self.error_type,
            "message": self.message,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "wall_time": float(self.wall_time),
        }


@dataclasses.dataclass
class Diagnosis:
    """The result of diagnosing one case.

    Attributes
    ----------
    case_name:
        Name of the diagnosed case.
    evidence:
        The evidence that was entered.
    posteriors:
        Posterior ``{variable: {state: probability}}`` of every model
        variable (evidence variables collapse onto their observed state).
    fail_probabilities:
        Per internal variable, the probability of *not* being in its healthy
        state.
    suspects:
        The deduced suspect blocks (the paper's candidate list), most
        suspicious first.
    ranked_candidates:
        Every internal variable ranked by fail probability (the naive
        ranking used as an ablation baseline).
    provenance:
        Optional serving metadata (engine used, attempts, degradation);
        populated by the robust serving layer, ``None`` for direct
        :class:`DiagnosisEngine` calls.
    """

    case_name: str
    evidence: dict[str, str]
    posteriors: dict[str, dict[str, float]]
    fail_probabilities: dict[str, float]
    suspects: list[str]
    ranked_candidates: list[tuple[str, float]]
    provenance: DiagnosisProvenance | None = None

    @property
    def ok(self) -> bool:
        return True

    def to_dict(self) -> dict:
        """Return a JSON-safe dict (service responses, structured logs).

        Every value is a plain str/float/bool/list/dict so the result
        round-trips through ``json.dumps`` without a custom encoder.
        """
        return {
            "ok": True,
            "case_name": self.case_name,
            "evidence": {str(variable): str(state)
                         for variable, state in self.evidence.items()},
            "posteriors": {
                variable: {state: float(probability)
                           for state, probability in distribution.items()}
                for variable, distribution in self.posteriors.items()},
            "fail_probabilities": {
                variable: float(probability)
                for variable, probability in self.fail_probabilities.items()},
            "suspects": list(self.suspects),
            "ranked_candidates": [[candidate, float(probability)]
                                  for candidate, probability
                                  in self.ranked_candidates],
            "provenance":
                None if self.provenance is None else self.provenance.to_dict(),
        }

    def top_candidate(self) -> str:
        """Return the single most suspicious block."""
        if self.suspects:
            return self.suspects[0]
        if self.ranked_candidates:
            return self.ranked_candidates[0][0]
        raise DiagnosisError(
            f"diagnosis of case {self.case_name!r} has no candidates: both "
            "the suspect list and the fail-probability ranking are empty "
            "(the model has no internal variables)")

    def rank_of(self, block: str) -> int:
        """Return the 1-based rank of ``block`` in the fail-probability ranking."""
        ranks = self.__dict__.get("_rank_index")
        if ranks is None or len(ranks) != len(self.ranked_candidates):
            ranks = {candidate: rank for rank, (candidate, _)
                     in enumerate(self.ranked_candidates, start=1)}
            self.__dict__["_rank_index"] = ranks
        try:
            return ranks[block]
        except KeyError:
            raise DiagnosisError(
                f"block {block!r} is not an internal model variable") from None


class DiagnosisEngine:
    """Runs block-level diagnosis queries against a built BBN circuit model.

    Parameters
    ----------
    built_model:
        The model produced by :class:`~repro.core.model_builder.Dlog2BBN`.
    inference:
        ``"ve"`` for variable elimination (default), ``"jt"`` for
        junction-tree belief propagation (the Netica-style engine),
        ``"lw"`` for likelihood weighting or ``"gibbs"`` for Gibbs
        sampling (the approximate engines the robust serving layer
        degrades to).
    num_samples:
        Sample budget for the approximate engines (their own defaults when
        omitted); ignored by the exact engines.
    seed:
        Seed for the approximate engines' samplers.
    cache_size:
        Evidence-cache capacity for the exact engines (entries per cache);
        defaults to the ``REPRO_EVIDENCE_CACHE_SIZE`` environment variable
        or 128.  The per-engine (and therefore per-serving-worker) memory
        knob; ignored by the samplers.
    compiled:
        When true (and the engine is exact), posterior updates run through
        ahead-of-time :class:`~repro.bayesnet.inference.CompiledProgram`
        op-lists: the engine's sweep is traced once per evidence-variable
        signature (compile-on-first-use, invalidated when CPDs are
        replaced, like the evidence caches) and every query after that is
        pure array execution — the sub-millisecond single-device path and
        the vectorised ``diagnose_batch`` sweep.  Ignored by the
        samplers.  ``compile_count`` / ``compile_ms`` /
        ``compiled_query_count`` expose what compilation cost and how many
        queries it served.
    abnormal_threshold:
        Fail probability above which an internal block counts as *abnormal*
        (clearly not in its healthy state).
    ambiguous_threshold:
        Fail probability above which an internal block counts as *ambiguous*
        (suspicious enough to absorb the blame of its abnormal children).
    """

    def __init__(self, built_model: BuiltModel, inference: str = "ve",
                 abnormal_threshold: float = 0.5,
                 ambiguous_threshold: float = 0.4, *,
                 num_samples: int | None = None,
                 seed: int | None = None,
                 cache_size: int | None = None,
                 compiled: bool = False,
                 program_cache=None) -> None:
        if not 0.0 < ambiguous_threshold <= abnormal_threshold <= 1.0:
            raise DiagnosisError(
                "thresholds must satisfy 0 < ambiguous <= abnormal <= 1, got "
                f"ambiguous={ambiguous_threshold}, abnormal={abnormal_threshold}")
        self.built_model = built_model
        self.model = built_model.description
        self.network = built_model.network
        self.healthy_states = built_model.healthy_states
        self.abnormal_threshold = float(abnormal_threshold)
        self.ambiguous_threshold = float(ambiguous_threshold)
        self.inference_name = inference
        sampler_options = {} if num_samples is None \
            else {"num_samples": int(num_samples)}
        if inference == "ve":
            self._engine = VariableElimination(self.network,
                                               cache_size=cache_size)
        elif inference == "jt":
            self._engine = JunctionTree(self.network, cache_size=cache_size)
        elif inference == "lw":
            self._engine = LikelihoodWeighting(self.network, seed=seed,
                                               **sampler_options)
        elif inference == "gibbs":
            self._engine = GibbsSampling(self.network, seed=seed,
                                         **sampler_options)
        else:
            raise DiagnosisError(
                f"unknown inference engine {inference!r}; "
                f"use one of {ENGINE_NAMES}")
        # Compilation only applies to the exact engines; the samplers have
        # no static sweep to trace.
        self.compiled = bool(compiled) and inference in ("jt", "ve")
        self._programs: dict[tuple[str, ...], object] = {}
        self._programs_version: int | None = None
        self.compile_count = 0
        self.compile_ms = 0.0
        self.compiled_query_count = 0
        # Optional shared cross-process program cache (trace once, ship the
        # op-list to every worker): a `repro.persist.PosteriorCache` keyed
        # by content fingerprint, so entries of a replaced model are
        # unreachable rather than wrong.
        self.program_cache = program_cache if self.compiled else None
        self.program_cache_hits = 0
        self._fingerprints = None

    # ----------------------------------------------------------- compilation
    def _program_for(self, signature: tuple[str, ...]):
        """Return the compiled program for one evidence-variable signature.

        Compile-on-first-use keyed by the sorted evidence-variable tuple;
        the whole program cache is dropped when the network's CPDs are
        replaced (``cpd_version`` advances), mirroring how the interpreted
        evidence caches invalidate.
        """
        version = self.network.cpd_version
        if self._programs_version != version:
            self._programs.clear()
            self._programs_version = version
        program = self._programs.get(signature)
        if program is None:
            program = self._shared_program(signature)
            if program is None:
                program = self._engine.compile_posteriors(signature)
                self.compile_count += 1
                self.compile_ms += program.compile_ms
                self._share_program(program)
            self._programs[signature] = program
        return program

    def _model_fingerprint(self) -> str:
        if self._fingerprints is None:
            from repro.persist.fingerprint import FingerprintTracker
            self._fingerprints = FingerprintTracker(self.network)
        return self._fingerprints.current()

    def _shared_program(self, signature: tuple[str, ...]):
        """Try the shared cross-process cache before tracing locally.

        A hit is only accepted when its schedule and evidence signature
        match exactly; the content-fingerprint key already guarantees the
        pinned CPT planes equal this engine's network bit-for-bit.
        """
        if self.program_cache is None:
            return None
        try:
            program = self.program_cache.get_program(
                self._model_fingerprint(), signature, self.inference_name)
        except OSError:
            return None
        if program is None \
                or tuple(program.evidence_vars) != tuple(signature) \
                or program.schedule != self.inference_name:
            return None
        # Re-pin to this process's CPD generation counter (the fingerprint
        # proved content equality; the counters are process-local).
        program.cpd_version = self.network.cpd_version
        self.program_cache_hits += 1
        return program

    def _share_program(self, program) -> None:
        if self.program_cache is None:
            return
        try:
            self.program_cache.put_program(self._model_fingerprint(),
                                           program)
        except (ReproError, OSError):
            # Sharing is an optimisation; a full disk or a corrupt cache
            # must never fail the diagnosis that triggered the trace.
            pass

    def warm_compile(self, evidence_vars: Sequence[str] | None = None
                     ) -> float:
        """Precompile the standard-workload program; return its cost in ms.

        ``evidence_vars`` defaults to every non-internal model variable —
        the full controllable+observable evidence a tester produces, which
        is the signature real diagnostic traffic carries.  Serving workers
        call this once at init so the first request never pays the compile.
        No-op (0.0) on non-compiled engines.
        """
        if not self.compiled:
            return 0.0
        if evidence_vars is None:
            internal = set(self.model.internal_variables)
            evidence_vars = [variable
                             for variable in self.model.variable_names
                             if variable not in internal]
        before = self.compile_ms
        self._program_for(tuple(sorted(set(evidence_vars))))
        return self.compile_ms - before

    # --------------------------------------------------------------- posteriors
    def initial_probabilities(self) -> dict[str, dict[str, float]]:
        """Return the prior marginals of every variable (the Init.% column)."""
        if self.compiled:
            self.compiled_query_count += 1
            computed = self._program_for(()).posteriors({})
            return {variable: computed[variable]
                    for variable in self.model.variable_names}
        return self._engine.posteriors(self.model.variable_names, evidence={})

    def update(self, evidence: Mapping[str, str]) -> dict[str, dict[str, float]]:
        """Return the posterior marginals of every variable given ``evidence``.

        All free-variable marginals come from ONE inference sweep
        (calibration / shared-bucket elimination) rather than one elimination
        per variable; evidence variables collapse onto their observed state.
        """
        evidence = validate_evidence(self.model, evidence)
        free = [variable for variable in self.model.variable_names
                if variable not in evidence]
        if self.compiled:
            program = self._program_for(tuple(sorted(evidence)))
            self.compiled_query_count += 1
            computed = program.posteriors(evidence)
        else:
            computed = self._engine.posteriors(free, evidence)
        posteriors: dict[str, dict[str, float]] = {}
        for variable in self.model.variable_names:
            if variable in evidence:
                labels = self.model.state_table(variable).labels
                posteriors[variable] = {label: 1.0 if label == evidence[variable] else 0.0
                                        for label in labels}
            else:
                posteriors[variable] = computed[variable]
        return posteriors

    def fail_probability(self, variable: str,
                         posteriors: Mapping[str, Mapping[str, float]]) -> float:
        """Return the probability that ``variable`` is not in its healthy state."""
        healthy = self.healthy_states[variable]
        distribution = posteriors[variable]
        return 1.0 - float(distribution.get(healthy, 0.0))

    # ---------------------------------------------------------------- deduction
    def deduce_candidates(self, posteriors: Mapping[str, Mapping[str, float]]
                          ) -> list[str]:
        """Automate the paper's iterative parent back-tracking.

        Rules (validated against the paper's cases d1–d5):

        1. Compute the fail probability of every internal model variable.
        2. *Abnormal* variables (fail probability >= ``abnormal_threshold``)
           are presumed consequences rather than causes whenever they have an
           internal parent that is itself at least *ambiguous*
           (fail probability >= ``ambiguous_threshold``): the suspicion
           "falls back" to those parents, exactly as in case d1 where the
           non-functional enables point back to ``warnvpst``.
        3. *Ambiguous but not abnormal* variables reached by that
           back-tracking stay on the suspect list themselves **and** pull in
           their own ambiguous internal parents (case d1 keeps both
           ``warnvpst`` and ``hcbg``).
        4. A variable with no ambiguous internal parents is a final suspect
           (case d4 resolves the lcbg/enblSen/hcbg loop onto ``lcbg`` because
           only ``lcbg`` has no suspicious internal parent).

        The returned list is ordered by decreasing fail probability.
        """
        return self._deduce_from_fail(
            {variable: self.fail_probability(variable, posteriors)
             for variable in self.model.internal_variables})

    def _deduce_from_fail(self, fail: dict[str, float]) -> list[str]:
        """Back-track suspects from precomputed internal fail probabilities."""
        internal = set(fail)

        def ambiguous_internal_parents(variable: str) -> list[str]:
            return [parent for parent in self.model.parents_of(variable)
                    if parent in internal
                    and fail[parent] >= self.ambiguous_threshold]

        suspects: set[str] = set()
        # Seed with the abnormal variables, most downstream first so that the
        # blame propagates upwards in one pass per frontier.
        frontier = [variable for variable in internal
                    if fail[variable] >= self.abnormal_threshold]
        visited: set[str] = set()
        while frontier:
            next_frontier: list[str] = []
            for variable in frontier:
                if variable in visited:
                    continue
                visited.add(variable)
                parents = ambiguous_internal_parents(variable)
                if fail[variable] >= self.abnormal_threshold and parents:
                    # Clearly broken, but explained by a suspicious parent:
                    # pass the blame upwards.
                    next_frontier.extend(parents)
                elif fail[variable] >= self.ambiguous_threshold:
                    # Suspicious in its own right: keep it, and also examine
                    # its suspicious parents (they may share the blame or,
                    # if they are abnormal themselves, take it over).
                    suspects.add(variable)
                    next_frontier.extend(parents)
            frontier = [variable for variable in next_frontier
                        if variable not in visited]

        if not suspects and fail:
            # Nothing crossed the thresholds: fall back to the single most
            # suspicious internal block so the diagnosis is never empty.
            suspects = {max(fail, key=fail.get)}
        return sorted(suspects, key=lambda variable: fail[variable], reverse=True)

    def rank_by_fail_probability(self, posteriors: Mapping[str, Mapping[str, float]]
                                 ) -> list[tuple[str, float]]:
        """Return every internal variable ranked by fail probability (naive ranking)."""
        fail = {variable: self.fail_probability(variable, posteriors)
                for variable in self.model.internal_variables}
        return sorted(fail.items(), key=lambda item: item[1], reverse=True)

    def _internal_fail_probabilities(
            self, posteriors: Mapping[str, Mapping[str, float]]
    ) -> dict[str, float]:
        """Return the fail probability of every internal variable."""
        healthy = self.healthy_states
        return {variable: 1.0 - float(posteriors[variable].get(
                    healthy[variable], 0.0))
                for variable in self.model.internal_variables}

    # ---------------------------------------------------------------- diagnosis
    def diagnose(self, case: DiagnosticCase) -> Diagnosis:
        """Diagnose one case: update posteriors and deduce the suspect list."""
        evidence = case.evidence()
        posteriors = self.update(evidence)
        fail = {variable: self.fail_probability(variable, posteriors)
                for variable in self.model.internal_variables}
        return Diagnosis(
            case_name=case.name,
            evidence=evidence,
            posteriors=posteriors,
            fail_probabilities=fail,
            suspects=self.deduce_candidates(posteriors),
            ranked_candidates=self.rank_by_fail_probability(posteriors),
        )

    def _case_from_evidence(self, evidence: Mapping[str, str],
                            name: str) -> DiagnosticCase:
        """Wrap a raw evidence mapping into a :class:`DiagnosticCase`."""
        return case_from_evidence(self.model, evidence, name)

    def diagnose_evidence(self, evidence: Mapping[str, str],
                          name: str = "adhoc") -> Diagnosis:
        """Diagnose from a raw evidence mapping (observable/controllable states)."""
        return self.diagnose(self._case_from_evidence(evidence, name))

    def diagnose_batch(self, cases: Sequence[DiagnosticCase | Mapping[str, str]],
                       names: Sequence[str] | None = None,
                       on_error: str = "raise",
                       deadline: float | None = None,
                       ) -> list[Diagnosis | DiagnosisFailure]:
        """Diagnose a whole population of cases against one shared engine.

        Engine construction (network validation, junction-tree compilation)
        is paid once for the entire batch, every case's posterior update is a
        single inference sweep, and duplicate failing conditions across the
        population hit the engine's evidence-keyed cache instead of being
        recomputed — the intended entry point for customer-return and
        fault-coverage population workflows.

        Parameters
        ----------
        cases:
            :class:`DiagnosticCase` instances, or raw evidence mappings
            (variable -> observed state) which are wrapped like
            :meth:`diagnose_evidence` does.
        names:
            Optional case names, aligned with ``cases``; only used for raw
            evidence mappings (defaults to ``case-<i>``).
        on_error:
            Per-case failure isolation.  ``"raise"`` (default) propagates
            the first failure, aborting the batch.  ``"skip"`` drops failed
            cases from the result.  ``"collect"`` keeps batch order and
            returns a structured :class:`DiagnosisFailure` in a failed
            case's slot, so one poisoned case cannot kill a population
            sweep.
        deadline:
            Optional total wall-clock budget in seconds shared by the whole
            batch; cases reached after the budget expires fail with a
            :class:`~repro.exceptions.DeadlineExceededError` (handled per
            ``on_error``).  Requires a deadline-capable engine
            (:class:`~repro.core.robust.RobustDiagnosisEngine`).
        """
        if on_error not in ("raise", "skip", "collect"):
            raise DiagnosisError(
                f"unknown on_error mode {on_error!r}; "
                "use 'raise', 'skip' or 'collect'")
        cases = list(cases)
        if names is not None and len(names) != len(cases):
            raise DiagnosisError(
                f"got {len(names)} names for {len(cases)} cases")
        if deadline is None and type(self) is DiagnosisEngine \
                and self.compiled:
            return self._diagnose_batch_compiled(cases, names, on_error)
        if (deadline is None and type(self) is DiagnosisEngine
                and isinstance(self._engine, VariableElimination)):
            return self._diagnose_batch_ve(cases, names, on_error)
        diagnose = self.diagnose if deadline is None \
            else self._deadline_diagnose(deadline)
        results: list[Diagnosis | DiagnosisFailure] = []
        for index, case in enumerate(cases):
            results.append(self._diagnose_one(case, index, names, on_error,
                                              diagnose))
        if on_error == "skip":
            return [result for result in results if result is not None]
        return results

    def _diagnose_batch_ve(self, cases, names, on_error):
        """Batched variable-elimination fast path of :meth:`diagnose_batch`.

        Case preparation and evidence validation stay per-case (isolation
        semantics identical to the scalar loop); the posterior updates of
        every valid case run through
        :meth:`~repro.bayesnet.inference.variable_elimination.VariableElimination.posteriors_batch`,
        which shares one elimination sweep per evidence pattern instead of
        one per case.
        """
        results: list[Diagnosis | DiagnosisFailure | None] = [None] * len(cases)
        prepared: list[tuple[int, str, dict[str, str]]] = []
        evidences: list[dict[str, str]] = []
        for index, case in enumerate(cases):
            if isinstance(case, DiagnosticCase):
                name = case.name
                raw = case.raw_evidence()
            else:
                name = names[index] if names is not None else f"case-{index}"
                raw = {str(variable): str(state)
                       for variable, state in case.items()}
            try:
                if not isinstance(case, DiagnosticCase):
                    case = self._case_from_evidence(case, name)
                evidence = validate_evidence(self.model, case.evidence())
                # Surface engine-level evidence problems here, per case, so
                # the shared batched sweep below can never fail as a whole.
                self._engine._validate([], evidence)
            except Exception as error:
                if on_error == "raise":
                    raise
                results[index] = DiagnosisFailure.from_exception(
                    name, raw, error,
                    attempts=tuple(getattr(error, "attempts", ()) or ()),
                    wall_time=float(getattr(error, "wall_time", 0.0) or 0.0))
                continue
            prepared.append((index, name, evidence))
            evidences.append(evidence)

        variable_names = self.model.variable_names
        labels = {variable: self.model.state_table(variable).labels
                  for variable in variable_names}
        for (index, name, evidence), computed in zip(
                prepared,
                self._engine.posteriors_batch(evidences, validated=True)):
            if computed is None:
                error = ImpossibleEvidenceError(
                    "the evidence has zero probability under the model; "
                    "posteriors are undefined", evidence=evidence)
                if on_error == "raise":
                    raise error
                results[index] = DiagnosisFailure.from_exception(
                    name, evidence, error)
                continue
            posteriors: dict[str, dict[str, float]] = {}
            for variable in variable_names:
                if variable in evidence:
                    observed = evidence[variable]
                    posteriors[variable] = {
                        label: 1.0 if label == observed else 0.0
                        for label in labels[variable]}
                else:
                    posteriors[variable] = computed[variable]
            fail = self._internal_fail_probabilities(posteriors)
            results[index] = Diagnosis(
                case_name=name,
                evidence=evidence,
                posteriors=posteriors,
                fail_probabilities=fail,
                suspects=self._deduce_from_fail(fail),
                ranked_candidates=sorted(fail.items(),
                                         key=lambda item: item[1],
                                         reverse=True),
            )
        if on_error == "skip":
            return [result for result in results
                    if isinstance(result, Diagnosis)]
        return results

    def _diagnose_batch_compiled(self, cases, names, on_error):
        """Compiled fast path of :meth:`diagnose_batch`.

        Case preparation and evidence validation stay per-case (isolation
        semantics identical to the scalar loop); valid cases are grouped by
        evidence-variable signature, each group's evidence is encoded into
        one integer state matrix, deduplicated, and pushed through the
        group's :class:`~repro.bayesnet.inference.CompiledProgram` as one
        vectorised ``run_batch`` sweep.
        """
        results: list[Diagnosis | DiagnosisFailure | None] = [None] * len(cases)
        groups: dict[tuple[str, ...],
                     list[tuple[int, str, dict[str, str]]]] = {}
        for index, case in enumerate(cases):
            if isinstance(case, DiagnosticCase):
                name = case.name
                raw = case.raw_evidence()
            else:
                name = names[index] if names is not None else f"case-{index}"
                raw = {str(variable): str(state)
                       for variable, state in case.items()}
            try:
                if not isinstance(case, DiagnosticCase):
                    case = self._case_from_evidence(case, name)
                evidence = validate_evidence(self.model, case.evidence())
            except Exception as error:
                if on_error == "raise":
                    raise
                results[index] = DiagnosisFailure.from_exception(
                    name, raw, error,
                    attempts=tuple(getattr(error, "attempts", ()) or ()),
                    wall_time=float(getattr(error, "wall_time", 0.0) or 0.0))
                continue
            signature = tuple(sorted(evidence))
            groups.setdefault(signature, []).append((index, name, evidence))

        variable_names = self.model.variable_names
        labels = {variable: self.model.state_table(variable).labels
                  for variable in variable_names}
        for signature, slots in groups.items():
            program = self._program_for(signature)
            codes = program.encode([evidence for _, _, evidence in slots])
            unique, inverse = np.unique(codes, axis=0, return_inverse=True)
            inverse = np.asarray(inverse).reshape(-1)
            batch = program.run_batch(unique, on_impossible="mask")
            self.compiled_query_count += len(slots)
            # One marginal-dict set per unique evidence row; duplicated
            # devices share them, exactly like the evidence-cache hits of
            # the interpreted batch path.
            computed_rows: dict[int, dict[str, dict[str, float]]] = {}
            for (index, name, evidence), row in zip(slots, inverse):
                row = int(row)
                if not batch.evidence_probability[row] > 0.0:
                    error = ImpossibleEvidenceError(
                        "the evidence has zero probability under the model; "
                        "posteriors are undefined", evidence=evidence)
                    if on_error == "raise":
                        raise error
                    results[index] = DiagnosisFailure.from_exception(
                        name, evidence, error)
                    continue
                computed = computed_rows.get(row)
                if computed is None:
                    computed = batch.distributions(row)
                    computed_rows[row] = computed
                posteriors: dict[str, dict[str, float]] = {}
                for variable in variable_names:
                    if variable in evidence:
                        observed = evidence[variable]
                        posteriors[variable] = {
                            label: 1.0 if label == observed else 0.0
                            for label in labels[variable]}
                    else:
                        posteriors[variable] = computed[variable]
                fail = self._internal_fail_probabilities(posteriors)
                results[index] = Diagnosis(
                    case_name=name,
                    evidence=evidence,
                    posteriors=posteriors,
                    fail_probabilities=fail,
                    suspects=self._deduce_from_fail(fail),
                    ranked_candidates=sorted(fail.items(),
                                             key=lambda item: item[1],
                                             reverse=True),
                )
        if on_error == "skip":
            return [result for result in results
                    if isinstance(result, Diagnosis)]
        return results

    def _deadline_diagnose(self, deadline: float):
        """Return a per-case diagnose callable sharing a batch deadline."""
        raise DiagnosisError(
            f"{type(self).__name__} does not enforce batch deadlines; use "
            "repro.core.robust.RobustDiagnosisEngine for deadline-bounded "
            "batches")

    def _diagnose_one(self, case, index, names, on_error, diagnose):
        """Run one batch slot through ``diagnose`` under the isolation mode."""
        if isinstance(case, DiagnosticCase):
            name = case.name
            raw = case.raw_evidence()
        else:
            name = names[index] if names is not None else f"case-{index}"
            raw = {str(variable): str(state)
                   for variable, state in case.items()}
        try:
            if not isinstance(case, DiagnosticCase):
                case = self._case_from_evidence(case, name)
            return diagnose(case)
        except Exception as error:
            if on_error == "raise":
                raise
            # Robust serving errors carry their attempt trail; plain engine
            # errors default to an empty one.
            failure = DiagnosisFailure.from_exception(
                name, raw, error,
                attempts=tuple(getattr(error, "attempts", ()) or ()),
                wall_time=float(getattr(error, "wall_time", 0.0) or 0.0))
            return failure if on_error == "collect" else None

    def diagnose_measurements(self, conditions: Mapping[str, float],
                              measurements: Mapping[str, float],
                              name: str = "adhoc") -> Diagnosis:
        """Diagnose from raw voltages: discretise, then diagnose.

        ``conditions`` are the forced controllable voltages, ``measurements``
        the measured observable voltages of the failing device.  Voltages
        that cannot be discretised (unknown block, non-numeric or
        out-of-range value under a strict discretiser) raise a structured
        :class:`~repro.exceptions.EvidenceError` naming every bad entry.
        """
        discretizer = self.built_model.discretizer
        evidence: dict[str, str] = {}
        issues: list[EvidenceIssue] = []
        for section in (conditions, measurements):
            for variable, value in section.items():
                try:
                    evidence[variable] = discretizer.classify(
                        variable, float(value))
                except (ReproError, TypeError, ValueError) as error:
                    issues.append(EvidenceIssue(
                        "bad-measurement", str(variable), str(value),
                        f"cannot discretise: {error}"))
        if issues:
            raise EvidenceError(
                f"measurements for case {name!r} have {len(issues)} "
                "problem(s): " + "; ".join(str(issue) for issue in issues),
                issues=tuple(issues))
        return self.diagnose_evidence(evidence, name=name)
