"""Conversion of ATE test data into BBN learning cases.

A *case* is one row of learning data: the state of every model variable of
the circuit for one device under one test condition, with ``None`` for
variables whose state is unknown (the internal, non-observable blocks are
*always* unknown in real test data).  The paper's Dlog2BBN tool automates
exactly this conversion from ATE test files; :class:`CaseGenerator` does the
same from parsed datalogs or directly from simulated device results.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.ate.datalog import DeviceDatalog
from repro.ate.store import DeviceResultStore
from repro.ate.tester import DeviceResult
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.core.circuit_model import CircuitModelDescription
from repro.exceptions import CaseGenerationError

#: A learning case: model variable -> state label (or ``None`` when unknown).
Case = dict[str, object]


@dataclasses.dataclass(frozen=True)
class LabeledCase:
    """A case together with its provenance (device and condition label).

    Attributes
    ----------
    device_id:
        The device the case was generated from.
    condition_label:
        A label identifying the test condition group (derived from the forced
        conditions), so that multiple cases of the same device stay
        distinguishable.
    assignments:
        The case proper: state label per model variable, ``None`` when the
        variable's state is unknown for this device/condition.
    failed:
        ``True`` when the underlying measurements contain at least one
        specification failure.
    """

    device_id: str
    condition_label: str
    assignments: Case
    failed: bool

    def observed(self) -> dict[str, str]:
        """Return only the known (non-``None``) assignments."""
        return {variable: str(state)
                for variable, state in self.assignments.items()
                if state is not None}


class CaseGenerator:
    """Generates learning cases from ATE data for one circuit model.

    Parameters
    ----------
    model:
        The circuit-model description (provides the discretiser and the
        variable roles).
    include_internal:
        Internal (non-observable) variables are emitted as ``None`` by
        default — their state is never measured.  Tests may set this to
        ``True`` together with simulator ground truth to build "oracle"
        cases.
    """

    def __init__(self, model: CircuitModelDescription,
                 include_internal: bool = False) -> None:
        self.model = model
        self.include_internal = bool(include_internal)
        self._discretizer = model.discretizer()

    # ----------------------------------------------------------------- helpers
    def _empty_case(self) -> Case:
        return {variable: None for variable in self.model.variable_names}

    @staticmethod
    def _condition_label(conditions: Mapping[str, float]) -> str:
        return ";".join(f"{block}={value:g}"
                        for block, value in sorted(conditions.items()))

    def _classify_conditions(self, case: Case,
                             conditions: Mapping[str, float]) -> None:
        for variable, value in conditions.items():
            if variable not in self.model.variable_names:
                continue
            if not self.model.variable(variable).is_controllable:
                raise CaseGenerationError(
                    f"datalog forces {variable!r}, which is not a controllable "
                    "model variable")
            case[variable] = self._discretizer.classify(variable, float(value))

    # -------------------------------------------------------- from device data
    def cases_from_device_result(self, result: DeviceResult) -> list[LabeledCase]:
        """Return one case per distinct test condition of one device result."""
        groups: dict[str, list] = {}
        for measurement in result.measurements:
            groups.setdefault(self._condition_label(measurement.conditions),
                              []).append(measurement)
        cases: list[LabeledCase] = []
        for label, measurements in groups.items():
            case = self._empty_case()
            self._classify_conditions(case, measurements[0].conditions)
            failed = False
            for measurement in measurements:
                if measurement.block not in self.model.variable_names:
                    continue
                case[measurement.block] = self._discretizer.classify(
                    measurement.block, measurement.value)
                failed = failed or not measurement.passed
            cases.append(LabeledCase(device_id=result.device_id,
                                     condition_label=label,
                                     assignments=case, failed=failed))
        return cases

    def cases_from_results(self, results: Iterable[DeviceResult],
                           only_failing_devices: bool = False) -> list[LabeledCase]:
        """Return the cases of many device results.

        Devices that ran the same test program are grouped and processed as
        one batch: the test conditions are labelled and classified once per
        group (not once per device) and every measurement column is
        discretised with one array classification.  The output is identical
        to concatenating :meth:`cases_from_device_result` per device — the
        equivalence tests pin that.

        Parameters
        ----------
        only_failing_devices:
            When ``True``, devices that passed every specification test are
            skipped (the paper's cases come from failed products only).
        """
        selected = [result for result in results
                    if result.failed or not only_failing_devices]
        if not selected:
            return []
        # Group devices by program structure.  Condition labels are cached by
        # conditions-mapping identity: the batched tester shares one mapping
        # per test across the whole population, so each label is computed
        # once per test rather than once per measurement.
        label_cache: dict[int, str] = {}
        groups: dict[tuple, list[int]] = {}
        for position, result in enumerate(selected):
            signature = tuple(
                (m.test_number, m.block,
                 self._cached_condition_label(m.conditions, label_cache))
                for m in result.measurements)
            groups.setdefault(signature, []).append(position)
        cases_per_result: list[list[LabeledCase]] = [[] for _ in selected]
        for signature, positions in groups.items():
            self._cases_for_group(signature, [selected[p] for p in positions],
                                  positions, cases_per_result)
        cases: list[LabeledCase] = []
        for device_cases in cases_per_result:
            cases.extend(device_cases)
        return cases

    def _cached_condition_label(self, conditions: Mapping[str, float],
                                cache: dict[int, str]) -> str:
        key = id(conditions)
        label = cache.get(key)
        if label is None:
            label = self._condition_label(conditions)
            cache[key] = label
        return label

    def _cases_for_group(self, signature: tuple,
                         group_results: Sequence[DeviceResult],
                         positions: Sequence[int],
                         sink: list[list[LabeledCase]]) -> None:
        """Emit the cases of one same-program device group into ``sink``."""
        if not signature:
            return
        variable_names = set(self.model.variable_names)
        values = np.array([[m.value for m in result.measurements]
                           for result in group_results])
        passed = np.array([[m.passed for m in result.measurements]
                           for result in group_results], dtype=bool)
        # Measurement positions per condition label, first-occurrence order.
        condition_groups: dict[str, list[int]] = {}
        for index, (_, _, label) in enumerate(signature):
            condition_groups.setdefault(label, []).append(index)
        prototypes = []
        for label, measurement_positions in condition_groups.items():
            base = self._empty_case()
            first = group_results[0].measurements[measurement_positions[0]]
            self._classify_conditions(base, first.conditions)
            model_positions = [index for index in measurement_positions
                               if signature[index][1] in variable_names]
            column_labels = {
                index: self._discretizer.classify_array(signature[index][1],
                                                        values[:, index])
                for index in model_positions}
            if model_positions:
                failed_rows = ~passed[:, model_positions].all(axis=1)
            else:
                failed_rows = np.zeros(len(group_results), dtype=bool)
            prototypes.append((label, model_positions, base, column_labels,
                               failed_rows))
        for device, (result, position) in enumerate(zip(group_results, positions)):
            device_cases = []
            for label, model_positions, base, column_labels, failed_rows in prototypes:
                case = dict(base)
                for index in model_positions:
                    case[signature[index][1]] = column_labels[index][device]
                device_cases.append(LabeledCase(
                    device_id=result.device_id, condition_label=label,
                    assignments=case, failed=bool(failed_rows[device])))
            sink[position] = device_cases

    # ----------------------------------------------------------- from datalogs
    def cases_from_datalog(self, datalog: DeviceDatalog) -> list[LabeledCase]:
        """Return one case per distinct test condition of one device datalog."""
        groups: dict[str, list] = {}
        for record in datalog.records:
            groups.setdefault(self._condition_label(record.conditions),
                              []).append(record)
        cases: list[LabeledCase] = []
        for label, records in groups.items():
            case = self._empty_case()
            self._classify_conditions(case, records[0].conditions)
            failed = False
            for record in records:
                if record.block not in self.model.variable_names:
                    continue
                case[record.block] = self._discretizer.classify(
                    record.block, record.value)
                failed = failed or not record.passed
            cases.append(LabeledCase(device_id=datalog.device_id,
                                     condition_label=label,
                                     assignments=case, failed=failed))
        return cases

    def cases_from_datalogs(self, datalogs: Iterable[DeviceDatalog],
                            only_failing_devices: bool = False
                            ) -> list[LabeledCase]:
        """Return the cases of many device datalogs."""
        cases: list[LabeledCase] = []
        for datalog in datalogs:
            if only_failing_devices and not datalog.failed:
                continue
            cases.extend(self.cases_from_datalog(datalog))
        return cases

    # ---------------------------------------------------------- columnar path
    def case_matrix(self, source, only_failing_devices: bool = False
                    ) -> CaseMatrix:
        """Return the learning cases of a population as a :class:`CaseMatrix`.

        ``source`` may be a columnar :class:`DeviceResultStore` (the fast
        path: every measurement column is discretised with one
        ``classify_indices`` call and no per-case Python objects are built),
        a sequence of :class:`DeviceResult` rows, or a sequence of
        :class:`LabeledCase` rows.  The emitted rows are identical (same
        order, same states, same provenance) to
        :meth:`cases_from_results` — the columnar equivalence suite pins
        this.

        Store-backed matrices are memoised on the store (keyed by model,
        internal-variable setting and the failing-devices filter): stores are
        append-free once built, so the same population discretised by
        several builds — the ablation/serving pattern — pays for one pass.
        Callers must treat the returned matrix as read-only.
        """
        if isinstance(source, DeviceResultStore):
            key = (self.model, self.include_internal,
                   bool(only_failing_devices), self._discretizer.strict)
            cache = source.__dict__.setdefault("_case_matrix_cache", {})
            matrix = cache.get(key)
            if matrix is None:
                matrix = self._case_matrix_from_store(source,
                                                      only_failing_devices)
                cache[key] = matrix
            return matrix
        source = list(source)
        if source and isinstance(source[0], LabeledCase):
            if only_failing_devices:
                failing = {case.device_id for case in source if case.failed}
                source = [case for case in source
                          if case.device_id in failing]
            return CaseMatrix.from_labeled_cases(
                source, self._discretizer.state_names(),
                self.model.variable_names)
        return CaseMatrix.from_labeled_cases(
            self.cases_from_results(source, only_failing_devices),
            self._discretizer.state_names(), self.model.variable_names)

    def _case_matrix_from_store(self, store: DeviceResultStore,
                                only_failing_devices: bool) -> CaseMatrix:
        """Discretise a columnar store straight into a case matrix."""
        if only_failing_devices:
            mask = store.failed_mask()
            if not mask.all():
                store = store.select(mask)
        variables = self.model.variable_names
        variable_set = set(variables)
        column_of = {variable: column
                     for column, variable in enumerate(variables)}
        state_names = self._discretizer.state_names()
        devices = store.device_count
        tests = store.test_count
        if devices == 0 or tests == 0:
            return CaseMatrix(variables,
                              np.empty((0, len(variables)), dtype=np.int16),
                              state_names, [], [], np.zeros(0, dtype=bool))
        # Condition groups in first-occurrence order, as in the row path.
        condition_groups: dict[str, list[int]] = {}
        for index, conditions in enumerate(store.conditions):
            condition_groups.setdefault(self._condition_label(conditions),
                                        []).append(index)
        groups = len(condition_groups)
        codes = np.full((devices, groups, len(variables)), -1, dtype=np.int16)
        failed = np.zeros((devices, groups), dtype=bool)
        labels: list[str] = []
        strict = self._discretizer.strict
        for slot, (label, rows) in enumerate(condition_groups.items()):
            labels.append(label)
            for variable, value in store.conditions[rows[0]].items():
                if variable not in variable_set:
                    continue
                if not self.model.variable(variable).is_controllable:
                    raise CaseGenerationError(
                        f"datalog forces {variable!r}, which is not a "
                        "controllable model variable")
                table = self._discretizer.table(variable)
                codes[:, slot, column_of[variable]] = table.classify_indices(
                    [float(value)], strict=strict)[0]
            model_rows = [row for row in rows
                          if store.blocks[row] in variable_set]
            # Later tests of the group overwrite earlier ones for the same
            # block, matching the row path's assignment order.
            for row in model_rows:
                block = store.blocks[row]
                table = self._discretizer.table(block)
                codes[:, slot, column_of[block]] = table.classify_indices(
                    store.values[row], strict=strict)
            if model_rows:
                failed[:, slot] = ~store.passed[model_rows].all(axis=0)
        # Provenance rows share one string object per device / per condition
        # group: at ATE scale a fresh string per row would cost more resident
        # memory than every measurement plane combined (the memory-ceiling
        # smoke in the CPT-learning benchmark pins this).
        unique_ids = [str(device_id) for device_id in store.device_ids]
        matrix = CaseMatrix(
            variables, codes.reshape(devices * groups, len(variables)),
            state_names,
            [device_id for device_id in unique_ids for _ in range(groups)],
            labels * devices,
            failed.reshape(devices * groups))
        return matrix

    # -------------------------------------------------------------- conversion
    @staticmethod
    def as_learning_cases(cases: Sequence[LabeledCase]) -> list[Case]:
        """Strip provenance and return plain learning cases for the estimators."""
        return [dict(case.assignments) for case in cases]
