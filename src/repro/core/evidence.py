"""Evidence validation and sanitisation for diagnosis serving.

Real returned-device logs are noisy: ATE exports misspell block names, carry
states from a stale test-program revision, or record the same block both as a
forced condition and as a measured response with contradictory values.  The
paper's diagnostic mode (Section III-B) assumes clean data; this module is
the boundary that makes the serving layer safe against the dirty kind.

Two entry points share one issue taxonomy:

:func:`validate_evidence`
    Collects *every* defect of an evidence mapping into structured
    :class:`EvidenceIssue` records and raises a single
    :class:`~repro.exceptions.EvidenceError` carrying all of them — a
    serving layer reports the whole case's problems at once instead of
    failing on the first.

:func:`sanitize_evidence`
    Repairs what it can (string coercion, whitespace, case-insensitive
    label match, integer state indices) and drops what it cannot, returning
    the cleaned mapping together with the issue records — the "keep
    answering, scoped to what the evidence supports" mode.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.core.circuit_model import CircuitModelDescription
from repro.exceptions import EvidenceError

#: Issue kinds, in the order sanitisation examines an entry.
UNKNOWN_VARIABLE = "unknown-variable"
UNKNOWN_STATE = "unknown-state"
CONFLICT = "conflicting-entry"
REPAIRED_STATE = "repaired-state"


@dataclasses.dataclass(frozen=True)
class EvidenceIssue:
    """One structured defect of an evidence mapping.

    Attributes
    ----------
    kind:
        One of ``"unknown-variable"``, ``"unknown-state"``,
        ``"conflicting-entry"`` or ``"repaired-state"`` (the latter only
        from :func:`sanitize_evidence`, recording a successful repair).
    variable:
        The offending evidence key as supplied.
    state:
        The offending state value as supplied (``None`` for conflicts).
    detail:
        Human-readable explanation with the legal alternatives.
    """

    kind: str
    variable: str
    state: str | None
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.kind}] {self.variable}: {self.detail}"


def _coerce_state(table_labels: list[str], state: object) -> str | None:
    """Try to repair ``state`` onto one of ``table_labels``; None if hopeless."""
    if isinstance(state, bool):
        return None
    if isinstance(state, int) and not isinstance(state, bool):
        if 0 <= state < len(table_labels):
            return table_labels[state]
        return None
    text = str(state).strip()
    if text in table_labels:
        return text
    lowered = text.lower()
    matches = [label for label in table_labels if label.lower() == lowered]
    if len(matches) == 1:
        return matches[0]
    return None


def validate_evidence(model: CircuitModelDescription,
                      evidence: Mapping[str, object]) -> dict[str, str]:
    """Check an evidence mapping and return it normalised to string states.

    Every defect — unknown model variable, illegal state label — is
    collected; if any exist an :class:`EvidenceError` carrying all the
    :class:`EvidenceIssue` records is raised.  State values are normalised
    with ``str()`` (matching what :meth:`DiagnosticCase.evidence` does), so
    integer-valued datalog columns that happen to match a label pass.
    """
    known = set(model.variable_names)
    issues: list[EvidenceIssue] = []
    normalised: dict[str, str] = {}
    for variable, state in evidence.items():
        if variable not in known:
            issues.append(EvidenceIssue(
                UNKNOWN_VARIABLE, str(variable), str(state),
                f"not one of the {len(known)} model variables of "
                f"{model.name!r}"))
            continue
        labels = model.state_table(variable).labels
        text = str(state)
        if text not in labels:
            issues.append(EvidenceIssue(
                UNKNOWN_STATE, variable, text,
                f"not a usable state; known states: {labels}"))
            continue
        normalised[variable] = text
    if issues:
        raise EvidenceError(
            f"evidence for {model.name!r} has {len(issues)} problem(s): "
            + "; ".join(str(issue) for issue in issues),
            issues=tuple(issues))
    return normalised


def sanitize_evidence(model: CircuitModelDescription,
                      evidence: Mapping[str, object],
                      ) -> tuple[dict[str, str], tuple[EvidenceIssue, ...]]:
    """Repair or drop bad evidence entries instead of raising.

    Returns ``(clean_evidence, issues)``.  Unknown variables are dropped;
    unknown states are repaired when an unambiguous coercion exists
    (whitespace stripping, case-insensitive label match, in-range integer
    state index) and dropped otherwise.  Every drop *and* every repair is
    recorded as an :class:`EvidenceIssue`, so callers can attach the list to
    a diagnosis' provenance and distinguish a clean case from a salvaged
    one.
    """
    known = set(model.variable_names)
    issues: list[EvidenceIssue] = []
    clean: dict[str, str] = {}
    for variable, state in evidence.items():
        if variable not in known:
            issues.append(EvidenceIssue(
                UNKNOWN_VARIABLE, str(variable), str(state),
                "dropped: not a model variable"))
            continue
        labels = model.state_table(variable).labels
        text = str(state)
        if text in labels:
            clean[variable] = text
            continue
        repaired = _coerce_state(labels, state)
        if repaired is None:
            issues.append(EvidenceIssue(
                UNKNOWN_STATE, variable, text,
                f"dropped: no usable state matches; known states: {labels}"))
        else:
            issues.append(EvidenceIssue(
                REPAIRED_STATE, variable, text,
                f"repaired {state!r} -> {repaired!r}"))
            clean[variable] = repaired
    return clean, tuple(issues)


def merge_case_evidence(controllable: Mapping[str, object],
                        observable: Mapping[str, object]) -> dict[str, str]:
    """Merge a case's controllable and observable states into one mapping.

    A variable listed in both sections with *different* states is a
    contradiction in the source datalog — the tester cannot have forced one
    state and measured another on the same block — and raises an
    :class:`EvidenceError` naming every conflicting block.  Agreeing
    duplicates merge silently.
    """
    merged = {variable: str(state) for variable, state in controllable.items()}
    issues: list[EvidenceIssue] = []
    for variable, state in observable.items():
        text = str(state)
        previous = merged.get(variable)
        if previous is not None and previous != text:
            issues.append(EvidenceIssue(
                CONFLICT, variable, None,
                f"controllable state {previous!r} contradicts observable "
                f"state {text!r}"))
            continue
        merged[variable] = text
    if issues:
        raise EvidenceError(
            "conflicting controllable/observable entries for: "
            + ", ".join(issue.variable for issue in issues),
            issues=tuple(issues))
    return merged
