"""Dlog2BBN — the BBN circuit-model builder.

The paper's Dlog2BBN tool "assists a design and test engineer to build a BBN
circuit model of an analogue circuit": it takes the model variables with
their functional types, usable states and test definitions, converts ATE test
files into cases, and produces the structure and parameters of the BBN.

:class:`Dlog2BBN` reproduces that pipeline:

* the *structure* comes from the circuit-model description's dependency arcs;
* the *designer prior* CPTs are generated from the healthy-state annotations
  (the "rough estimate of the conditional probability tables" the product
  designer initially provided in the paper), or supplied explicitly;
* the *parameters* are fine-tuned from learning cases with the estimator of
  choice — Bayesian (Dirichlet) updating for fully observed cases or
  Expectation–Maximisation when the cases contain unknown (internal) block
  states, which is the realistic situation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import math

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.learning import (
    BayesianEstimator,
    CaseMatrix,
    ExpectationMaximization,
    MaximumLikelihoodEstimator,
)
from repro.bayesnet.network import BayesianNetwork
from repro.core.case_generation import Case, CaseGenerator, LabeledCase
from repro.core.circuit_model import CircuitModelDescription
from repro.core.states import Discretizer
from repro.exceptions import ModelBuildError


@dataclasses.dataclass
class BuiltModel:
    """The output of the model builder.

    Attributes
    ----------
    description:
        The circuit-model description the network was built from.
    network:
        The learned Bayesian network (structure + CPTs).
    prior_network:
        The designer-prior network the learning started from.
    discretizer:
        Discretiser mapping measurements onto the network's states.
    healthy_states:
        The healthy-state annotation used for priors and candidate deduction.
    training_case_count:
        Number of learning cases used for fine-tuning.
    """

    description: CircuitModelDescription
    network: BayesianNetwork
    prior_network: BayesianNetwork
    discretizer: Discretizer
    healthy_states: dict[str, str]
    training_case_count: int


def validate_built_network(model: CircuitModelDescription,
                           network: BayesianNetwork,
                           context: str = "built network",
                           atol: float = 1e-6) -> None:
    """Validate a network's CPDs against the circuit-model description.

    Learned parameters can silently go bad — an estimator dividing by a zero
    count produces NaN columns, a hand-supplied prior can disagree with the
    model's usable-state tables — and a bad table surfaces much later as a
    nonsense posterior.  This check fails the build instead, collecting every
    defect before raising one :class:`ModelBuildError`:

    * a CPD exists for every model variable;
    * its cardinality and state labels match the model's state table;
    * its table has the declared shape, only finite non-negative entries,
      and every parent-configuration column sums to 1 (within ``atol``).

    A passing validation is memoised on the network against the model object
    and the network's ``cpd_version``, so a long-lived prior network (the
    common case: one designer prior reused across many builds) is walked
    once, not once per build.  In-place table mutation stays undetectable,
    as with every ``cpd_version``-keyed cache.
    """
    stamp = (model, network.cpd_version, atol)
    previous = network.__dict__.get("_built_validation")
    if (previous is not None and previous[0] is model
            and previous[1:] == stamp[1:]):
        return
    issues: list[str] = []
    for variable in model.variable_names:
        try:
            cpd = network.get_cpd(variable)
        except Exception:
            issues.append(f"{variable!r}: no CPD attached")
            continue
        table_def = model.state_table(variable)
        if cpd.cardinality != table_def.cardinality:
            issues.append(
                f"{variable!r}: CPD cardinality {cpd.cardinality} != "
                f"{table_def.cardinality} usable states")
            continue
        labels = list(cpd.state_names.get(variable, ()))
        if labels != list(table_def.labels):
            issues.append(
                f"{variable!r}: CPD state labels {labels} != usable states "
                f"{list(table_def.labels)}")
        table = np.asarray(cpd.table, dtype=float)
        columns = math.prod(cpd.parent_cardinalities) \
            if cpd.parent_cardinalities else 1
        if table.shape != (cpd.cardinality, columns):
            issues.append(
                f"{variable!r}: CPD table shape {table.shape} != "
                f"({cpd.cardinality}, {columns})")
            continue
        # One reduction each for the happy path; a probability table whose
        # grand total is finite has no NaN/inf entries.
        if not np.isfinite(table.sum()):
            issues.append(f"{variable!r}: CPD table has NaN/inf entries")
            continue
        if table.min() < 0.0:
            issues.append(f"{variable!r}: CPD table has negative entries")
        sums = table.sum(axis=0)
        errors = np.abs(sums - 1.0)
        if errors.max() > atol:
            bad = np.flatnonzero(errors > atol)
            issues.append(
                f"{variable!r}: {bad.size} parent-configuration column(s) "
                f"not normalised (first: column {bad[0]} sums to "
                f"{sums[bad[0]]:.6f})")
    if issues:
        raise ModelBuildError(
            f"{context} failed validation ({len(issues)} issue(s)):\n  - "
            + "\n  - ".join(issues))
    network.__dict__["_built_validation"] = stamp


class Dlog2BBN:
    """Builds BBN circuit models from circuit descriptions and ATE cases.

    Parameters
    ----------
    model:
        The circuit-model description (variables, states, dependencies).
    healthy_states:
        State label of defect-free operation per model variable; required for
        the generated designer prior and passed through to diagnosis.
    healthy_given_healthy:
        Prior probability that a block is in its healthy state when every
        parent is healthy (the designer's "it practically always works when
        its inputs are fine" estimate).
    healthy_given_faulty:
        Prior probability that a block is in its healthy state when at least
        one parent is *not* healthy (how strongly upstream failures propagate).
    root_healthy:
        Prior probability of the healthy state for root (parent-less)
        variables; the remainder is spread over the other states.
    """

    def __init__(self, model: CircuitModelDescription,
                 healthy_states: Mapping[str, str],
                 healthy_given_healthy: float = 0.9,
                 healthy_given_faulty: float = 0.2,
                 root_healthy: float = 0.6) -> None:
        self.model = model
        self.healthy_states = {variable: str(state)
                               for variable, state in healthy_states.items()}
        missing = [variable for variable in model.variable_names
                   if variable not in self.healthy_states]
        if missing:
            raise ModelBuildError(
                f"healthy_states is missing model variables: {missing}")
        for variable, state in self.healthy_states.items():
            table = model.state_table(variable)
            if state not in table.labels:
                raise ModelBuildError(
                    f"healthy state {state!r} of {variable!r} is not one of its "
                    f"usable states {table.labels}")
        for name, value in (("healthy_given_healthy", healthy_given_healthy),
                            ("healthy_given_faulty", healthy_given_faulty),
                            ("root_healthy", root_healthy)):
            if not 0.0 < value < 1.0:
                raise ModelBuildError(f"{name} must be in (0, 1), got {value}")
        self.healthy_given_healthy = float(healthy_given_healthy)
        self.healthy_given_faulty = float(healthy_given_faulty)
        self.root_healthy = float(root_healthy)

    # --------------------------------------------------------------- structure
    def build_structure(self) -> BayesianNetwork:
        """Return the bare BBN structure (nodes and dependency arcs, no CPTs).

        The structure depends only on the (immutable) model description, so
        the acyclicity-checked construction runs once; later calls return an
        independent copy of the cached DAG.
        """
        cached = self.__dict__.get("_structure_cache")
        if cached is None:
            cached = BayesianNetwork(nodes=self.model.variable_names)
            for parent, child in self.model.dependencies:
                cached.add_edge(parent, child)
            self.__dict__["_structure_cache"] = cached
        return cached.copy()

    # ------------------------------------------------------------------ priors
    def _prior_cpd(self, network: BayesianNetwork, node: str) -> TabularCPD:
        table_def = self.model.state_table(node)
        labels = table_def.labels
        cardinality = table_def.cardinality
        healthy_index = labels.index(self.healthy_states[node])
        parents = network.parents(node)
        parent_tables = [self.model.state_table(p) for p in parents]
        parent_cards = [t.cardinality for t in parent_tables]
        state_names = {node: labels}
        state_names.update({p: t.labels for p, t in zip(parents, parent_tables)})

        if not parents:
            column = np.full(cardinality, (1.0 - self.root_healthy) / (cardinality - 1))
            column[healthy_index] = self.root_healthy
            return TabularCPD(node, cardinality, column.reshape(-1, 1),
                              state_names={node: labels})

        columns = math.prod(parent_cards)
        table = np.empty((cardinality, columns))
        healthy_parent_indices = [
            t.labels.index(self.healthy_states[p])
            for p, t in zip(parents, parent_tables)]
        for column in range(columns):
            # Decode the column into per-parent state indices (last parent
            # varies fastest, matching TabularCPD's convention).
            remainder = column
            indices = [0] * len(parents)
            for position in range(len(parents) - 1, -1, -1):
                indices[position] = remainder % parent_cards[position]
                remainder //= parent_cards[position]
            all_parents_healthy = all(
                index == healthy
                for index, healthy in zip(indices, healthy_parent_indices))
            healthy_probability = (self.healthy_given_healthy if all_parents_healthy
                                   else self.healthy_given_faulty)
            distribution = np.full(
                cardinality, (1.0 - healthy_probability) / (cardinality - 1))
            distribution[healthy_index] = healthy_probability
            table[:, column] = distribution
        return TabularCPD(node, cardinality, table, parents, parent_cards,
                          state_names)

    def designer_prior_network(self) -> BayesianNetwork:
        """Return the designer-estimate network (structure + prior CPTs).

        The prior encodes the health-propagation intuition a product designer
        supplies: a block is almost certainly in its operational state when
        its parents are, and most probably not when any parent is broken.

        The prior depends only on the (immutable) model description and the
        builder's health parameters, so it is generated once and copied per
        call.
        """
        cached = self.__dict__.get("_designer_prior_cache")
        if cached is None:
            cached = self.build_structure()
            for node in cached.nodes:
                cached.add_cpd(self._prior_cpd(cached, node))
            cached.check_model()
            self.__dict__["_designer_prior_cache"] = cached
        return cached.copy()

    # ---------------------------------------------------------------- building
    def case_generator(self, include_internal: bool = False) -> CaseGenerator:
        """Return a case generator bound to this circuit model."""
        return CaseGenerator(self.model, include_internal=include_internal)

    def build(self, cases: Sequence[LabeledCase | Case] | CaseMatrix = (),
              method: str = "em",
              prior_network: BayesianNetwork | None = None,
              equivalent_sample_size: float = 20.0,
              max_iterations: int = 20) -> BuiltModel:
        """Build the BBN circuit model.

        Parameters
        ----------
        cases:
            Learning cases (labelled, plain, or an integer-encoded
            :class:`CaseMatrix` — the array-native fast path).  With no
            cases the designer prior is returned unchanged — the model is
            still usable, just not fine-tuned.
        method:
            ``"em"`` (default; handles unknown internal states),
            ``"bayes"`` (Dirichlet updating of the prior; unknown states are
            simply not counted) or ``"mle"`` (pure counting, no prior).
        prior_network:
            Designer prior; generated from the healthy-state annotation when
            omitted.
        equivalent_sample_size:
            Pseudo-count weight of the prior during fine-tuning.
        max_iterations:
            EM iteration cap (ignored by the other methods).
        """
        if method not in ("em", "bayes", "mle"):
            raise ModelBuildError(
                f"unknown learning method {method!r}; use 'em', 'bayes' or 'mle'")
        if isinstance(cases, CaseMatrix):
            fit_cases: CaseMatrix | list[Case] = cases
        else:
            plain_cases: list[Case] = []
            for case in cases:
                if isinstance(case, LabeledCase):
                    plain_cases.append(dict(case.assignments))
                else:
                    plain_cases.append(dict(case))
            fit_cases = plain_cases

        if prior_network is not None:
            validate_built_network(self.model, prior_network,
                                   context="supplied prior network")
            prior = prior_network.copy()
        else:
            prior = self.designer_prior_network()
        structure = self.build_structure()
        cardinalities = self.model.cardinalities()
        state_names = self.model.state_names()

        case_count = len(fit_cases)
        if case_count == 0:
            network = prior.copy()
        elif method == "em":
            learner = ExpectationMaximization(
                structure, initial_network=prior, prior_network=prior,
                equivalent_sample_size=equivalent_sample_size,
                cardinalities=cardinalities, state_names=state_names,
                max_iterations=max_iterations)
            network = learner.fit(fit_cases)
        elif method == "bayes":
            learner = BayesianEstimator(
                structure, prior_network=prior,
                equivalent_sample_size=equivalent_sample_size,
                cardinalities=cardinalities, state_names=state_names)
            network = learner.fit(fit_cases)
        else:
            learner = MaximumLikelihoodEstimator(
                structure, cardinalities=cardinalities, state_names=state_names)
            network = learner.fit(fit_cases)

        validate_built_network(self.model, network,
                               context=f"network learned with {method!r}"
                               if case_count else "designer prior network")
        return BuiltModel(description=self.model, network=network,
                          prior_network=prior,
                          discretizer=self.model.discretizer(),
                          healthy_states=dict(self.healthy_states),
                          training_case_count=case_count)
