"""Table-VI/VII-style diagnostic reports.

Table VII of the paper lists, for every model variable and every usable
state, the voltage limits, the remark, the initial (post-learning) state
probability and the updated probability for each diagnostic case d1–d5.
:class:`DiagnosticReport` regenerates that table from a built model and a
list of diagnoses, and :func:`case_summary_table` regenerates the Table VI
case-summary view.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.core.diagnosis import Diagnosis, DiagnosticCase
from repro.core.model_builder import BuiltModel
from repro.exceptions import DiagnosisError
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class ReportColumn:
    """One probability column of the report (Init.% or one diagnostic case)."""

    label: str
    probabilities: Mapping[str, Mapping[str, float]]


class DiagnosticReport:
    """Builds the Table-VII-style per-state probability report.

    Parameters
    ----------
    built_model:
        The built BBN circuit model (provides variables, states, limits).
    initial_probabilities:
        The prior marginals after parameter learning (the ``Init.%`` column).
    diagnoses:
        One :class:`Diagnosis` per diagnostic case, in column order.
    """

    def __init__(self, built_model: BuiltModel,
                 initial_probabilities: Mapping[str, Mapping[str, float]],
                 diagnoses: Sequence[Diagnosis] = ()) -> None:
        self.built_model = built_model
        self.model = built_model.description
        self.columns: list[ReportColumn] = [
            ReportColumn("Init", initial_probabilities)]
        for diagnosis in diagnoses:
            self.columns.append(ReportColumn(diagnosis.case_name,
                                             diagnosis.posteriors))

    # --------------------------------------------------------------------- rows
    def rows(self) -> list[list[object]]:
        """Return one row per (variable, state): limits, remark and probabilities."""
        rows: list[list[object]] = []
        for variable in self.model.variable_names:
            table = self.model.state_table(variable)
            for state in table.states:
                row: list[object] = [variable, state.label,
                                     f"{state.lower:g}", f"{state.upper:g}",
                                     state.remark]
                for column in self.columns:
                    distribution = column.probabilities.get(variable)
                    if distribution is None:
                        raise DiagnosisError(
                            f"column {column.label!r} has no probabilities for "
                            f"variable {variable!r}")
                    probability = float(distribution.get(state.label, 0.0))
                    row.append(f"{probability * 100.0:.1f}")
                rows.append(row)
        return rows

    def header(self) -> list[str]:
        """Return the report header."""
        return (["MVar.", "State", "LL.(Volts)", "UL.(Volts)", "Remarks"]
                + [f"{column.label}.(%)" for column in self.columns])

    def to_text(self, title: str = "Diagnostic case studies: model variable "
                                   "state probabilities") -> str:
        """Render the report as an aligned ASCII table (Table VII)."""
        return format_table(self.header(), self.rows(), title=title)

    # ----------------------------------------------------------------- queries
    def probability(self, column_label: str, variable: str, state: str) -> float:
        """Return one cell of the report (probability, not percent)."""
        for column in self.columns:
            if column.label == column_label:
                return float(column.probabilities[variable][state])
        raise DiagnosisError(f"no report column labelled {column_label!r}")


def case_summary_table(cases: Sequence[DiagnosticCase],
                       diagnoses: Sequence[Diagnosis] | None = None) -> str:
    """Render the Table-VI-style case summary.

    One row per case listing the controllable states (test conditions), the
    observable states (responses), the expert/ground-truth fail blocks and —
    when diagnoses are supplied — the suspect blocks the engine deduced.
    """
    header = ["Case", "Controllable states", "Observable states",
              "Expected fail blocks"]
    diagnosis_by_case: dict[str, Diagnosis] = {}
    if diagnoses is not None:
        header.append("Deduced suspects")
        diagnosis_by_case = {diagnosis.case_name: diagnosis
                             for diagnosis in diagnoses}
    rows: list[list[str]] = []
    for case in cases:
        controllable = ", ".join(f"{variable}={state}"
                                 for variable, state in case.controllable_states.items())
        observable = ", ".join(f"{variable}={state}"
                               for variable, state in case.observable_states.items())
        expected = ", ".join(case.expected_fail_blocks) or "-"
        row = [case.name, controllable, observable, expected]
        if diagnoses is not None:
            diagnosis = diagnosis_by_case.get(case.name)
            row.append(", ".join(diagnosis.suspects) if diagnosis else "-")
        rows.append(row)
    return format_table(header, rows,
                        title="Summarising diagnostic case studies and results")
