"""State definitions and measurement discretisation.

Table II and Table VII of the paper define, for every model variable, a set
of *usable states*, each bounded by a lower and an upper limit (in volts) and
annotated with a remark ("Non-Operational", "in regulation", ...).  The
states are how continuous measurements become discrete BBN evidence.

The paper's state windows are allowed to overlap (the enable-pin variables
deliberately define a narrow "bad state" window inside a wider "good state"
window).  :class:`Discretizer` therefore resolves a measurement to a state by
*priority*: the first state in definition order whose window contains the
value wins, which reproduces the test-specification semantics ("check the
tight window first, fall back to the wide one").
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import StateDefinitionError


@dataclasses.dataclass(frozen=True)
class StateDefinition:
    """One usable state of a model variable.

    Attributes
    ----------
    label:
        The state label used by the BBN (the paper uses "0", "1", ...).
    lower:
        Lower limit of the state window (inclusive).
    upper:
        Upper limit of the state window (inclusive).
    remark:
        Human-readable meaning ("Non-Operational", "nominal level", ...).
    """

    label: str
    lower: float
    upper: float
    remark: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            raise StateDefinitionError("state label must be non-empty")

    @property
    def width(self) -> float:
        """The width of the state window."""
        return abs(self.upper - self.lower)

    def contains(self, value: float) -> bool:
        """Return ``True`` when ``value`` lies within the state window.

        Windows whose limits are given in descending order (the paper's
        negative-voltage states list ``-1.0e-7`` to ``-1.0e-3``) are
        normalised automatically.
        """
        low, high = sorted((self.lower, self.upper))
        return low <= value <= high


class StateTable:
    """The ordered usable states of one model variable (one Table II row group).

    Parameters
    ----------
    variable:
        The model-variable name.
    states:
        State definitions, in priority order.
    """

    def __init__(self, variable: str, states: Sequence[StateDefinition]) -> None:
        if not variable:
            raise StateDefinitionError("variable name must be non-empty")
        states = list(states)
        if len(states) < 2:
            raise StateDefinitionError(
                f"variable {variable!r} needs at least two states, got {len(states)}")
        labels = [state.label for state in states]
        if len(set(labels)) != len(labels):
            raise StateDefinitionError(
                f"variable {variable!r} has duplicate state labels: {labels}")
        self.variable = variable
        self.states = states
        self._labels = labels

    # ---------------------------------------------------------------- queries
    @property
    def labels(self) -> list[str]:
        """All state labels in priority order."""
        return list(self._labels)

    @property
    def cardinality(self) -> int:
        """The number of usable states."""
        return len(self.states)

    def state(self, label: str) -> StateDefinition:
        """Return the state definition with ``label``."""
        for state in self.states:
            if state.label == label:
                return state
        raise StateDefinitionError(
            f"variable {self.variable!r} has no state labelled {label!r}; "
            f"known labels: {self.labels}")

    def index_of(self, label: str) -> int:
        """Return the position of ``label`` in the priority order."""
        return self.labels.index(self.state(label).label)

    # ----------------------------------------------------------- discretising
    def classify(self, value: float, *, strict: bool = False) -> str:
        """Map a measured value to a state label.

        The first state (in priority order) whose window contains ``value``
        wins.  When no window contains the value, the nearest window is used
        unless ``strict`` is set, in which case an error is raised.
        """
        for state in self.states:
            if state.contains(value):
                return state.label
        if strict:
            raise StateDefinitionError(
                f"value {value} for variable {self.variable!r} falls outside "
                f"every defined state window")
        nearest = min(self.states,
                      key=lambda state: self._distance(state, value))
        return nearest.label

    # ------------------------------------------------------- array discretising
    def _window_arrays(self) -> tuple[np.ndarray, np.ndarray, bool]:
        """Return cached ``(lows, highs, monotone)`` window arrays.

        ``monotone`` is ``True`` when both the lower and the upper limits are
        non-decreasing in priority order — the common Table II/VII layout —
        which enables the ``searchsorted`` fast path.  State definitions are
        frozen, so the cache never goes stale.
        """
        cached = self.__dict__.get("_window_cache")
        if cached is None:
            lows = np.array([min(state.lower, state.upper)
                             for state in self.states])
            highs = np.array([max(state.lower, state.upper)
                              for state in self.states])
            monotone = bool(np.all(np.diff(lows) >= 0)
                            and np.all(np.diff(highs) >= 0))
            cached = (lows, highs, monotone)
            self.__dict__["_window_cache"] = cached
        return cached

    def classify_indices(self, values, *, strict: bool = False) -> np.ndarray:
        """Vectorised :meth:`classify`: map values to state *positions*.

        When the windows are monotone a single ``searchsorted`` over the
        upper limits resolves every value; overlapping priority layouts fall
        back to one mask per state (still array-at-a-time).  Out-of-window
        values snap to the nearest window exactly like the scalar path.
        """
        values = np.asarray(values, dtype=float)
        lows, highs, monotone = self._window_arrays()
        count = len(self.states)
        if monotone:
            # First state whose upper limit reaches the value; contained iff
            # its lower limit does too (earlier states all end below value).
            indices = np.searchsorted(highs, values, side="left")
            clipped = np.minimum(indices, count - 1)
            contained = ((indices < count) & (lows[clipped] <= values)
                         & (values <= highs[clipped]))
            result = np.where(contained, clipped, -1)
        else:
            result = np.full(values.shape, -1, dtype=np.int64)
            unassigned = np.ones(values.shape, dtype=bool)
            for position in range(count):
                hits = (unassigned & (values >= lows[position])
                        & (values <= highs[position]))
                if hits.any():
                    result[hits] = position
                    unassigned &= ~hits
        missing = result < 0
        if missing.any():
            if strict:
                bad = values[missing][0]
                raise StateDefinitionError(
                    f"value {bad} for variable {self.variable!r} falls outside "
                    f"every defined state window")
            outside = values[missing]
            distances = (np.maximum(lows[:, None] - outside[None, :], 0.0)
                         + np.maximum(outside[None, :] - highs[:, None], 0.0))
            result[missing] = np.argmin(distances, axis=0)
        return result

    def classify_batch(self, values, *, strict: bool = False) -> list[str]:
        """Vectorised :meth:`classify`: map an array of values to labels."""
        labels = self.labels
        return [labels[index]
                for index in self.classify_indices(values, strict=strict)]

    @staticmethod
    def _distance(state: StateDefinition, value: float) -> float:
        low, high = sorted((state.lower, state.upper))
        if value < low:
            return low - value
        if value > high:
            return value - high
        return 0.0

    def representative_value(self, label: str) -> float:
        """Return the midpoint of a state window (used to force test conditions)."""
        state = self.state(label)
        low, high = sorted((state.lower, state.upper))
        return (low + high) / 2.0

    def rows(self) -> list[tuple[str, float, float, str]]:
        """Return ``(label, lower, upper, remark)`` rows (Table II / VII format)."""
        return [(state.label, state.lower, state.upper, state.remark)
                for state in self.states]


class Discretizer:
    """Maps continuous per-variable measurements to discrete state labels.

    Parameters
    ----------
    tables:
        One :class:`StateTable` per model variable.
    strict:
        Propagate strictness to :meth:`StateTable.classify`.
    """

    def __init__(self, tables: Iterable[StateTable], *, strict: bool = False) -> None:
        self._tables: dict[str, StateTable] = {}
        for table in tables:
            if table.variable in self._tables:
                raise StateDefinitionError(
                    f"duplicate state table for variable {table.variable!r}")
            self._tables[table.variable] = table
        self.strict = bool(strict)

    @property
    def variables(self) -> list[str]:
        """All variables that can be discretised."""
        return list(self._tables)

    def table(self, variable: str) -> StateTable:
        """Return the state table of ``variable``."""
        if variable not in self._tables:
            raise StateDefinitionError(
                f"no state table registered for variable {variable!r}")
        return self._tables[variable]

    def classify(self, variable: str, value: float) -> str:
        """Discretise one measurement."""
        return self.table(variable).classify(value, strict=self.strict)

    def classify_array(self, variable: str, values) -> list[str]:
        """Discretise an array of measurements of one variable at once."""
        return self.table(variable).classify_batch(values, strict=self.strict)

    def classify_all(self, measurements: Mapping[str, float]) -> dict[str, str]:
        """Discretise every measurement for which a state table exists."""
        return {variable: self.classify(variable, value)
                for variable, value in measurements.items()
                if variable in self._tables}

    def cardinalities(self) -> dict[str, int]:
        """Return the per-variable state counts."""
        return {variable: table.cardinality
                for variable, table in self._tables.items()}

    def state_names(self) -> dict[str, list[str]]:
        """Return the per-variable state labels (BBN state names)."""
        return {variable: table.labels for variable, table in self._tables.items()}
