"""The circuit-model description: variables, states and dependencies.

A :class:`CircuitModelDescription` is everything the test engineer has to
supply to the model builder (Section II of the paper): the functional blocks
of the circuit together with their functional types, every usable state per
block with its limits, and the cause–effect dependency arcs among the blocks.
It is a pure description — the BBN itself is built from it by
:class:`~repro.core.model_builder.Dlog2BBN`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.bayesnet.graph import DirectedGraph
from repro.core.blocks import BlockType, ModelVariable
from repro.core.states import Discretizer, StateTable
from repro.exceptions import ModelBuildError


class CircuitModelDescription:
    """Structural description of an analogue circuit for BBN modelling.

    Parameters
    ----------
    name:
        The circuit's name.
    variables:
        The model variables (functional blocks).
    state_tables:
        One state table per model variable.
    dependencies:
        ``(parent, child)`` cause–effect arcs among the model variables.
    """

    def __init__(self, name: str,
                 variables: Sequence[ModelVariable],
                 state_tables: Sequence[StateTable],
                 dependencies: Iterable[tuple[str, str]]) -> None:
        if not name:
            raise ModelBuildError("circuit model name must be non-empty")
        self.name = name
        self._variables: dict[str, ModelVariable] = {}
        for variable in variables:
            if variable.name in self._variables:
                raise ModelBuildError(f"duplicate model variable {variable.name!r}")
            self._variables[variable.name] = variable
        self._state_tables: dict[str, StateTable] = {}
        for table in state_tables:
            if table.variable not in self._variables:
                raise ModelBuildError(
                    f"state table for unknown model variable {table.variable!r}")
            if table.variable in self._state_tables:
                raise ModelBuildError(
                    f"duplicate state table for model variable {table.variable!r}")
            self._state_tables[table.variable] = table
        missing = [name for name in self._variables if name not in self._state_tables]
        if missing:
            raise ModelBuildError(
                f"model variables without state tables: {missing}")
        self.graph = DirectedGraph(nodes=list(self._variables))
        for parent, child in dependencies:
            if parent not in self._variables:
                raise ModelBuildError(f"dependency parent {parent!r} is not a model variable")
            if child not in self._variables:
                raise ModelBuildError(f"dependency child {child!r} is not a model variable")
            self.graph.add_edge(parent, child)

    # --------------------------------------------------------------- variables
    @property
    def variable_names(self) -> list[str]:
        """All model-variable names in definition order."""
        return list(self._variables)

    @property
    def variables(self) -> list[ModelVariable]:
        """All model variables in definition order."""
        return list(self._variables.values())

    def variable(self, name: str) -> ModelVariable:
        """Return the model variable called ``name``."""
        if name not in self._variables:
            raise ModelBuildError(f"unknown model variable {name!r}")
        return self._variables[name]

    def variables_of_type(self, block_type: BlockType) -> list[str]:
        """Return the names of all variables with the given functional type."""
        return [name for name, variable in self._variables.items()
                if variable.block_type is block_type]

    def _role_lists(self) -> tuple[tuple[str, ...], tuple[str, ...],
                                   tuple[str, ...]]:
        # The variable set is frozen after construction, so the role
        # partition is computed once; diagnosis asks for it per case.
        cached = self.__dict__.get("_role_cache")
        if cached is None:
            cached = (
                tuple(name for name, variable in self._variables.items()
                      if variable.is_controllable),
                tuple(name for name, variable in self._variables.items()
                      if variable.is_observable),
                tuple(name for name, variable in self._variables.items()
                      if variable.is_internal))
            self.__dict__["_role_cache"] = cached
        return cached

    @property
    def controllable_variables(self) -> list[str]:
        """Variables whose state the tester forces (test conditions)."""
        return list(self._role_lists()[0])

    @property
    def observable_variables(self) -> list[str]:
        """Variables whose state the tester measures (test responses)."""
        return list(self._role_lists()[1])

    @property
    def internal_variables(self) -> list[str]:
        """Variables that are neither controllable nor observable."""
        return list(self._role_lists()[2])

    # ------------------------------------------------------------------ states
    def state_table(self, name: str) -> StateTable:
        """Return the state table of variable ``name``."""
        self.variable(name)
        return self._state_tables[name]

    def discretizer(self, *, strict: bool = False) -> Discretizer:
        """Return a discretiser covering every model variable."""
        return Discretizer(self._state_tables.values(), strict=strict)

    def cardinalities(self) -> dict[str, int]:
        """Return the per-variable state counts."""
        return {name: table.cardinality for name, table in self._state_tables.items()}

    def state_names(self) -> dict[str, list[str]]:
        """Return the per-variable state labels."""
        return {name: table.labels for name, table in self._state_tables.items()}

    # ------------------------------------------------------------ dependencies
    @property
    def dependencies(self) -> list[tuple[str, str]]:
        """All ``(parent, child)`` dependency arcs."""
        return self.graph.edges

    def parents_of(self, name: str) -> list[str]:
        """Return the parents of a model variable in the dependency graph."""
        self.variable(name)
        return self.graph.parents(name)

    def children_of(self, name: str) -> list[str]:
        """Return the children of a model variable in the dependency graph."""
        self.variable(name)
        return self.graph.children(name)

    # ---------------------------------------------------------------- reports
    def functional_type_rows(self) -> list[tuple[str, str, str]]:
        """Return ``(variable, type, remark)`` rows (Table I / Table V format)."""
        remarks = {
            BlockType.CONTROL: "Controllable node",
            BlockType.OBSERVE: "Observable node",
            BlockType.CONTROL_OBSERVE: "Controllable and Observable node",
            BlockType.INTERNAL: "Neither Controllable nor Observable node",
        }
        return [(variable.name, variable.block_type.value, remarks[variable.block_type])
                for variable in self._variables.values()]

    def state_definition_rows(self) -> list[tuple[str, str, float, float, str]]:
        """Return ``(variable, state, lower, upper, remark)`` rows (Table II format)."""
        rows = []
        for name, table in self._state_tables.items():
            for label, lower, upper, remark in table.rows():
                rows.append((name, label, lower, upper, remark))
        return rows

    def validate_against(self, evidence: Mapping[str, str]) -> None:
        """Check that an evidence mapping uses known variables and states."""
        for variable, state in evidence.items():
            table = self.state_table(variable)
            if str(state) not in table.labels:
                raise ModelBuildError(
                    f"unknown state {state!r} for variable {variable!r}; "
                    f"known states: {table.labels}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitModelDescription(name={self.name!r}, "
                f"variables={len(self._variables)}, "
                f"dependencies={len(self.graph.edges)})")
