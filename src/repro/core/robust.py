"""Fault-tolerant diagnosis serving: fallback chain, deadlines, provenance.

A production diagnosis service cannot afford one slow junction-tree
calibration or one transient engine fault taking down a whole batch.  This
module wraps :class:`~repro.core.diagnosis.DiagnosisEngine` with the
graceful-degradation policy the related model-based-diagnosis literature
motivates (Roos's efficient compiled diagnosis; Srinivas's hierarchical
diagnosis — see PAPERS.md): keep answering, at reduced precision, scoped to
what the evidence supports.

The serving loop per case:

1. **Evidence boundary** — strict :func:`~repro.core.evidence.validate_evidence`
   or repair-and-continue :func:`~repro.core.evidence.sanitize_evidence`,
   per :class:`FallbackPolicy.on_invalid_evidence`.
2. **Fallback chain** — each engine in ``policy.chain`` (default
   ``ve -> lw -> gibbs``) is attempted up to ``attempts_per_engine`` times
   with exponential backoff, each attempt under an optional wall-clock
   deadline.  Transient failures (timeouts, engine exceptions) degrade to
   the next engine; *permanent* failures (malformed or zero-probability
   evidence) abort the chain immediately — no sampler can fix evidence the
   model assigns probability zero.
3. **Provenance** — every returned :class:`~repro.core.diagnosis.Diagnosis`
   carries a :class:`~repro.core.diagnosis.DiagnosisProvenance`: engine
   used, every attempt record, wall time, ``degraded`` flag, effective
   sample size for sampled posteriors, and the evidence issues that were
   repaired.  Degraded results additionally emit a
   :class:`~repro.exceptions.DegradedResultWarning`.

Deadlines are enforced by running the attempt in a daemon worker thread and
abandoning it on expiry (CPython cannot interrupt a running numpy kernel);
an abandoned attempt keeps a core busy until it finishes, which is the
accepted trade-off for bounded serving latency.  With ``deadline=None``
(the default) attempts run inline with zero threading overhead.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from collections.abc import Mapping

from repro.core.diagnosis import (
    AttemptRecord,
    Diagnosis,
    DiagnosisEngine,
    DiagnosisProvenance,
    DiagnosticCase,
    ENGINE_NAMES,
)
from repro.core.evidence import sanitize_evidence, validate_evidence
from repro.core.model_builder import BuiltModel
from repro.exceptions import (
    DeadlineExceededError,
    DegradedResultWarning,
    DiagnosisError,
    EvidenceError,
    ImpossibleEvidenceError,
    InferenceTimeoutError,
    ReproError,
)

#: Failure classes no retry or engine change can repair: the input itself is
#: bad (malformed evidence) or contradicts the model (zero probability).
PERMANENT_FAILURES = (EvidenceError, ImpossibleEvidenceError)


class FallbackExhaustedError(DiagnosisError):
    """Every engine of the fallback chain failed for one case.

    Carries the full attempt trail so batch isolation can surface *how* the
    case failed, not just that it did.
    """

    def __init__(self, message: str,
                 attempts: tuple[AttemptRecord, ...] = (),
                 wall_time: float = 0.0) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.wall_time = wall_time


@dataclasses.dataclass(frozen=True)
class FallbackPolicy:
    """Configuration of the robust serving loop.

    Attributes
    ----------
    chain:
        Engine names tried in order; the first is the primary.  Exact
        engines (``"jt"``, ``"ve"``) should precede the approximate ones
        (``"lw"``, ``"gibbs"``) so precision only ever degrades.
    deadline:
        Per-attempt wall-clock budget in seconds; ``None`` disables
        deadline enforcement (and its worker-thread overhead) entirely.
    attempts_per_engine:
        How often each engine is retried before degrading to the next.
    backoff:
        Base sleep in seconds between retries of the same engine, doubled
        per retry (``backoff * 2**retry_index``).  Zero disables sleeping.
    num_samples:
        Sample budget handed to the approximate fallback engines (their
        own defaults when ``None``).
    seed:
        Sampler seed for the approximate fallback engines, so degraded
        serving stays reproducible.
    min_effective_sample_size:
        Sampled posteriors whose effective sample size falls below this
        are still returned but flagged with a low-ESS degradation note.
    on_invalid_evidence:
        ``"raise"`` (strict: malformed evidence is a permanent structured
        failure) or ``"sanitize"`` (repair what is repairable, drop the
        rest, and record every issue in the provenance).
    evidence_cache_size:
        Capacity of the exact engines' evidence caches (entries per cache);
        the per-worker memory knob for serving fleets.  ``None`` defers to
        the ``REPRO_EVIDENCE_CACHE_SIZE`` environment variable / the
        library default (128).
    compiled:
        When true, exact engines in the chain serve posterior updates from
        ahead-of-time compiled inference programs
        (:class:`~repro.bayesnet.inference.CompiledProgram`) — traced once
        per evidence-variable signature, invalidated on CPD replacement.
        Serving workers additionally precompile at init
        (``warm_compile``) so the first request never pays the trace.
        Approximate engines ignore the flag.
    """

    chain: tuple[str, ...] = ("ve", "lw", "gibbs")
    deadline: float | None = None
    attempts_per_engine: int = 1
    backoff: float = 0.0
    num_samples: int | None = None
    seed: int | None = 0
    min_effective_sample_size: float = 50.0
    on_invalid_evidence: str = "raise"
    evidence_cache_size: int | None = None
    compiled: bool = False

    def __post_init__(self) -> None:
        if not self.chain:
            raise DiagnosisError("fallback chain must name at least one engine")
        unknown = [name for name in self.chain if name not in ENGINE_NAMES]
        if unknown:
            raise DiagnosisError(
                f"unknown engines in fallback chain: {unknown}; "
                f"use names from {ENGINE_NAMES}")
        if len(set(self.chain)) != len(self.chain):
            raise DiagnosisError(f"fallback chain repeats engines: {self.chain}")
        if self.deadline is not None and self.deadline <= 0:
            raise DiagnosisError(f"deadline must be positive, got {self.deadline}")
        if self.attempts_per_engine < 1:
            raise DiagnosisError("attempts_per_engine must be at least 1")
        if self.backoff < 0:
            raise DiagnosisError(f"backoff must be >= 0, got {self.backoff}")
        if self.on_invalid_evidence not in ("raise", "sanitize"):
            raise DiagnosisError(
                f"unknown on_invalid_evidence mode {self.on_invalid_evidence!r}; "
                "use 'raise' or 'sanitize'")
        if self.evidence_cache_size is not None \
                and self.evidence_cache_size < 1:
            raise DiagnosisError(
                "evidence_cache_size must be >= 1, got "
                f"{self.evidence_cache_size}")


class RobustDiagnosisEngine(DiagnosisEngine):
    """A :class:`DiagnosisEngine` that degrades instead of dying.

    Drop-in replacement: every :class:`DiagnosisEngine` entry point works,
    ``diagnose`` runs the fallback chain, and results carry provenance.

    Parameters
    ----------
    built_model:
        The model produced by :class:`~repro.core.model_builder.Dlog2BBN`.
    policy:
        The :class:`FallbackPolicy`; the default runs ``ve -> lw -> gibbs``
        with no deadline and strict evidence validation.
    abnormal_threshold / ambiguous_threshold:
        Candidate-deduction thresholds, as on :class:`DiagnosisEngine`.
    """

    def __init__(self, built_model: BuiltModel,
                 policy: FallbackPolicy | None = None,
                 abnormal_threshold: float = 0.5,
                 ambiguous_threshold: float = 0.4, *,
                 posterior_cache=None) -> None:
        self.policy = policy or FallbackPolicy()
        super().__init__(built_model, inference=self.policy.chain[0],
                         abnormal_threshold=abnormal_threshold,
                         ambiguous_threshold=ambiguous_threshold,
                         num_samples=self.policy.num_samples,
                         seed=self.policy.seed,
                         cache_size=self.policy.evidence_cache_size,
                         compiled=self.policy.compiled,
                         program_cache=posterior_cache)
        # Optional durable shared cache (`repro.persist.PosteriorCache`):
        # exact posteriors are served from / written to it keyed by the
        # model's content fingerprint + the sanitised evidence signature.
        # The same cache doubles as the compiled-program cache (wired to
        # the superclass above).
        self.posterior_cache = posterior_cache
        self.cache_hits = 0
        self.cache_misses = 0
        # The primary engine is the one the superclass already built; the
        # fallback engines are constructed lazily on first degradation so a
        # healthy serving path never pays for them.
        self._fallback_engines: dict[str, DiagnosisEngine] = {
            self.policy.chain[0]: self}

    # ------------------------------------------------------------- sub-engines
    def _engine_for(self, name: str) -> DiagnosisEngine:
        engine = self._fallback_engines.get(name)
        if engine is None:
            engine = DiagnosisEngine(
                self.built_model, inference=name,
                abnormal_threshold=self.abnormal_threshold,
                ambiguous_threshold=self.ambiguous_threshold,
                num_samples=self.policy.num_samples,
                seed=self.policy.seed,
                cache_size=self.policy.evidence_cache_size,
                compiled=self.policy.compiled,
                program_cache=self.posterior_cache)
            self._fallback_engines[name] = engine
        return engine

    # ---------------------------------------------------------------- deadline
    def _attempt(self, engine_name: str, evidence: Mapping[str, str],
                 remaining: float | None = None,
                 ) -> dict[str, dict[str, float]]:
        """Run one posterior update, under the effective attempt deadline.

        The effective deadline is the tighter of the policy's per-attempt
        ``deadline`` and the caller's ``remaining`` wall-clock budget — the
        path by which a service-level request deadline clamps every attempt
        below it.
        """
        engine = self._engine_for(engine_name)
        deadline = self.policy.deadline
        if remaining is not None:
            deadline = remaining if deadline is None \
                else min(deadline, remaining)
        if deadline is None:
            return DiagnosisEngine.update(engine, evidence)
        deadline = max(deadline, 1e-6)

        outcome: dict[str, object] = {}

        def worker() -> None:
            try:
                outcome["value"] = DiagnosisEngine.update(engine, evidence)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                outcome["error"] = error

        thread = threading.Thread(target=worker, daemon=True,
                                  name=f"diagnosis-{engine_name}")
        thread.start()
        thread.join(deadline)
        if thread.is_alive():
            raise InferenceTimeoutError(
                f"engine {engine_name!r} exceeded the {deadline}s deadline",
                engine=engine_name, deadline=deadline)
        if "error" in outcome:
            raise outcome["error"]  # type: ignore[misc]
        return outcome["value"]  # type: ignore[return-value]

    # --------------------------------------------------------------- diagnosis
    def diagnose(self, case: DiagnosticCase,
                 deadline: float | None = None) -> Diagnosis:
        """Diagnose one case through the fallback chain, with provenance.

        ``deadline`` is an optional *total* wall-clock budget in seconds for
        this call (the per-request deadline a serving layer propagates
        down).  It clamps every attempt's deadline, bounds backoff sleeps,
        and — once spent — aborts the chain with a
        :class:`~repro.exceptions.DeadlineExceededError` instead of trying
        further engines.  ``None`` keeps the policy's per-attempt behaviour
        only.
        """
        start = time.perf_counter()
        attempts: list[AttemptRecord] = []
        notes: list[str] = []
        budget_end = None if deadline is None else start + deadline

        def remaining() -> float | None:
            return None if budget_end is None \
                else budget_end - time.perf_counter()

        if deadline is not None and deadline <= 0:
            raise self._deadline_exceeded(case, deadline, deadline,
                                          tuple(attempts), start, None)

        evidence, issues = self._evidence_boundary(case)
        dropped = [issue for issue in issues if issue.kind != "repaired-state"]
        if issues:
            notes.append(
                f"evidence sanitised: {len(issues)} issue(s), "
                f"{len(dropped)} entry(ies) dropped")

        if self.posterior_cache is not None:
            cached = self._cached_posteriors(evidence)
            if cached is not None:
                attempts.append(AttemptRecord(
                    "cache", "ok", time.perf_counter() - start))
                return self._accept_cached(case, evidence, cached,
                                           tuple(attempts), tuple(issues),
                                           notes, start)

        policy = self.policy
        last_error: BaseException | None = None
        for position, engine_name in enumerate(policy.chain):
            for retry in range(policy.attempts_per_engine):
                if retry and policy.backoff > 0:
                    # A backoff longer than the remaining budget would turn
                    # the deadline into dead sleep: clamp, then let the
                    # budget check below fire.
                    sleep = policy.backoff * (2 ** (retry - 1))
                    left = remaining()
                    if left is not None:
                        sleep = min(sleep, max(left, 0.0))
                    if sleep > 0:
                        time.sleep(sleep)
                left = remaining()
                if left is not None and left <= 0:
                    raise self._deadline_exceeded(
                        case, deadline, left, tuple(attempts), start,
                        last_error)
                attempt_start = time.perf_counter()
                try:
                    posteriors = self._attempt(engine_name, evidence, left)
                except PERMANENT_FAILURES as error:
                    attempts.append(AttemptRecord(
                        engine_name, "error",
                        time.perf_counter() - attempt_start,
                        f"{type(error).__name__}: {error}"))
                    error.attempts = tuple(attempts)
                    error.wall_time = time.perf_counter() - start
                    raise
                except Exception as error:  # noqa: BLE001 - degrades below
                    outcome = "timeout" if isinstance(
                        error, InferenceTimeoutError) else "error"
                    attempts.append(AttemptRecord(
                        engine_name, outcome,
                        time.perf_counter() - attempt_start,
                        f"{type(error).__name__}: {error}"))
                    last_error = error
                    continue
                attempts.append(AttemptRecord(
                    engine_name, "ok", time.perf_counter() - attempt_start))
                return self._accept(case, evidence, posteriors, engine_name,
                                    position, tuple(attempts), tuple(issues),
                                    notes, start)
            notes.append(
                f"engine {engine_name!r} exhausted "
                f"{policy.attempts_per_engine} attempt(s)")

        error = FallbackExhaustedError(
            f"all {len(policy.chain)} engine(s) of the fallback chain failed "
            f"for case {case.name!r}; last error: "
            f"{type(last_error).__name__}: {last_error}",
            attempts=tuple(attempts),
            wall_time=time.perf_counter() - start)
        raise error from last_error

    def _deadline_exceeded(self, case: DiagnosticCase,
                           deadline: float | None, left: float | None,
                           attempts: tuple[AttemptRecord, ...], start: float,
                           last_error: BaseException | None,
                           ) -> DeadlineExceededError:
        """Build the budget-exhausted error, with the attempt trail attached."""
        error = DeadlineExceededError(
            f"deadline budget of {deadline:g}s exhausted for case "
            f"{case.name!r} after {len(attempts)} attempt(s)",
            remaining=left, deadline=deadline)
        error.attempts = attempts
        error.wall_time = time.perf_counter() - start
        if last_error is not None:
            error.__cause__ = last_error
        return error

    def _deadline_diagnose(self, deadline: float):
        """Per-case diagnose callable sharing one batch wall-clock budget.

        Used by :meth:`DiagnosisEngine.diagnose_batch` (and by each serving
        worker for its chunk): the budget drains monotonically, so cases
        reached after expiry fail fast with
        :class:`~repro.exceptions.DeadlineExceededError` rather than
        starting doomed inference sweeps.
        """
        budget_end = time.perf_counter() + max(deadline, 0.0)

        def diagnose(case: DiagnosticCase) -> Diagnosis:
            return self.diagnose(
                case, deadline=budget_end - time.perf_counter())

        return diagnose

    def _evidence_boundary(self, case: DiagnosticCase):
        """Apply the policy's evidence mode; returns ``(evidence, issues)``."""
        if self.policy.on_invalid_evidence == "raise":
            return validate_evidence(self.model, case.evidence()), ()
        issues: list = []
        try:
            merged = case.evidence()
        except EvidenceError as error:
            # Conflicting controllable/observable entries: neither side can
            # be trusted, so the conflicting blocks are dropped entirely.
            conflicting = {issue.variable for issue in error.issues}
            merged = {variable: state
                      for variable, state in case.raw_evidence().items()
                      if variable not in conflicting}
            issues.extend(error.issues)
        clean, sanitize_issues = sanitize_evidence(self.model, merged)
        issues.extend(sanitize_issues)
        return clean, tuple(issues)

    def _cached_posteriors(self, evidence: Mapping[str, str]
                           ) -> dict[str, dict[str, float]] | None:
        """Durable-cache lookup; any I/O trouble degrades to a miss."""
        try:
            value = self.posterior_cache.get_posteriors(
                self._model_fingerprint(), evidence)
        except (ReproError, OSError):
            value = None
        if value is None:
            self.cache_misses += 1
            return None
        self.cache_hits += 1
        return value

    def _store_posteriors(self, evidence: Mapping[str, str],
                          posteriors: Mapping[str, Mapping[str, float]]
                          ) -> None:
        """Durably share an exact posterior set; failures never propagate."""
        try:
            self.posterior_cache.put_posteriors(
                self._model_fingerprint(), evidence, posteriors)
        except (ReproError, OSError):
            pass

    def _accept_cached(self, case: DiagnosticCase, evidence: dict[str, str],
                       posteriors: dict[str, dict[str, float]],
                       attempts: tuple[AttemptRecord, ...], issues: tuple,
                       notes: list[str], start: float) -> Diagnosis:
        """Build a Diagnosis from durably cached exact posteriors.

        Only exact-engine results are ever written to the cache, so a hit
        carries no effective-sample-size caveat; the provenance engine is
        ``"cache"`` and the result is degraded only if the evidence
        boundary had complaints.
        """
        degraded = bool(notes)
        provenance = DiagnosisProvenance(
            engine="cache", attempts=attempts,
            wall_time=time.perf_counter() - start, degraded=degraded,
            effective_sample_size=None, evidence_issues=issues,
            notes=tuple(notes))
        if degraded:
            warnings.warn(
                f"case {case.name!r} served degraded from the durable "
                f"cache: " + "; ".join(notes), DegradedResultWarning,
                stacklevel=3)
        return self._build_diagnosis(case, evidence, posteriors, provenance)

    def _build_diagnosis(self, case: DiagnosticCase,
                         evidence: dict[str, str],
                         posteriors: dict[str, dict[str, float]],
                         provenance: DiagnosisProvenance) -> Diagnosis:
        fail = {variable: self.fail_probability(variable, posteriors)
                for variable in self.model.internal_variables}
        return Diagnosis(
            case_name=case.name, evidence=evidence, posteriors=posteriors,
            fail_probabilities=fail,
            suspects=self.deduce_candidates(posteriors),
            ranked_candidates=self.rank_by_fail_probability(posteriors),
            provenance=provenance)

    def _accept(self, case: DiagnosticCase, evidence: dict[str, str],
                posteriors: dict[str, dict[str, float]], engine_name: str,
                chain_position: int, attempts: tuple[AttemptRecord, ...],
                issues: tuple, notes: list[str], start: float) -> Diagnosis:
        """Build the final Diagnosis + provenance from accepted posteriors."""
        if self.posterior_cache is not None and engine_name in ("ve", "jt"):
            # Only exact posteriors are durable: a sampled result is
            # seed- and sample-count-dependent, and committing it would
            # serve a degraded answer forever.
            self._store_posteriors(evidence, posteriors)
        ess = self._effective_sample_size(engine_name)
        if ess is not None and ess < self.policy.min_effective_sample_size:
            notes.append(
                f"low effective sample size ({ess:.1f} < "
                f"{self.policy.min_effective_sample_size:g})")
        if chain_position > 0:
            notes.append(
                f"degraded from {self.policy.chain[0]!r} to {engine_name!r}")
        failed_attempts = len(attempts) - 1
        degraded = bool(chain_position > 0 or failed_attempts > 0 or notes)
        provenance = DiagnosisProvenance(
            engine=engine_name, attempts=attempts,
            wall_time=time.perf_counter() - start, degraded=degraded,
            effective_sample_size=ess, evidence_issues=issues,
            notes=tuple(notes))
        if degraded:
            warnings.warn(
                f"case {case.name!r} served degraded by {engine_name!r}: "
                + "; ".join(notes), DegradedResultWarning, stacklevel=3)
        return self._build_diagnosis(case, evidence, posteriors, provenance)

    def _effective_sample_size(self, engine_name: str) -> float | None:
        """Confidence signal of a sampled posterior; None for exact engines."""
        engine = self._engine_for(engine_name)._engine
        ess = getattr(engine, "last_effective_sample_size", None)
        if ess is not None:
            return float(ess)
        if engine_name == "gibbs":
            return float(engine.num_samples)
        return None
