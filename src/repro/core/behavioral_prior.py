"""Behaviour-informed designer priors for the BBN circuit model.

In the paper "the product designer initially provided a rough estimate of the
conditional probability tables for all circuit model variables".  A designer
produces that estimate by mentally simulating the block: *"if the battery is
at its nominal level and the bandgap is good and the enable is active, the
regulator output will sit in its regulation window — unless the regulator
itself is broken."*

:class:`BehavioralPriorBuilder` automates exactly that reasoning against the
behavioural netlist: for every child block and every joint parent-state
configuration it

1. places each parent at the representative (mid-window) voltage of its
   state,
2. evaluates the child block's defect-free behaviour and bins the result into
   the child's state table,
3. evaluates the child block under each behavioural fault mode (weighted by a
   per-block fault probability) and bins those results too,
4. mixes the healthy and faulty outcomes into the CPT column.

The result is the "rough estimate" CPT set the learning step then fine-tunes
with ATE cases.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.learning.bayesian_estimator import BayesianEstimator
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.bayesnet.network import BayesianNetwork
from repro.circuits.behavioral import BehavioralSimulator
from repro.circuits.components import HEALTHY, BlockHealth
from repro.circuits.faults import BlockFault, FaultMode
from repro.circuits.netlist import BlockNetlist
from repro.core.circuit_model import CircuitModelDescription
from repro.exceptions import ModelBuildError
from repro.utils.rng import ensure_rng


class BehavioralPriorBuilder:
    """Derives designer-prior CPTs from a behavioural netlist.

    Parameters
    ----------
    netlist:
        The behavioural netlist; every model variable with parents must be a
        block whose inputs are exactly its BBN parents.
    model:
        The circuit-model description (states and dependencies).
    fault_probability:
        Prior probability that a block is itself defective (the designer's
        "field failure is rare but possible" weight).  Either a single float
        applied to every block or a ``{block: probability}`` mapping — large
        analogue blocks (bandgaps, regulators, the power switch) fail far
        more often in the field than small logic, and the designer knows it.
    default_fault_probability:
        Fallback when ``fault_probability`` is a mapping without an entry for
        a block.
    fault_modes:
        Behavioural fault modes mixed into the faulty part of every column.
    smoothing:
        Small probability mass spread over all states to avoid hard zeros.
    root_priors:
        Optional explicit prior distribution per root (parent-less) variable,
        ``{variable: {state: probability}}``.  Roots without an entry get a
        uniform prior — the tester chooses their state anyway.
    """

    def __init__(self, netlist: BlockNetlist, model: CircuitModelDescription,
                 fault_probability: float | Mapping[str, float] = 0.15,
                 default_fault_probability: float = 0.15,
                 fault_modes: Sequence[FaultMode] = (FaultMode.DEAD,
                                                     FaultMode.STUCK_HIGH,
                                                     FaultMode.DEGRADED),
                 smoothing: float = 0.02,
                 root_priors: Mapping[str, Mapping[str, float]] | None = None) -> None:
        if isinstance(fault_probability, Mapping):
            self._fault_probabilities = {block: float(p)
                                         for block, p in fault_probability.items()}
        else:
            default_fault_probability = float(fault_probability)
            self._fault_probabilities = {}
        if not 0.0 < default_fault_probability < 1.0:
            raise ModelBuildError(
                "default_fault_probability must be in (0, 1), got "
                f"{default_fault_probability}")
        for block, probability in self._fault_probabilities.items():
            if not 0.0 < probability < 1.0:
                raise ModelBuildError(
                    f"fault probability of {block!r} must be in (0, 1), got {probability}")
        if not 0.0 <= smoothing < 0.5:
            raise ModelBuildError(f"smoothing must be in [0, 0.5), got {smoothing}")
        if not fault_modes:
            raise ModelBuildError("at least one fault mode is required")
        self.netlist = netlist
        self.model = model
        self.default_fault_probability = float(default_fault_probability)
        self.fault_modes = list(fault_modes)
        self.smoothing = float(smoothing)
        self.root_priors = {variable: dict(distribution)
                            for variable, distribution in (root_priors or {}).items()}
        for variable in model.variable_names:
            if variable not in netlist:
                raise ModelBuildError(
                    f"model variable {variable!r} has no behavioural block in the netlist")

    def fault_probability_of(self, block: str) -> float:
        """Return the prior probability that ``block`` itself is defective."""
        return self._fault_probabilities.get(block, self.default_fault_probability)

    # ----------------------------------------------------------------- columns
    def _representative_voltages(self, parents: Sequence[str],
                                 indices: Sequence[int]) -> dict[str, float]:
        voltages: dict[str, float] = {}
        for parent, index in zip(parents, indices):
            table = self.model.state_table(parent)
            voltages[parent] = table.representative_value(table.labels[index])
        return voltages

    def _column(self, node: str, parents: Sequence[str],
                indices: Sequence[int]) -> np.ndarray:
        table = self.model.state_table(node)
        labels = table.labels
        block = self.netlist.block(node)
        voltages = self._representative_voltages(parents, indices)
        # Blocks may read nets that are not BBN parents (there are none in the
        # shipped circuits, but be defensive): default any missing input to 0.
        inputs = {net: voltages.get(net, 0.0) for net in block.inputs}

        fault_probability = self.fault_probability_of(node)
        column = np.full(len(labels), self.smoothing / len(labels))
        healthy_value = block.evaluate(inputs, HEALTHY)
        healthy_state = table.classify(healthy_value)
        healthy_mass = (1.0 - self.smoothing) * (1.0 - fault_probability)
        column[labels.index(healthy_state)] += healthy_mass

        faulty_mass = (1.0 - self.smoothing) * fault_probability
        per_mode = faulty_mass / len(self.fault_modes)
        for mode in self.fault_modes:
            health = BlockHealth(healthy=False, mode=mode.value, severity=1.0)
            faulty_value = block.evaluate(inputs, health)
            faulty_state = table.classify(faulty_value)
            column[labels.index(faulty_state)] += per_mode
        return column / column.sum()

    def _root_cpd(self, node: str) -> TabularCPD:
        table = self.model.state_table(node)
        labels = table.labels
        if node in self.root_priors:
            distribution = np.array(
                [float(self.root_priors[node].get(label, 0.0)) for label in labels])
            if distribution.sum() <= 0:
                raise ModelBuildError(
                    f"root prior for {node!r} has zero total probability")
            distribution = distribution / distribution.sum()
        else:
            distribution = np.full(len(labels), 1.0 / len(labels))
        return TabularCPD(node, len(labels), distribution.reshape(-1, 1),
                          state_names={node: labels})

    def build_cpd(self, network: BayesianNetwork, node: str) -> TabularCPD:
        """Return the behaviour-informed prior CPD of ``node``."""
        parents = network.parents(node)
        if not parents:
            return self._root_cpd(node)
        parent_tables = [self.model.state_table(p) for p in parents]
        parent_cards = [t.cardinality for t in parent_tables]
        child_table = self.model.state_table(node)
        columns = int(np.prod(parent_cards))
        matrix = np.empty((child_table.cardinality, columns))
        for column in range(columns):
            remainder = column
            indices = [0] * len(parents)
            for position in range(len(parents) - 1, -1, -1):
                indices[position] = remainder % parent_cards[position]
                remainder //= parent_cards[position]
            matrix[:, column] = self._column(node, parents, indices)
        state_names = {node: child_table.labels}
        state_names.update({p: t.labels for p, t in zip(parents, parent_tables)})
        return TabularCPD(node, child_table.cardinality, matrix, parents,
                          parent_cards, state_names)

    # ----------------------------------------------------------------- network
    def build(self) -> BayesianNetwork:
        """Return the full designer-prior network (structure + prior CPTs)."""
        network = BayesianNetwork(nodes=self.model.variable_names)
        for parent, child in self.model.dependencies:
            network.add_edge(parent, child)
        for node in network.nodes:
            network.add_cpd(self.build_cpd(network, node))
        network.check_model()
        return network


class SimulationPriorBuilder:
    """Derives designer-prior CPTs from Monte-Carlo behavioural simulation.

    Where :class:`BehavioralPriorBuilder` evaluates each block in isolation
    at representative parent voltages (fast but crude — the mid-point of a
    wide acceptance window such as "hcbg good: 1.1–100 V" is nothing like the
    voltage a healthy bandgap actually produces),
    :class:`SimulationPriorBuilder` simulates the *whole* circuit:

    1. every block's health is drawn independently from the designer's
       per-block fault probability (and a random fault mode),
    2. the circuit is evaluated under each of the supplied test conditions,
    3. every net — internal nets included, since this is a simulation — is
       discretised into its model states, giving a fully observed case,
    4. the CPTs are fitted to those cases with Dirichlet smoothing.

    The result is the faithful formalisation of "the product designer
    provided a rough estimate of the conditional probability tables": the
    designer's estimate comes from simulating the design.

    Parameters
    ----------
    netlist / model:
        The behavioural netlist and the circuit-model description.
    condition_sets:
        Forced-voltage dictionaries (one per test condition) cycled through
        during simulation; typically the condition sets of the functional
        test program.
    fault_probability:
        Per-block (or scalar) prior probability that a block is defective.
    fault_modes:
        Fault modes sampled for defective blocks.
    samples:
        Number of simulated devices.
    equivalent_sample_size:
        Dirichlet smoothing weight of the uniform prior mixed into the fitted
        CPTs (keeps unseen configurations non-degenerate).
    measurement_noise / process_variation / seed:
        Passed to the behavioural simulator.
    """

    def __init__(self, netlist: BlockNetlist, model: CircuitModelDescription,
                 condition_sets: Sequence[Mapping[str, float]],
                 fault_probability: float | Mapping[str, float] = 0.15,
                 default_fault_probability: float = 0.15,
                 fault_modes: Sequence[FaultMode] = (FaultMode.DEAD,
                                                     FaultMode.STUCK_HIGH,
                                                     FaultMode.DEGRADED),
                 samples: int = 2000,
                 equivalent_sample_size: float = 4.0,
                 measurement_noise: float = 0.01,
                 process_variation=None,
                 seed: int | np.random.Generator | None = None) -> None:
        if not condition_sets:
            raise ModelBuildError("at least one condition set is required")
        if samples < 1:
            raise ModelBuildError("samples must be at least 1")
        if isinstance(fault_probability, Mapping):
            self._fault_probabilities = {block: float(p)
                                         for block, p in fault_probability.items()}
            self.default_fault_probability = float(default_fault_probability)
        else:
            self._fault_probabilities = {}
            self.default_fault_probability = float(fault_probability)
        self.netlist = netlist
        self.model = model
        self.condition_sets = [dict(c) for c in condition_sets]
        self.fault_modes = list(fault_modes)
        self.samples = int(samples)
        self.equivalent_sample_size = float(equivalent_sample_size)
        self._rng = ensure_rng(seed)
        self._simulator = BehavioralSimulator(
            netlist, measurement_noise=measurement_noise,
            process_variation=process_variation, seed=self._rng)

    def fault_probability_of(self, block: str) -> float:
        """Return the prior probability that ``block`` itself is defective."""
        return self._fault_probabilities.get(block, self.default_fault_probability)

    def _sample_faults(self) -> dict[str, BlockFault]:
        faults: dict[str, BlockFault] = {}
        for variable in self.model.variable_names:
            if self.model.variable(variable).is_controllable:
                continue
            if self._rng.random() < self.fault_probability_of(variable):
                mode = self.fault_modes[int(self._rng.integers(len(self.fault_modes)))]
                faults[variable] = BlockFault(variable, mode)
        return faults

    def simulate_cases(self) -> list[dict[str, str]]:
        """Return fully observed cases (every model variable discretised)."""
        discretizer = self.model.discretizer()
        cases: list[dict[str, str]] = []
        for index in range(self.samples):
            conditions = self.condition_sets[index % len(self.condition_sets)]
            faults = self._sample_faults()
            multipliers = self._simulator.sample_device()
            result = self._simulator.run(conditions, faults, multipliers)
            case = {variable: discretizer.classify(variable,
                                                   result.voltage(variable))
                    for variable in self.model.variable_names}
            cases.append(case)
        return cases

    def simulate_case_matrix(self) -> CaseMatrix:
        """Simulate the population and return the cases as a code matrix.

        Consumes the random stream exactly like :meth:`simulate_cases` — the
        per-sample fault, process-variation and noise draws stay scalar, in
        the same order — but every circuit evaluation runs in one batched
        pass over the blocks, so a fresh builder with the same seed yields
        the same cases bit-for-bit (the equivalence suite pins this).
        """
        sim = self._simulator
        plan = sim.plan
        count = self.samples
        blocks = plan.block_count
        noisy = sim.measurement_noise > 0
        varying = sim.process_variation is not None
        multipliers = np.ones((count, len(plan.multiplier_names)))
        noise = np.empty((count, blocks)) if noisy else None
        faults_list: list[dict[str, BlockFault]] = []
        for index in range(count):
            faults_list.append(self._sample_faults())
            if varying:
                sample = sim.sample_device()
                multipliers[index] = [sample[name]
                                      for name in plan.multiplier_names]
            if noisy:
                noise[index] = self._rng.normal(0.0, sim.measurement_noise,
                                                size=blocks)
        modes, severities = plan.encode_faults(faults_list, sim.netlist)

        sets = self.condition_sets
        forced = set(sets[0])
        if all(set(conditions) == forced for conditions in sets):
            cycle = np.arange(count) % len(sets)
            condition_arrays = {
                net: np.array([float(conditions[net])
                               for conditions in sets])[cycle]
                for net in forced}
            voltages = plan.evaluate(condition_arrays, count, modes,
                                     severities, multipliers, noise)
        else:
            voltages = np.empty((count, blocks))
            for offset, conditions in enumerate(sets):
                rows = np.arange(offset, count, len(sets))
                condition_arrays = {net: np.full(len(rows), float(value))
                                    for net, value in conditions.items()}
                voltages[rows] = plan.evaluate(
                    condition_arrays, len(rows),
                    None if modes is None else modes[rows],
                    None if severities is None else severities[rows],
                    multipliers[rows],
                    None if noise is None else noise[rows])

        variables = list(self.model.variable_names)
        codes = np.empty((count, len(variables)), dtype=np.int16)
        for column, variable in enumerate(variables):
            table = self.model.state_table(variable)
            codes[:, column] = table.classify_indices(
                voltages[:, plan.column[variable]])
        return CaseMatrix(variables, codes, self.model.state_names())

    def build(self) -> BayesianNetwork:
        """Return the designer-prior network fitted to the simulated cases."""
        structure = BayesianNetwork(nodes=self.model.variable_names)
        for parent, child in self.model.dependencies:
            structure.add_edge(parent, child)
        estimator = BayesianEstimator(
            structure, prior_network=None,
            equivalent_sample_size=self.equivalent_sample_size,
            cardinalities=self.model.cardinalities(),
            state_names=self.model.state_names())
        return estimator.fit(self.simulate_case_matrix())
