"""Diagnosis-quality metrics.

The paper validates its method qualitatively ("the failing functional block
candidate(s) are correlated to the ones selected by the diagnostic expert").
With simulated populations the injected fault is known exactly, so the
benchmark harness can report quantitative metrics on top of the qualitative
reproduction: top-k accuracy of the candidate ranking, the rank of the true
fault, and precision/recall of the deduced suspect set.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.diagnosis import Diagnosis
from repro.exceptions import DiagnosisError


def rank_of_true_fault(diagnosis: Diagnosis, true_block: str) -> int:
    """Return the 1-based rank of the truly failing block in the ranking."""
    return diagnosis.rank_of(true_block)


@dataclasses.dataclass
class DiagnosisMetrics:
    """Aggregated diagnosis metrics over a set of diagnosed devices.

    Attributes
    ----------
    total:
        Number of diagnosed devices.
    top1_hits / top3_hits:
        How often the true block was ranked first / within the top three.
    suspect_hits:
        How often the true block appeared in the deduced suspect list.
    ranks:
        The rank of the true block for every device.
    suspect_set_sizes:
        The size of the deduced suspect list for every device.
    """

    total: int = 0
    top1_hits: int = 0
    top3_hits: int = 0
    suspect_hits: int = 0
    ranks: list[int] = dataclasses.field(default_factory=list)
    suspect_set_sizes: list[int] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------ update
    def record(self, diagnosis: Diagnosis, true_block: str) -> None:
        """Record one diagnosed device against its ground-truth block."""
        rank = rank_of_true_fault(diagnosis, true_block)
        self.total += 1
        self.ranks.append(rank)
        self.suspect_set_sizes.append(len(diagnosis.suspects))
        if rank == 1:
            self.top1_hits += 1
        if rank <= 3:
            self.top3_hits += 1
        if true_block in diagnosis.suspects:
            self.suspect_hits += 1

    @classmethod
    def from_diagnoses(cls, diagnoses: Sequence[Diagnosis],
                       true_blocks: Sequence[str]) -> "DiagnosisMetrics":
        """Build metrics from parallel lists of diagnoses and true blocks."""
        if len(diagnoses) != len(true_blocks):
            raise DiagnosisError(
                "diagnoses and true_blocks must have the same length")
        metrics = cls()
        for diagnosis, block in zip(diagnoses, true_blocks):
            metrics.record(diagnosis, block)
        return metrics

    # ------------------------------------------------------------------- rates
    def _rate(self, hits: int) -> float:
        if self.total == 0:
            raise DiagnosisError("no diagnoses recorded")
        return hits / self.total

    @property
    def top1_accuracy(self) -> float:
        """Fraction of devices whose true block was ranked first."""
        return self._rate(self.top1_hits)

    @property
    def top3_accuracy(self) -> float:
        """Fraction of devices whose true block was ranked in the top three."""
        return self._rate(self.top3_hits)

    @property
    def suspect_recall(self) -> float:
        """Fraction of devices whose true block appears in the suspect list."""
        return self._rate(self.suspect_hits)

    @property
    def mean_rank(self) -> float:
        """Mean rank of the true block."""
        if not self.ranks:
            raise DiagnosisError("no diagnoses recorded")
        return float(np.mean(self.ranks))

    @property
    def mean_suspect_set_size(self) -> float:
        """Mean size of the deduced suspect list (diagnostic resolution)."""
        if not self.suspect_set_sizes:
            raise DiagnosisError("no diagnoses recorded")
        return float(np.mean(self.suspect_set_sizes))

    def summary(self) -> dict[str, float]:
        """Return the headline metrics as a dictionary (for tables and benches)."""
        return {
            "devices": float(self.total),
            "top1_accuracy": self.top1_accuracy,
            "top3_accuracy": self.top3_accuracy,
            "suspect_recall": self.suspect_recall,
            "mean_rank": self.mean_rank,
            "mean_suspect_set_size": self.mean_suspect_set_size,
        }
