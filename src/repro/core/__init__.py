"""The paper's primary contribution: block-level Bayesian diagnosis.

The flow mirrors Sections II–IV of the paper:

1. Describe the circuit as *model variables* (functional blocks) with
   functional types and discrete states bounded by voltage limits
   (:mod:`repro.core.blocks`, :mod:`repro.core.states`,
   :mod:`repro.core.circuit_model`).
2. Convert ATE functional-test datalogs of failing devices into learning
   *cases* (:mod:`repro.core.case_generation`).
3. Build the BBN — structure from the dependency description, parameters
   fine-tuned from the cases starting at the designer priors — with the
   *Dlog2BBN* model builder (:mod:`repro.core.model_builder`).
4. In diagnostic mode, enter the controllable/observable states of a failing
   device as evidence, update the posteriors of the remaining blocks and
   deduce the ranked suspect list (:mod:`repro.core.diagnosis`,
   :mod:`repro.core.report`).
5. Score diagnoses against known injected faults
   (:mod:`repro.core.metrics`).
"""

from repro.core.blocks import BlockType, ModelVariable
from repro.core.states import StateDefinition, StateTable, Discretizer
from repro.core.circuit_model import CircuitModelDescription
from repro.bayesnet.learning.case_matrix import CaseMatrix
from repro.core.case_generation import Case, CaseGenerator
from repro.core.model_builder import (
    Dlog2BBN,
    BuiltModel,
    validate_built_network,
)
from repro.core.diagnosis import (
    AttemptRecord,
    Diagnosis,
    DiagnosisEngine,
    DiagnosisFailure,
    DiagnosisProvenance,
    DiagnosticCase,
)
from repro.core.evidence import (
    EvidenceIssue,
    merge_case_evidence,
    sanitize_evidence,
    validate_evidence,
)
from repro.core.robust import (
    FallbackExhaustedError,
    FallbackPolicy,
    RobustDiagnosisEngine,
)
from repro.core.report import DiagnosticReport, ReportColumn
from repro.core.metrics import DiagnosisMetrics, rank_of_true_fault

__all__ = [
    "BlockType",
    "ModelVariable",
    "StateDefinition",
    "StateTable",
    "Discretizer",
    "CircuitModelDescription",
    "Case",
    "CaseGenerator",
    "CaseMatrix",
    "Dlog2BBN",
    "BuiltModel",
    "validate_built_network",
    "DiagnosisEngine",
    "DiagnosticCase",
    "Diagnosis",
    "DiagnosisFailure",
    "DiagnosisProvenance",
    "AttemptRecord",
    "EvidenceIssue",
    "merge_case_evidence",
    "sanitize_evidence",
    "validate_evidence",
    "RobustDiagnosisEngine",
    "FallbackPolicy",
    "FallbackExhaustedError",
    "DiagnosticReport",
    "ReportColumn",
    "DiagnosisMetrics",
    "rank_of_true_fault",
]
