"""The paper's published evaluation data (Tables VI and VII).

Two things are recorded here verbatim from the paper:

* :data:`PAPER_DIAGNOSTIC_CASES` — the five diagnostic case studies of
  Table VI: the controllable states (test conditions), the observable states
  (responses) and the failing block(s) identified by the diagnostic expert.
* :data:`PAPER_INTERNAL_PROBABILITIES` — the published posterior
  probabilities of the eight internal (non-observable) model variables for
  the initial column and each case d1–d5 of Table VII.

The probabilities are used to (a) validate that the automated candidate
deduction reproduces the paper's manual reasoning when fed the paper's own
numbers and (b) report paper-vs-measured comparisons in the benchmark
harness.  Probabilities are stored as fractions (the paper prints percent).
"""

from __future__ import annotations

from repro.core.diagnosis import DiagnosticCase

#: The five diagnostic case studies of Table VI.
PAPER_DIAGNOSTIC_CASES: list[DiagnosticCase] = [
    DiagnosticCase(
        name="d1",
        controllable_states={"vp1": "2", "vp1x": "4", "vp2": "2",
                             "enb13_pin": "1", "enb4_pin": "1", "enbsw_pin": "1"},
        observable_states={"reg1": "0", "reg2": "1", "reg3": "0",
                           "reg4": "0", "sw": "0"},
        expected_fail_blocks=("warnvpst", "hcbg"),
    ),
    DiagnosticCase(
        name="d2",
        controllable_states={"vp1": "2", "vp1x": "4", "vp2": "2",
                             "enb13_pin": "1", "enb4_pin": "1", "enbsw_pin": "1"},
        observable_states={"reg1": "0", "reg2": "1", "reg3": "0",
                           "reg4": "1", "sw": "2"},
        expected_fail_blocks=("enb13",),
    ),
    DiagnosticCase(
        name="d3",
        controllable_states={"vp1": "1", "vp1x": "3", "vp2": "1",
                             "enb13_pin": "1", "enb4_pin": "1", "enbsw_pin": "1"},
        observable_states={"reg1": "0", "reg2": "1", "reg3": "0",
                           "reg4": "0", "sw": "0"},
        expected_fail_blocks=("warnvpst",),
    ),
    DiagnosticCase(
        name="d4",
        controllable_states={"vp1": "2", "vp1x": "4", "vp2": "2",
                             "enb13_pin": "3", "enb4_pin": "3", "enbsw_pin": "3"},
        observable_states={"reg1": "0", "reg2": "0", "reg3": "0",
                           "reg4": "0", "sw": "0"},
        expected_fail_blocks=("lcbg",),
    ),
    DiagnosticCase(
        name="d5",
        controllable_states={"vp1": "2", "vp1x": "4", "vp2": "2",
                             "enb13_pin": "1", "enb4_pin": "1", "enbsw_pin": "1"},
        observable_states={"reg1": "1", "reg2": "1", "reg3": "1",
                           "reg4": "1", "sw": "0"},
        expected_fail_blocks=("enbsw",),
    ),
]

#: The suspect list the paper deduces per case in Section IV-B.
PAPER_EXPECTED_SUSPECTS: dict[str, tuple[str, ...]] = {
    "d1": ("warnvpst", "hcbg"),
    "d2": ("enb13",),
    "d3": ("warnvpst",),
    "d4": ("lcbg",),
    "d5": ("enbsw",),
}

#: Table VII posterior probabilities (fractions) of the internal model
#: variables, per report column.  Column "Init" is the post-learning prior.
PAPER_INTERNAL_PROBABILITIES: dict[str, dict[str, dict[str, float]]] = {
    "Init": {
        "lcbg": {"0": 0.277, "1": 0.577, "2": 0.136, "3": 0.009},
        "enbsw": {"0": 0.808, "1": 0.192},
        "warnvpst": {"0": 0.533, "1": 0.467},
        "enblSen": {"0": 0.357, "1": 0.643},
        "vx": {"0": 0.175, "1": 0.825},
        "hcbg": {"0": 0.414, "1": 0.586},
        "enb4": {"0": 0.807, "1": 0.193},
        "enb13": {"0": 0.770, "1": 0.230},
    },
    "d1": {
        "lcbg": {"0": 0.0178, "1": 0.982, "2": 0.0001, "3": 0.0002},
        "enbsw": {"0": 0.837, "1": 0.163},
        "warnvpst": {"0": 0.408, "1": 0.592},
        "enblSen": {"0": 0.0417, "1": 0.958},
        "vx": {"0": 0.0136, "1": 0.986},
        "hcbg": {"0": 0.424, "1": 0.576},
        "enb4": {"0": 0.853, "1": 0.147},
        "enb13": {"0": 0.895, "1": 0.105},
    },
    "d2": {
        "lcbg": {"0": 0.0, "1": 1.0, "2": 0.0, "3": 0.0},
        "enbsw": {"0": 0.0033, "1": 0.997},
        "warnvpst": {"0": 0.0, "1": 1.0},
        "enblSen": {"0": 0.0078, "1": 0.992},
        "vx": {"0": 0.0076, "1": 0.992},
        "hcbg": {"0": 0.0731, "1": 0.927},
        "enb4": {"0": 0.0007, "1": 0.999},
        "enb13": {"0": 0.977, "1": 0.0234},
    },
    "d3": {
        "lcbg": {"0": 0.103, "1": 0.896, "2": 0.0005, "3": 0.00004},
        "enbsw": {"0": 0.993, "1": 0.0067},
        "warnvpst": {"0": 0.981, "1": 0.0188},
        "enblSen": {"0": 0.107, "1": 0.893},
        "vx": {"0": 0.0101, "1": 0.990},
        "hcbg": {"0": 0.291, "1": 0.709},
        "enb4": {"0": 0.994, "1": 0.0061},
        "enb13": {"0": 0.992, "1": 0.0084},
    },
    "d4": {
        "lcbg": {"0": 0.582, "1": 0.415, "2": 0.0078, "3": 0.0019},
        "enbsw": {"0": 0.949, "1": 0.051},
        "warnvpst": {"0": 0.948, "1": 0.052},
        "enblSen": {"0": 0.536, "1": 0.464},
        "vx": {"0": 0.0104, "1": 0.990},
        "hcbg": {"0": 0.664, "1": 0.336},
        "enb4": {"0": 0.949, "1": 0.0506},
        "enb13": {"0": 0.931, "1": 0.069},
    },
    "d5": {
        "lcbg": {"0": 0.0, "1": 1.0, "2": 0.0, "3": 0.0},
        "enbsw": {"0": 0.935, "1": 0.0647},
        "warnvpst": {"0": 0.0, "1": 1.0},
        "enblSen": {"0": 0.0067, "1": 0.993},
        "vx": {"0": 0.0072, "1": 0.993},
        "hcbg": {"0": 0.0526, "1": 0.947},
        "enb4": {"0": 0.0007, "1": 0.999},
        "enb13": {"0": 0.0, "1": 1.0},
    },
}

#: The fault the diagnostic expert attributes to each case (Table VI "Fail
#: blocks" column), mapped onto this library's model-variable names.  The
#: paper prints "warnpst" for d1/d3 which is the ``warnvpst`` model variable.
PAPER_CASE_FAIL_BLOCKS: dict[str, tuple[str, ...]] = {
    name: case.expected_fail_blocks for name, case in
    ((case.name, case) for case in PAPER_DIAGNOSTIC_CASES)
}
