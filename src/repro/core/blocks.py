"""Model variables (functional blocks) and their functional types.

Table I of the paper classifies every model variable of the BBN circuit model
as controllable, observable, both, or neither.  The functional type decides
the variable's role during diagnosis:

* ``CONTROL`` — the tester forces this block's state (test condition).
* ``OBSERVE`` — the tester measures this block's state (test response).
* ``CONTROL_OBSERVE`` — both of the above.
* ``INTERNAL`` — neither controllable nor observable; its state is what the
  diagnosis has to infer.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.exceptions import ModelBuildError


class BlockType(str, enum.Enum):
    """Functional type of a model variable (Table I)."""

    CONTROL = "CONTROL"
    OBSERVE = "OBSERVE"
    CONTROL_OBSERVE = "CONTROL/OBSERVE"
    INTERNAL = "NOT CONTROL/OBSERVE"

    @property
    def is_controllable(self) -> bool:
        """``True`` when the tester can force this block's state."""
        return self in (BlockType.CONTROL, BlockType.CONTROL_OBSERVE)

    @property
    def is_observable(self) -> bool:
        """``True`` when the tester can measure this block's state."""
        return self in (BlockType.OBSERVE, BlockType.CONTROL_OBSERVE)

    @property
    def is_internal(self) -> bool:
        """``True`` when the block is neither controllable nor observable."""
        return self is BlockType.INTERNAL


@dataclasses.dataclass(frozen=True)
class ModelVariable:
    """One model variable of the BBN circuit model.

    Attributes
    ----------
    name:
        The model-variable name (e.g. ``"reg1"`` or ``"warnvpst"``).
    block_type:
        Functional type per Table I / Table V.
    circuit_reference:
        The block's reference location in the functional block schematic
        (the ``Ckt. Ref.`` column of Table V); ``None`` for variables that do
        not appear in the schematic (e.g. ``vx`` and ``hcbg``).
    description:
        Free-text description of the block's function.
    """

    name: str
    block_type: BlockType
    circuit_reference: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelBuildError("model variable name must be non-empty")
        if not isinstance(self.block_type, BlockType):
            raise ModelBuildError(
                f"block_type of {self.name!r} must be a BlockType, "
                f"got {type(self.block_type).__name__}")

    @property
    def is_controllable(self) -> bool:
        """``True`` when the tester can force this variable's state."""
        return self.block_type.is_controllable

    @property
    def is_observable(self) -> bool:
        """``True`` when the tester can measure this variable's state."""
        return self.block_type.is_observable

    @property
    def is_internal(self) -> bool:
        """``True`` when this variable's state must be inferred."""
        return self.block_type.is_internal
