"""Small validation helpers used across the library.

These helpers raise :class:`ValueError` with descriptive messages; callers
that want library-specific exception types catch and re-raise.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


def check_probability_vector(values: Sequence[float], *, atol: float = 1e-6,
                             name: str = "probabilities") -> np.ndarray:
    """Validate that ``values`` is a probability vector and return it as an array.

    The vector must be non-negative and sum to one within ``atol``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} contains negative entries: {arr}")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1.0, got {total}")
    return arr


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be strictly positive, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is non-negative."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(value: float, low: float, high: float,
                   name: str = "value") -> float:
    """Validate that ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_unique(items: Iterable, name: str = "items") -> list:
    """Validate that ``items`` contains no duplicates and return it as a list."""
    items = list(items)
    seen = set()
    duplicates = []
    for item in items:
        if item in seen:
            duplicates.append(item)
        seen.add(item)
    if duplicates:
        raise ValueError(f"{name} contains duplicates: {duplicates}")
    return items
