"""Plain-text table rendering.

The paper reports its results as tables (Tables I–VII).  The benchmark
harness regenerates those tables as aligned ASCII text so that the output of
a benchmark run can be compared side by side with the paper.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _column_widths(header: Sequence[str], rows: Sequence[Sequence[str]]) -> list[int]:
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    return widths


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Render ``rows`` under ``header`` as an aligned ASCII table.

    Parameters
    ----------
    header:
        Column names.
    rows:
        Sequence of rows; each row must have ``len(header)`` cells.  Cells are
        converted with :func:`str`.
    title:
        Optional table title printed above the header.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)} columns")
    widths = _column_widths(header, str_rows)
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_probability_table(probabilities: Mapping[str, Mapping[str, float]],
                             *, title: str | None = None,
                             percent: bool = True) -> str:
    """Render a nested ``{variable: {state: probability}}`` mapping as a table.

    Used for Table-VII-style diagnostic reports where each row is a
    (variable, state) pair and the value is the posterior probability.
    """
    header = ["Variable", "State", "Prob.%" if percent else "Prob."]
    rows = []
    for variable, states in probabilities.items():
        for state, prob in states.items():
            value = prob * 100.0 if percent else prob
            rows.append([variable, state, f"{value:.2f}"])
    return format_table(header, rows, title=title)
