"""Shared utilities: table rendering, validation helpers and RNG handling."""

from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table, format_probability_table
from repro.utils.validation import (
    check_probability_vector,
    check_positive,
    check_non_negative,
    check_in_range,
    check_unique,
)

__all__ = [
    "ensure_rng",
    "format_table",
    "format_probability_table",
    "check_probability_vector",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_unique",
]
