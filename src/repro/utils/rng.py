"""Random-number-generator handling.

All stochastic code in the library accepts either ``None``, an integer seed,
or an already-constructed :class:`numpy.random.Generator`.  Centralising the
conversion keeps experiments reproducible: benchmarks pass integer seeds, the
library turns them into generators exactly once.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a fresh non-deterministic generator, an ``int`` for a
        seeded generator, or an existing generator which is returned
        unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when a simulation needs per-device independent streams while the
    caller only holds a single seeded generator.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
