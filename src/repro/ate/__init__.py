"""Automatic-test-equipment (ATE) substrate.

The paper's model builder consumes "no-stop on fail functional (specification)
test data from a sufficiently large number of defective samples".  This
subpackage emulates the production-test side of that flow:

* :mod:`repro.ate.test_spec` — individual specification tests (force
  conditions, measure one observable block, compare against limits).
* :mod:`repro.ate.test_program` — an ordered, no-stop-on-fail collection of
  specification tests.
* :mod:`repro.ate.tester` — runs a test program against a simulated (and
  possibly faulty) device, producing a device datalog.
* :mod:`repro.ate.datalog` — ASCII datalog records, writer and parser
  (the stand-in for the proprietary ATE log format Dlog2BBN reads).
* :mod:`repro.ate.population` — generation of failed/passing device
  populations (the stand-in for the 70 customer returns).
"""

from repro.ate.test_spec import SpecificationTest, TestLimit
from repro.ate.test_program import TestProgram
from repro.ate.tester import ATETester, DeviceResult, Measurement
from repro.ate.datalog import (DatalogRecord, DeviceDatalog, write_datalog,
                               parse_datalog, read_columnar)
from repro.ate.population import DevicePopulation, PopulationGenerator
from repro.ate.store import DeviceResultStore, store_from_datalogs

__all__ = [
    "SpecificationTest",
    "TestLimit",
    "TestProgram",
    "ATETester",
    "DeviceResult",
    "Measurement",
    "DatalogRecord",
    "DeviceDatalog",
    "write_datalog",
    "parse_datalog",
    "read_columnar",
    "DeviceResultStore",
    "store_from_datalogs",
    "DevicePopulation",
    "PopulationGenerator",
]
