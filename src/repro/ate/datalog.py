"""ASCII ATE datalogs: records, writer and parser.

Dlog2BBN, the paper's model builder, "converts ATE test files into cases".
The proprietary log format is not public, so this module defines a simple
ASCII datalog that carries the same information a production datalog does —
device identity, test number/name, forced conditions, measured value, limits
and the pass/fail verdict — and a parser that reads it back.  The case
generator consumes parsed datalogs, never simulator objects, so the pipeline
is the same whether the log came from the behavioural simulator or from a
real tester (after format conversion).

Format (one record per line, ``|``-separated key=value fields)::

    DEVICE=VR-0001|TEST=110|NAME=reg1_nominal|BLOCK=reg1|VALUE=8.4987|LO=8.0|HI=9.0|UNITS=V|RESULT=P|COND=vp1:13.5;vp2:8.0
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from pathlib import Path

import numpy as np

from repro.exceptions import DatalogError


@dataclasses.dataclass(frozen=True)
class DatalogRecord:
    """One measurement record of one device.

    Attributes
    ----------
    device_id:
        Identifier of the device under test.
    test_number / test_name:
        The ATE test that produced the record.
    block:
        The observable model variable the test measures.
    value:
        The measured value.
    lower / upper:
        The specification limits applied.
    passed:
        The pass/fail verdict.
    conditions:
        The forced values of the controllable blocks during the test.
    units:
        Measurement units.
    """

    device_id: str
    test_number: int
    test_name: str
    block: str
    value: float
    lower: float
    upper: float
    passed: bool
    conditions: Mapping[str, float]
    units: str = "V"

    def to_line(self) -> str:
        """Serialise the record to one datalog line."""
        conditions = ";".join(f"{block}:{value:g}"
                              for block, value in self.conditions.items())
        return ("DEVICE={device}|TEST={number}|NAME={name}|BLOCK={block}|"
                "VALUE={value:.6g}|LO={lower:g}|HI={upper:g}|UNITS={units}|"
                "RESULT={result}|COND={conditions}").format(
                    device=self.device_id, number=self.test_number,
                    name=self.test_name, block=self.block, value=self.value,
                    lower=self.lower, upper=self.upper, units=self.units,
                    result="P" if self.passed else "F", conditions=conditions)

    @classmethod
    def from_line(cls, line: str) -> "DatalogRecord":
        """Parse one datalog line."""
        fields: dict[str, str] = {}
        for part in line.strip().split("|"):
            if not part:
                continue
            if "=" not in part:
                raise DatalogError(f"malformed datalog field {part!r} in line {line!r}")
            key, _, value = part.partition("=")
            fields[key] = value
        required = ["DEVICE", "TEST", "NAME", "BLOCK", "VALUE", "LO", "HI", "RESULT"]
        missing = [key for key in required if key not in fields]
        if missing:
            raise DatalogError(f"datalog line is missing fields {missing}: {line!r}")
        conditions: dict[str, float] = {}
        condition_text = fields.get("COND", "")
        if condition_text:
            for piece in condition_text.split(";"):
                if not piece:
                    continue
                block, _, value = piece.partition(":")
                if not block or not value:
                    raise DatalogError(
                        f"malformed condition {piece!r} in line {line!r}")
                conditions[block] = float(value)
        try:
            return cls(device_id=fields["DEVICE"],
                       test_number=int(fields["TEST"]),
                       test_name=fields["NAME"],
                       block=fields["BLOCK"],
                       value=float(fields["VALUE"]),
                       lower=float(fields["LO"]),
                       upper=float(fields["HI"]),
                       passed=fields["RESULT"].upper() == "P",
                       conditions=conditions,
                       units=fields.get("UNITS", "V"))
        except ValueError as exc:
            raise DatalogError(f"cannot parse numeric field in line {line!r}") from exc


@dataclasses.dataclass
class DeviceDatalog:
    """The complete no-stop-on-fail datalog of one device.

    Attributes
    ----------
    device_id:
        Identifier of the device.
    records:
        One record per executed specification test, in execution order.
    metadata:
        Free-form annotations (e.g. the injected fault for simulated devices,
        kept out of the learning path and used only for scoring).
    """

    device_id: str
    records: list[DatalogRecord] = dataclasses.field(default_factory=list)
    metadata: dict[str, str] = dataclasses.field(default_factory=dict)

    def add(self, record: DatalogRecord) -> None:
        """Append a record, enforcing that it belongs to this device."""
        if record.device_id != self.device_id:
            raise DatalogError(
                f"record for device {record.device_id!r} added to datalog of "
                f"{self.device_id!r}")
        self.records.append(record)

    @property
    def failed(self) -> bool:
        """``True`` when at least one specification test failed."""
        return any(not record.passed for record in self.records)

    def failing_tests(self) -> list[DatalogRecord]:
        """Return the records of the failing tests."""
        return [record for record in self.records if not record.passed]

    def measurements_for(self, block: str) -> list[DatalogRecord]:
        """Return every record measuring ``block``."""
        return [record for record in self.records if record.block == block]

    def __len__(self) -> int:
        return len(self.records)


def write_datalog(datalogs: Iterable[DeviceDatalog], path: str | Path) -> Path:
    """Write device datalogs to ``path`` in the ASCII format.

    Device metadata is written as comment lines (``# DEVICE key=value``) so
    that the ground-truth fault of simulated devices survives the round trip
    without contaminating the measurement records.
    """
    path = Path(path)
    lines: list[str] = []
    for datalog in datalogs:
        for key, value in datalog.metadata.items():
            lines.append(f"# DEVICE {datalog.device_id} {key}={value}")
        for record in datalog.records:
            lines.append(record.to_line())
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def parse_datalog(path: str | Path) -> list[DeviceDatalog]:
    """Parse an ASCII datalog file back into per-device datalogs."""
    path = Path(path)
    if not path.exists():
        raise DatalogError(f"datalog file {path} does not exist")
    datalogs: dict[str, DeviceDatalog] = {}
    for line_number, line in enumerate(path.read_text(encoding="ascii").splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(maxsplit=4)
            # "# DEVICE <id> key=value"
            if len(parts) >= 4 and parts[1] == "DEVICE" and "=" in parts[3]:
                device_id = parts[2]
                key, _, value = " ".join(parts[3:]).partition("=")
                datalogs.setdefault(device_id, DeviceDatalog(device_id))
                datalogs[device_id].metadata[key.strip()] = value.strip()
            continue
        try:
            record = DatalogRecord.from_line(stripped)
        except DatalogError as exc:
            raise DatalogError(f"{path}:{line_number}: {exc}",
                               path=str(path), line_number=line_number) from exc
        datalogs.setdefault(record.device_id, DeviceDatalog(record.device_id))
        datalogs[record.device_id].add(record)
    return list(datalogs.values())


_REQUIRED_FIELDS = ("DEVICE", "TEST", "NAME", "BLOCK", "VALUE", "LO", "HI",
                    "RESULT")


def read_columnar(path: str | Path, *, chunk_devices: int = 1024):
    """Parse an ASCII datalog straight into a columnar store.

    Unlike :func:`parse_datalog`, which builds one :class:`DatalogRecord`
    dataclass per line, this reader learns the test program from the first
    device's records and then only extracts the value and verdict of each
    subsequent line into ``(tests, devices)`` planes, growing the device
    axis in ``chunk_devices``-column chunks.  It is the streaming entry
    point for ATE-scale datalogs.

    Every device must have run the same program in the same order (the
    batched tester's output format); a device whose records deviate raises
    :class:`DatalogError` with the offending line number.
    """
    from repro.ate.store import DeviceResultStore
    from repro.circuits.faults import BlockFault, FaultMode

    path = Path(path)
    if not path.exists():
        raise DatalogError(f"datalog file {path} does not exist")

    def fail(line_number: int, message: str) -> DatalogError:
        return DatalogError(f"{path}:{line_number}: {message}",
                            path=str(path), line_number=line_number)

    # Program rows learned from the first device: (number, name, block,
    # lower, upper, cond-text) tuples; COND is compared as raw text (cheap)
    # and parsed to floats only once per program row.
    program: list[tuple] = []
    program_done = False
    device_ids: list[str] = []
    device_column: dict[str, int] = {}
    cursor: dict[str, int] = {}          # next expected program row per device
    values: np.ndarray | None = None
    passed: np.ndarray | None = None
    fault_labels: dict[str, str] = {}

    def ensure_capacity(rows_needed: int, cols_needed: int) -> None:
        """Grow the planes geometrically (columns in device chunks)."""
        nonlocal values, passed
        if values is None:
            shape = (max(rows_needed, 16), max(cols_needed, chunk_devices))
            values = np.empty(shape)
            passed = np.empty(shape, dtype=bool)
            return
        rows, cols = values.shape
        if rows_needed <= rows and cols_needed <= cols:
            return
        new_rows = rows if rows_needed <= rows else max(rows_needed, 2 * rows)
        new_cols = cols if cols_needed <= cols else max(cols_needed,
                                                        cols + chunk_devices)
        new_values = np.empty((new_rows, new_cols))
        new_passed = np.empty((new_rows, new_cols), dtype=bool)
        new_values[:rows, :cols] = values
        new_passed[:rows, :cols] = passed
        values, passed = new_values, new_passed

    with path.open(encoding="ascii") as handle:
        for line_number, line in enumerate(handle, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                parts = stripped.split(maxsplit=4)
                if (len(parts) >= 4 and parts[1] == "DEVICE"
                        and "=" in parts[3]):
                    key, _, value = " ".join(parts[3:]).partition("=")
                    if key.strip() == "injected_faults":
                        fault_labels[parts[2]] = value.strip()
                continue
            fields: dict[str, str] = {}
            for part in stripped.split("|"):
                if not part:
                    continue
                key, sep, value = part.partition("=")
                if not sep:
                    raise fail(line_number,
                               f"malformed datalog field {part!r}")
                fields[key] = value
            missing = [key for key in _REQUIRED_FIELDS if key not in fields]
            if missing:
                raise fail(line_number,
                           f"datalog line is missing fields {missing}")
            device_id = fields["DEVICE"]
            column = device_column.get(device_id)
            if column is None:
                column = len(device_ids)
                device_column[device_id] = column
                device_ids.append(device_id)
                cursor[device_id] = 0
                if program:
                    program_done = True
            row = cursor[device_id]
            signature = (fields["TEST"], fields["NAME"], fields["BLOCK"],
                         fields["LO"], fields["HI"], fields.get("COND", ""))
            if not program_done and column == 0:
                program.append(signature + (line_number,))
            else:
                if row >= len(program) or program[row][:6] != signature:
                    raise fail(line_number,
                               f"device {device_id!r} deviates from the test "
                               "program of the first device; the columnar "
                               "reader requires a homogeneous datalog (use "
                               "parse_datalog for heterogeneous logs)")
            try:
                value = float(fields["VALUE"])
            except ValueError:
                raise fail(line_number,
                           f"cannot parse numeric field VALUE={fields['VALUE']!r}"
                           ) from None
            ensure_capacity(row + 1, column + 1)
            values[row, column] = value
            passed[row, column] = fields["RESULT"].upper() == "P"
            cursor[device_id] = row + 1

    if not program:
        raise DatalogError(f"datalog file {path} contains no records")
    short = [device for device in device_ids
             if cursor[device] != len(program)]
    if short:
        raise DatalogError(
            f"{path}: devices {short[:5]} have fewer records than the "
            f"{len(program)}-test program of the first device")

    tests = len(program)
    devices = len(device_ids)
    values = values[:tests, :devices]
    passed = passed[:tests, :devices]
    numbers, names, blocks, lowers, uppers, conditions = [], [], [], [], [], []
    for number, name, block, lower, upper, cond_text, row_line in program:
        try:
            numbers.append(int(number))
            lowers.append(float(lower))
            uppers.append(float(upper))
        except ValueError:
            raise fail(row_line, "cannot parse numeric field") from None
        names.append(name)
        blocks.append(block)
        parsed: dict[str, float] = {}
        if cond_text:
            for piece in cond_text.split(";"):
                if not piece:
                    continue
                cond_block, _, cond_value = piece.partition(":")
                if not cond_block or not cond_value:
                    raise fail(row_line, f"malformed condition {piece!r}")
                try:
                    parsed[cond_block] = float(cond_value)
                except ValueError:
                    raise fail(row_line,
                               f"malformed condition {piece!r}") from None
        conditions.append(parsed)

    fault_index: list[int] = []
    fault_blocks: list[str] = []
    fault_modes: list[str] = []
    fault_severities: list[float] = []
    for device_id, labels in fault_labels.items():
        column = device_column.get(device_id)
        if column is None or not labels:
            continue
        for label in labels.split(","):
            block, _, mode = label.partition(":")
            if not block or not mode:
                raise DatalogError(
                    f"{path}: malformed injected_faults label {label!r} for "
                    f"device {device_id!r}")
            fault_index.append(column)
            fault_blocks.append(block)
            fault_modes.append(FaultMode(mode).value)
            fault_severities.append(1.0)
    order = np.argsort(fault_index, kind="stable") if fault_index else []
    return DeviceResultStore(
        device_ids, values, passed, numbers, names, blocks, lowers, uppers,
        conditions,
        [fault_index[i] for i in order], [fault_blocks[i] for i in order],
        [fault_modes[i] for i in order], [fault_severities[i] for i in order])
