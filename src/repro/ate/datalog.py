"""ASCII ATE datalogs: records, writer and parser.

Dlog2BBN, the paper's model builder, "converts ATE test files into cases".
The proprietary log format is not public, so this module defines a simple
ASCII datalog that carries the same information a production datalog does —
device identity, test number/name, forced conditions, measured value, limits
and the pass/fail verdict — and a parser that reads it back.  The case
generator consumes parsed datalogs, never simulator objects, so the pipeline
is the same whether the log came from the behavioural simulator or from a
real tester (after format conversion).

Format (one record per line, ``|``-separated key=value fields)::

    DEVICE=VR-0001|TEST=110|NAME=reg1_nominal|BLOCK=reg1|VALUE=8.4987|LO=8.0|HI=9.0|UNITS=V|RESULT=P|COND=vp1:13.5;vp2:8.0
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.exceptions import DatalogError


@dataclasses.dataclass(frozen=True)
class DatalogRecord:
    """One measurement record of one device.

    Attributes
    ----------
    device_id:
        Identifier of the device under test.
    test_number / test_name:
        The ATE test that produced the record.
    block:
        The observable model variable the test measures.
    value:
        The measured value.
    lower / upper:
        The specification limits applied.
    passed:
        The pass/fail verdict.
    conditions:
        The forced values of the controllable blocks during the test.
    units:
        Measurement units.
    """

    device_id: str
    test_number: int
    test_name: str
    block: str
    value: float
    lower: float
    upper: float
    passed: bool
    conditions: Mapping[str, float]
    units: str = "V"

    def to_line(self) -> str:
        """Serialise the record to one datalog line."""
        conditions = ";".join(f"{block}:{value:g}"
                              for block, value in self.conditions.items())
        return ("DEVICE={device}|TEST={number}|NAME={name}|BLOCK={block}|"
                "VALUE={value:.6g}|LO={lower:g}|HI={upper:g}|UNITS={units}|"
                "RESULT={result}|COND={conditions}").format(
                    device=self.device_id, number=self.test_number,
                    name=self.test_name, block=self.block, value=self.value,
                    lower=self.lower, upper=self.upper, units=self.units,
                    result="P" if self.passed else "F", conditions=conditions)

    @classmethod
    def from_line(cls, line: str) -> "DatalogRecord":
        """Parse one datalog line."""
        fields: dict[str, str] = {}
        for part in line.strip().split("|"):
            if not part:
                continue
            if "=" not in part:
                raise DatalogError(f"malformed datalog field {part!r} in line {line!r}")
            key, _, value = part.partition("=")
            fields[key] = value
        required = ["DEVICE", "TEST", "NAME", "BLOCK", "VALUE", "LO", "HI", "RESULT"]
        missing = [key for key in required if key not in fields]
        if missing:
            raise DatalogError(f"datalog line is missing fields {missing}: {line!r}")
        conditions: dict[str, float] = {}
        condition_text = fields.get("COND", "")
        if condition_text:
            for piece in condition_text.split(";"):
                if not piece:
                    continue
                block, _, value = piece.partition(":")
                if not block or not value:
                    raise DatalogError(
                        f"malformed condition {piece!r} in line {line!r}")
                conditions[block] = float(value)
        try:
            return cls(device_id=fields["DEVICE"],
                       test_number=int(fields["TEST"]),
                       test_name=fields["NAME"],
                       block=fields["BLOCK"],
                       value=float(fields["VALUE"]),
                       lower=float(fields["LO"]),
                       upper=float(fields["HI"]),
                       passed=fields["RESULT"].upper() == "P",
                       conditions=conditions,
                       units=fields.get("UNITS", "V"))
        except ValueError as exc:
            raise DatalogError(f"cannot parse numeric field in line {line!r}") from exc


@dataclasses.dataclass
class DeviceDatalog:
    """The complete no-stop-on-fail datalog of one device.

    Attributes
    ----------
    device_id:
        Identifier of the device.
    records:
        One record per executed specification test, in execution order.
    metadata:
        Free-form annotations (e.g. the injected fault for simulated devices,
        kept out of the learning path and used only for scoring).
    """

    device_id: str
    records: list[DatalogRecord] = dataclasses.field(default_factory=list)
    metadata: dict[str, str] = dataclasses.field(default_factory=dict)

    def add(self, record: DatalogRecord) -> None:
        """Append a record, enforcing that it belongs to this device."""
        if record.device_id != self.device_id:
            raise DatalogError(
                f"record for device {record.device_id!r} added to datalog of "
                f"{self.device_id!r}")
        self.records.append(record)

    @property
    def failed(self) -> bool:
        """``True`` when at least one specification test failed."""
        return any(not record.passed for record in self.records)

    def failing_tests(self) -> list[DatalogRecord]:
        """Return the records of the failing tests."""
        return [record for record in self.records if not record.passed]

    def measurements_for(self, block: str) -> list[DatalogRecord]:
        """Return every record measuring ``block``."""
        return [record for record in self.records if record.block == block]

    def __len__(self) -> int:
        return len(self.records)


def write_datalog(datalogs: Iterable[DeviceDatalog], path: str | Path) -> Path:
    """Write device datalogs to ``path`` in the ASCII format.

    Device metadata is written as comment lines (``# DEVICE key=value``) so
    that the ground-truth fault of simulated devices survives the round trip
    without contaminating the measurement records.
    """
    path = Path(path)
    lines: list[str] = []
    for datalog in datalogs:
        for key, value in datalog.metadata.items():
            lines.append(f"# DEVICE {datalog.device_id} {key}={value}")
        for record in datalog.records:
            lines.append(record.to_line())
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def parse_datalog(path: str | Path) -> list[DeviceDatalog]:
    """Parse an ASCII datalog file back into per-device datalogs."""
    path = Path(path)
    if not path.exists():
        raise DatalogError(f"datalog file {path} does not exist")
    datalogs: dict[str, DeviceDatalog] = {}
    for line_number, line in enumerate(path.read_text(encoding="ascii").splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(maxsplit=4)
            # "# DEVICE <id> key=value"
            if len(parts) >= 4 and parts[1] == "DEVICE" and "=" in parts[3]:
                device_id = parts[2]
                key, _, value = " ".join(parts[3:]).partition("=")
                datalogs.setdefault(device_id, DeviceDatalog(device_id))
                datalogs[device_id].metadata[key.strip()] = value.strip()
            continue
        try:
            record = DatalogRecord.from_line(stripped)
        except DatalogError as exc:
            raise DatalogError(f"{path}:{line_number}: {exc}") from exc
        datalogs.setdefault(record.device_id, DeviceDatalog(record.device_id))
        datalogs[record.device_id].add(record)
    return list(datalogs.values())
