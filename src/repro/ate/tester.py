"""The ATE tester: executes a test program against a simulated device.

The tester is deliberately ignorant of faults and process variation — it is
handed a configured :class:`~repro.circuits.behavioral.BehavioralSimulator`
plus the per-device fault/variation context and simply walks the test
program, forcing conditions and recording measurements, exactly like a
production tester walking a device under test.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.ate.datalog import DatalogRecord, DeviceDatalog
from repro.ate.test_program import TestProgram
from repro.circuits.behavioral import BehavioralSimulator
from repro.circuits.faults import BlockFault
from repro.exceptions import ATEError


@dataclasses.dataclass(frozen=True)
class Measurement:
    """One executed specification test and its outcome.

    Attributes
    ----------
    test_number / test_name:
        Identity of the specification test.
    block:
        The observable model variable that was measured.
    value:
        The measured value.
    lower / upper:
        The specification limits applied during the test.
    passed:
        Pass/fail verdict.
    conditions:
        Forced values of the controllable blocks during the test.
    """

    test_number: int
    test_name: str
    block: str
    value: float
    lower: float
    upper: float
    passed: bool
    conditions: Mapping[str, float]


@dataclasses.dataclass
class DeviceResult:
    """The outcome of running the full program on one device.

    Attributes
    ----------
    device_id:
        Identifier of the device.
    measurements:
        One measurement per executed specification test, in program order.
    faults:
        The injected faults (empty for a defect-free device).
    """

    device_id: str
    measurements: list[Measurement]
    faults: dict[str, BlockFault]

    @property
    def failed(self) -> bool:
        """``True`` when any specification test failed."""
        return any(not measurement.passed for measurement in self.measurements)

    def failing_measurements(self) -> list[Measurement]:
        """Return only the failing measurements."""
        return [m for m in self.measurements if not m.passed]

    def to_datalog(self) -> DeviceDatalog:
        """Convert the result into an ASCII-serialisable device datalog."""
        datalog = DeviceDatalog(self.device_id)
        if self.faults:
            datalog.metadata["injected_faults"] = ",".join(
                fault.label for fault in self.faults.values())
        for measurement in self.measurements:
            datalog.add(DatalogRecord(
                device_id=self.device_id,
                test_number=measurement.test_number,
                test_name=measurement.test_name,
                block=measurement.block,
                value=measurement.value,
                lower=measurement.lower,
                upper=measurement.upper,
                passed=measurement.passed,
                conditions=measurement.conditions,
            ))
        return datalog


class ATETester:
    """Runs a :class:`TestProgram` on simulated devices.

    Parameters
    ----------
    simulator:
        The behavioural simulator of the device under test.
    program:
        The functional test program to execute.
    stop_on_fail:
        Production wafer sort often aborts at the first failure; the paper's
        diagnosis flow requires *no-stop-on-fail* data, which is the default.
    """

    def __init__(self, simulator: BehavioralSimulator, program: TestProgram,
                 stop_on_fail: bool = False) -> None:
        if len(program) == 0:
            raise ATEError(f"test program {program.name!r} has no tests")
        for test in program:
            if test.measured_block not in simulator.netlist:
                raise ATEError(
                    f"test {test.name!r} measures unknown block "
                    f"{test.measured_block!r}")
        self.simulator = simulator
        self.program = program
        self.stop_on_fail = bool(stop_on_fail)

    def test_device(self, device_id: str,
                    faults: Mapping[str, BlockFault] | None = None,
                    device_multipliers: Mapping[str, float] | None = None
                    ) -> DeviceResult:
        """Execute the whole program on one (possibly faulty) device."""
        multipliers = device_multipliers
        if multipliers is None:
            multipliers = self.simulator.sample_device()
        # Validate the fault map once for the whole program, not per test.
        context = self.simulator.device_context(faults, multipliers)
        measurements: list[Measurement] = []
        for test in self.program:
            simulation = self.simulator.run_with_context(test.conditions, context)
            value = simulation.voltage(test.measured_block)
            passed = test.evaluate(value)
            measurements.append(Measurement(
                test_number=test.number, test_name=test.name,
                block=test.measured_block, value=value,
                lower=test.limit.lower, upper=test.limit.upper,
                passed=passed, conditions=dict(test.conditions)))
            if self.stop_on_fail and not passed:
                break
        return DeviceResult(device_id=device_id, measurements=measurements,
                            faults=dict(context.faults))

    def test_devices(self, device_ids: Sequence[str],
                     faults_per_device: Sequence[Mapping[str, BlockFault] | None] | None = None,
                     device_multipliers=None) -> list[DeviceResult]:
        """Execute the whole program on a population of devices at once.

        The program is walked once; every test measures all devices through
        the batched simulator, and the per-device
        :class:`DeviceResult`/:class:`Measurement` rows are materialised from
        the resulting ``(tests, devices, blocks)`` voltage array.  With the
        same seeds and explicit multipliers this reproduces sequential
        :meth:`test_device` calls bit-for-bit (the equivalence tests pin it).

        Parameters
        ----------
        device_ids:
            One identifier per device.
        faults_per_device:
            One fault map (or ``None``) per device; ``None`` for an
            all-defect-free population.
        device_multipliers:
            ``None`` to sample process variation for the whole population in
            one draw, a ``(devices, blocks)`` array, or per-device mappings.
        """
        if self.stop_on_fail:
            raise ATEError(
                "test_devices requires a no-stop-on-fail program; batch "
                "testing always measures every specification test")
        if len(device_ids) == 0:
            return []
        return self.test_devices_store(
            device_ids, faults_per_device, device_multipliers).to_results()

    def test_devices_store(self, device_ids: Sequence[str],
                           faults_per_device: Sequence[Mapping[str, BlockFault] | None] | None = None,
                           device_multipliers=None):
        """Batch-test a population into a columnar :class:`DeviceResultStore`.

        The ``(tests, devices)`` value/verdict planes are gathered directly
        from the batched simulator's voltage array — no per-measurement
        Python objects are created, so this is the entry point for
        ATE-scale training populations.  :meth:`test_devices` is this plus
        :meth:`DeviceResultStore.to_results`.
        """
        # Imported here: repro.ate.store needs the row classes defined above.
        from repro.ate.store import DeviceResultStore

        if self.stop_on_fail:
            raise ATEError(
                "test_devices requires a no-stop-on-fail program; batch "
                "testing always measures every specification test")
        device_ids = list(device_ids)
        count = len(device_ids)
        if count == 0:
            raise ATEError("cannot build a store for an empty device list")
        if faults_per_device is None:
            fault_maps: list[dict[str, BlockFault]] = [{} for _ in device_ids]
        else:
            if len(faults_per_device) != count:
                raise ATEError(
                    f"got {len(faults_per_device)} fault maps for "
                    f"{count} devices")
            fault_maps = [dict(faults or {}) for faults in faults_per_device]
        multipliers = device_multipliers
        if multipliers is None:
            multipliers = self.simulator.sample_devices(count)
        tests = self.program.tests
        voltages = self.simulator.run_program(
            [test.conditions for test in tests], fault_maps, multipliers)
        column = self.simulator.plan.column
        columns = np.array([column[test.measured_block] for test in tests])
        # values[t, d] = voltages[t, d, columns[t]] in one gather.
        values = voltages[np.arange(len(tests)), :, columns]
        lowers = np.array([test.limit.lower for test in tests])
        uppers = np.array([test.limit.upper for test in tests])
        passed = (values >= lowers[:, None]) & (values <= uppers[:, None])
        fault_index: list[int] = []
        fault_blocks: list[str] = []
        fault_modes: list[str] = []
        fault_severities: list[float] = []
        for device, faults in enumerate(fault_maps):
            for fault in faults.values():
                fault_index.append(device)
                fault_blocks.append(fault.block)
                fault_modes.append(fault.mode.value)
                fault_severities.append(fault.severity)
        return DeviceResultStore(
            device_ids, values, passed,
            [test.number for test in tests], [test.name for test in tests],
            [test.measured_block for test in tests], lowers, uppers,
            [dict(test.conditions) for test in tests],
            fault_index, fault_blocks, fault_modes, fault_severities)
