"""Construction of functional test programs from circuit-model descriptions.

The full-circuit production test of the paper evaluates every specification
"more or less hierarchically", measuring each observable block under several
test conditions.  :func:`build_functional_program` turns a list of named
condition sets (forced controllable levels plus the expected state of every
observable) into a no-stop-on-fail :class:`~repro.ate.test_program.TestProgram`
whose limits are the expected state's voltage window.

:data:`REGULATOR_CONDITION_SETS` defines the condition sets used for the
voltage regulator throughout the examples and benchmarks: the nominal
operating point plus the supply and enable corners that the paper's
diagnostic cases d1–d5 exercise.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.ate.test_program import TestProgram
from repro.ate.test_spec import SpecificationTest, TestLimit
from repro.core.circuit_model import CircuitModelDescription
from repro.exceptions import ATEError


@dataclasses.dataclass(frozen=True)
class ConditionSet:
    """One named test condition: forced levels plus expected observable states.

    Attributes
    ----------
    label:
        Condition-set name (becomes part of the test names).
    conditions:
        Forced voltage per controllable model variable.
    expected_states:
        Expected state label per observable model variable; the state's
        voltage window becomes the specification limit of the test.
    """

    label: str
    conditions: Mapping[str, float]
    expected_states: Mapping[str, str]


def build_functional_program(name: str, model: CircuitModelDescription,
                             condition_sets: Sequence[ConditionSet],
                             start_number: int = 100,
                             number_step: int = 10) -> TestProgram:
    """Build a no-stop-on-fail functional test program.

    One specification test is generated per (condition set, observable)
    pair; test numbers are assigned in steps of ``number_step`` starting at
    ``start_number`` (mirroring how production programs leave gaps for later
    insertions).
    """
    if not condition_sets:
        raise ATEError("at least one condition set is required")
    program = TestProgram(name)
    number = start_number
    for condition_set in condition_sets:
        for variable in condition_set.conditions:
            if variable not in model.controllable_variables:
                raise ATEError(
                    f"condition set {condition_set.label!r} forces "
                    f"{variable!r}, which is not a controllable model variable")
        for observable, expected_state in condition_set.expected_states.items():
            if observable not in model.observable_variables:
                raise ATEError(
                    f"condition set {condition_set.label!r} expects a state for "
                    f"{observable!r}, which is not an observable model variable")
            table = model.state_table(observable)
            state = table.state(str(expected_state))
            low, high = sorted((state.lower, state.upper))
            program.add_test(SpecificationTest(
                number=number,
                name=f"{observable}_{condition_set.label}",
                measured_block=observable,
                conditions=dict(condition_set.conditions),
                limit=TestLimit(low, high),
                description=(f"{observable} expected in state {state.label} "
                             f"({state.remark}) under {condition_set.label}")))
            number += number_step
    return program


#: Condition sets of the voltage-regulator functional test.  The forced
#: voltages are representative mid-window levels of the controllable states
#: used by the paper's diagnostic cases (Table VI): nominal battery, the
#: intermediate-supply corner of case d3, the "enables driven high" corner of
#: case d4 and an all-enables-low corner that exercises the shutdown path.
REGULATOR_CONDITION_SETS: list[ConditionSet] = [
    ConditionSet(
        label="nominal",
        conditions={"vp1": 13.5, "vp1x": 13.5, "vp2": 8.0,
                    "enb13_pin": 2.2, "enb4_pin": 2.2, "enbsw_pin": 2.2},
        expected_states={"sw": "1", "reg1": "1", "reg2": "1",
                         "reg3": "1", "reg4": "1"},
    ),
    ConditionSet(
        label="high_enable",
        conditions={"vp1": 13.5, "vp1x": 13.5, "vp2": 8.0,
                    "enb13_pin": 5.0, "enb4_pin": 5.0, "enbsw_pin": 5.0},
        expected_states={"sw": "1", "reg1": "1", "reg2": "1",
                         "reg3": "1", "reg4": "1"},
    ),
    ConditionSet(
        label="intermediate_supply",
        conditions={"vp1": 6.0, "vp1x": 7.0, "vp2": 5.9,
                    "enb13_pin": 2.2, "enb4_pin": 2.2, "enbsw_pin": 2.2},
        expected_states={"sw": "0", "reg1": "0", "reg2": "1",
                         "reg3": "0", "reg4": "0"},
    ),
    ConditionSet(
        label="loaddump",
        conditions={"vp1": 20.0, "vp1x": 20.0, "vp2": 8.0,
                    "enb13_pin": 2.2, "enb4_pin": 2.2, "enbsw_pin": 2.2},
        expected_states={"sw": "2", "reg1": "1", "reg2": "1",
                         "reg3": "1", "reg4": "1"},
    ),
    ConditionSet(
        label="enables_low",
        conditions={"vp1": 13.5, "vp1x": 13.5, "vp2": 8.0,
                    "enb13_pin": 0.0, "enb4_pin": 0.0, "enbsw_pin": 0.0},
        expected_states={"sw": "0", "reg1": "0", "reg2": "1",
                         "reg3": "0", "reg4": "0"},
    ),
]


#: Condition sets of the hypothetical-circuit functional test (Fig. 1):
#: drive Block-1 at its two operational levels and once below threshold.
HYPOTHETICAL_CONDITION_SETS: list[ConditionSet] = [
    ConditionSet(
        label="drive_high",
        conditions={"block1": 3.0},
        expected_states={"block2": "1", "block4": "1"},
    ),
    ConditionSet(
        label="drive_low",
        conditions={"block1": 1.5},
        expected_states={"block2": "1", "block4": "1"},
    ),
    ConditionSet(
        label="drive_off",
        conditions={"block1": 0.2},
        expected_states={"block2": "0", "block4": "0"},
    ),
]
