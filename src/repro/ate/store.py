"""Columnar device-population store.

The paper's Dlog2BBN flow consumes "no-stop on fail" ATE datalogs from a
large defective-device population.  At that scale, one Python
``Measurement`` object per executed specification test is the dominant cost
of the training half of the pipeline (BENCH_2), so this module stores a
population the way the batched tester produces it: as ``(tests, devices)``
value/verdict planes plus a small per-test metadata table, with the injected
ground-truth faults in ragged parallel arrays.

The store is the array-native interchange format between the ATE layer and
the learning layer:

* :meth:`ATETester.test_devices_store <repro.ate.tester.ATETester.test_devices_store>`
  fills the planes directly from the batched simulator output, without
  materialising row objects;
* :meth:`DeviceResultStore.to_results` / :meth:`DeviceResultStore.from_results`
  convert to/from the per-device row objects, bit-for-bit;
* :meth:`DeviceResultStore.save` / :meth:`DeviceResultStore.load` persist the
  planes as ``.npy`` files that can be memory-mapped, so ATE-scale datalogs
  stream from disk without per-record Python objects;
* :meth:`CaseGenerator.case_matrix <repro.core.case_generation.CaseGenerator.case_matrix>`
  discretises the planes straight into an integer case matrix for the
  batched estimators.
"""

from __future__ import annotations

import json
import os
import zlib
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.ate.datalog import DatalogRecord, DeviceDatalog
from repro.ate.tester import DeviceResult, Measurement
from repro.circuits.faults import BlockFault, FaultMode
from repro.exceptions import ATEError, StoreCorruptionError

_META_FILE = "meta.json"
_ARRAY_FILES = ("values", "passed", "device_ids",
                "fault_index", "fault_blocks", "fault_modes",
                "fault_severities")

#: Header magic carried by format-2 store metadata.
STORE_MAGIC = "RDRS2"


class DeviceResultStore:
    """A device population as ``(tests, devices)`` planes.

    Parameters
    ----------
    device_ids:
        One identifier per device (the columns of the planes).
    values / passed:
        ``(tests, devices)`` measured values and pass/fail verdicts.
    test_numbers / test_names / blocks / lowers / uppers / conditions:
        Per-test metadata (the rows of the planes), shared by every device:
        test identity, the measured block, the specification limits and the
        forced conditions.
    fault_index / fault_blocks / fault_modes / fault_severities:
        Ragged ground-truth fault encoding: entry ``k`` says device column
        ``fault_index[k]`` carries ``BlockFault(fault_blocks[k],
        fault_modes[k], fault_severities[k])``.  Entries are ordered by
        device, then by fault-map insertion order, so per-device fault dicts
        round-trip exactly.
    """

    def __init__(self, device_ids: Sequence[str],
                 values: np.ndarray, passed: np.ndarray,
                 test_numbers: Sequence[int], test_names: Sequence[str],
                 blocks: Sequence[str], lowers: Sequence[float],
                 uppers: Sequence[float],
                 conditions: Sequence[Mapping[str, float]],
                 fault_index: np.ndarray | Sequence[int] = (),
                 fault_blocks: Sequence[str] = (),
                 fault_modes: Sequence[str] = (),
                 fault_severities: np.ndarray | Sequence[float] = ()) -> None:
        self.device_ids = np.asarray(device_ids, dtype=np.str_)
        self.values = np.asarray(values, dtype=float)
        self.passed = np.asarray(passed, dtype=bool)
        self.test_numbers = np.asarray(test_numbers, dtype=np.int64)
        self.test_names = [str(name) for name in test_names]
        self.blocks = [str(block) for block in blocks]
        self.lowers = np.asarray(lowers, dtype=float)
        self.uppers = np.asarray(uppers, dtype=float)
        self.conditions = [dict(mapping) for mapping in conditions]
        self.fault_index = np.asarray(fault_index, dtype=np.int64)
        self.fault_blocks = np.asarray(fault_blocks, dtype=np.str_)
        self.fault_modes = np.asarray(fault_modes, dtype=np.str_)
        self.fault_severities = np.asarray(fault_severities, dtype=float)
        tests, devices = self.values.shape if self.values.ndim == 2 else (-1, -1)
        if self.values.ndim != 2 or self.passed.shape != (tests, devices):
            raise ATEError(
                "store planes must be (tests, devices) arrays of equal shape")
        if len(self.device_ids) != devices:
            raise ATEError(
                f"store has {devices} device columns but "
                f"{len(self.device_ids)} device ids")
        for name, row in (("test_numbers", self.test_numbers),
                          ("test_names", self.test_names),
                          ("blocks", self.blocks),
                          ("lowers", self.lowers),
                          ("uppers", self.uppers),
                          ("conditions", self.conditions)):
            if len(row) != tests:
                raise ATEError(
                    f"store has {tests} test rows but {len(row)} {name}")
        faults = len(self.fault_index)
        if not (len(self.fault_blocks) == len(self.fault_modes)
                == len(self.fault_severities) == faults):
            raise ATEError("store fault arrays must have equal length")
        if faults and devices >= 0:
            if self.fault_index.min() < 0 or self.fault_index.max() >= devices:
                raise ATEError("store fault_index out of device range")

    # ------------------------------------------------------------------ shape
    @property
    def test_count(self) -> int:
        """Number of specification tests (plane rows)."""
        return self.values.shape[0]

    @property
    def device_count(self) -> int:
        """Number of devices (plane columns)."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.device_count

    # ---------------------------------------------------------------- queries
    def failed_mask(self) -> np.ndarray:
        """Boolean ``(devices,)`` mask of devices failing at least one test."""
        return ~self.passed.all(axis=0)

    def faults_for(self, device: int) -> dict[str, BlockFault]:
        """Return the injected fault map of device column ``device``."""
        faults: dict[str, BlockFault] = {}
        for k in np.flatnonzero(self.fault_index == device):
            block = str(self.fault_blocks[k])
            faults[block] = BlockFault(block, FaultMode(str(self.fault_modes[k])),
                                       float(self.fault_severities[k]))
        return faults

    def select(self, devices: np.ndarray | Sequence[int]) -> "DeviceResultStore":
        """Return a new store holding only the selected device columns.

        ``devices`` is a boolean mask or an integer index array over the
        device columns.
        """
        devices = np.asarray(devices)
        if devices.dtype == bool:
            devices = np.flatnonzero(devices)
        remap = np.full(self.device_count, -1, dtype=np.int64)
        remap[devices] = np.arange(len(devices))
        keep = np.flatnonzero(remap[self.fault_index] >= 0) \
            if len(self.fault_index) else np.empty(0, dtype=np.int64)
        return DeviceResultStore(
            self.device_ids[devices], self.values[:, devices],
            self.passed[:, devices], self.test_numbers, self.test_names,
            self.blocks, self.lowers, self.uppers, self.conditions,
            remap[self.fault_index[keep]], self.fault_blocks[keep],
            self.fault_modes[keep], self.fault_severities[keep])

    # ------------------------------------------------------------ row objects
    @classmethod
    def from_results(cls, results: Sequence[DeviceResult]) -> "DeviceResultStore":
        """Build a store from per-device row objects.

        Every device must have executed the same program (same test
        identity, limits and conditions in the same order) — the invariant
        the batched tester guarantees and the case generator's program
        signature grouping checks per group.
        """
        results = list(results)
        if not results:
            raise ATEError("cannot build a store from an empty result list")
        first = results[0].measurements
        signature = [(m.test_number, m.test_name, m.block, m.lower, m.upper,
                      tuple(sorted(m.conditions.items()))) for m in first]
        tests, devices = len(first), len(results)
        values = np.empty((tests, devices), dtype=float)
        passed = np.empty((tests, devices), dtype=bool)
        fault_index: list[int] = []
        fault_blocks: list[str] = []
        fault_modes: list[str] = []
        fault_severities: list[float] = []
        for column, result in enumerate(results):
            rows = result.measurements
            if [(m.test_number, m.test_name, m.block, m.lower, m.upper,
                 tuple(sorted(m.conditions.items()))) for m in rows] != signature:
                raise ATEError(
                    f"device {result.device_id!r} ran a different test program "
                    f"than device {results[0].device_id!r}; a columnar store "
                    "requires a homogeneous population")
            values[:, column] = [m.value for m in rows]
            passed[:, column] = [m.passed for m in rows]
            for fault in result.faults.values():
                fault_index.append(column)
                fault_blocks.append(fault.block)
                fault_modes.append(fault.mode.value)
                fault_severities.append(fault.severity)
        return cls([result.device_id for result in results], values, passed,
                   [m.test_number for m in first], [m.test_name for m in first],
                   [m.block for m in first], [m.lower for m in first],
                   [m.upper for m in first],
                   [dict(m.conditions) for m in first],
                   fault_index, fault_blocks, fault_modes, fault_severities)

    def to_results(self) -> list[DeviceResult]:
        """Materialise per-device row objects from the planes.

        One shared (read-only) conditions dict per test keeps row
        materialisation cheap and preserves the identity-keyed condition
        label cache in the case generator.
        """
        tests, devices = self.values.shape
        numbers = [int(n) for n in self.test_numbers]
        lowers = [float(v) for v in self.lowers]
        uppers = [float(v) for v in self.uppers]
        conditions = [dict(mapping) for mapping in self.conditions]
        value_rows = self.values.tolist()
        passed_rows = self.passed.tolist()
        fault_dicts: list[dict[str, BlockFault]] = [{} for _ in range(devices)]
        for k in range(len(self.fault_index)):
            block = str(self.fault_blocks[k])
            fault_dicts[int(self.fault_index[k])][block] = BlockFault(
                block, FaultMode(str(self.fault_modes[k])),
                float(self.fault_severities[k]))
        results = [DeviceResult(device_id=str(device_id), measurements=[],
                                faults=fault_dicts[column])
                   for column, device_id in enumerate(self.device_ids)]
        for row in range(tests):
            number, name = numbers[row], self.test_names[row]
            block, shared = self.blocks[row], conditions[row]
            lower, upper = lowers[row], uppers[row]
            row_values, row_passed = value_rows[row], passed_rows[row]
            for column in range(devices):
                results[column].measurements.append(Measurement(
                    test_number=number, test_name=name, block=block,
                    value=row_values[column], lower=lower, upper=upper,
                    passed=row_passed[column], conditions=shared))
        return results

    def to_datalogs(self) -> list[DeviceDatalog]:
        """Convert the store into ASCII-serialisable device datalogs."""
        datalogs = []
        for column, result in enumerate(self.to_results()):
            datalogs.append(result.to_datalog())
        return datalogs

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> Path:
        """Save the store as a directory of ``.npy`` planes plus metadata.

        The value/verdict planes (the only arrays that grow with the
        population) are stored as plain ``.npy`` files so :meth:`load` can
        memory-map them.  Every plane is written to a tmp file and
        ``os.rename``d, its byte length and CRC32 are recorded in the
        metadata (format 2, carrying header magic), and the metadata file
        itself is committed last, also atomically — so a crash mid-save
        leaves either the previous consistent store or a detectable
        mismatch, never silently truncated arrays.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        arrays = {"values": self.values, "passed": self.passed,
                  "device_ids": self.device_ids,
                  "fault_index": self.fault_index,
                  "fault_blocks": self.fault_blocks,
                  "fault_modes": self.fault_modes,
                  "fault_severities": self.fault_severities}
        planes = {}
        for name, array in arrays.items():
            target = path / f"{name}.npy"
            tmp = path / f"{name}.npy.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                # Through a handle: np.save would append ".npy" to a bare
                # tmp path, breaking the rename.
                np.save(handle, array, allow_pickle=False)
            blob = tmp.read_bytes()
            planes[name] = {"bytes": len(blob),
                            "crc32": zlib.crc32(blob)}
            os.replace(tmp, target)
        meta = {"format": 2,
                "magic": STORE_MAGIC,
                "planes": planes,
                "test_numbers": [int(n) for n in self.test_numbers],
                "test_names": self.test_names,
                "blocks": self.blocks,
                "lowers": [float(v) for v in self.lowers],
                "uppers": [float(v) for v in self.uppers],
                "conditions": [{block: float(value)
                                for block, value in mapping.items()}
                               for mapping in self.conditions]}
        meta_tmp = path / f"{_META_FILE}.tmp.{os.getpid()}"
        meta_tmp.write_text(json.dumps(meta), encoding="ascii")
        os.replace(meta_tmp, path / _META_FILE)
        return path

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = True,
             verify: bool = True) -> "DeviceResultStore":
        """Load a store saved by :meth:`save`.

        With ``mmap=True`` (default) the planes are memory-mapped read-only,
        so opening an ATE-scale population costs O(metadata) — pages stream
        in as the estimators touch them.

        Format-2 stores carry header magic plus per-plane byte lengths and
        CRC32 checksums; a truncated or bit-flipped plane raises a
        structured :class:`~repro.exceptions.StoreCorruptionError` naming
        the defect instead of silently yielding garbage arrays.  Length
        checks are one ``stat`` per plane and always run; the CRC pass
        reads each plane once (the pages stay hot for the mmap) and can be
        skipped with ``verify=False`` when open cost must stay
        O(metadata).  Legacy format-1 stores (no checksums recorded) still
        load unverified.
        """
        path = Path(path)
        meta_path = path / _META_FILE
        if not meta_path.exists():
            raise ATEError(f"no columnar store at {path} (missing {_META_FILE})")
        meta = json.loads(meta_path.read_text(encoding="ascii"))
        version = meta.get("format")
        if version not in (1, 2):
            raise ATEError(
                f"unsupported columnar store format {version!r}")
        planes = {}
        if version == 2:
            if meta.get("magic") != STORE_MAGIC:
                raise StoreCorruptionError(
                    f"columnar store at {path} does not carry the store "
                    f"magic {STORE_MAGIC!r} (found {meta.get('magic')!r})",
                    kind="bad-magic", path=str(meta_path))
            planes = meta.get("planes", {})
        mode = "r" if mmap else None
        arrays = {}
        for name in _ARRAY_FILES:
            file = path / f"{name}.npy"
            if not file.exists():
                error_cls = StoreCorruptionError if version == 2 else ATEError
                raise error_cls(
                    f"columnar store at {path} is missing {name}.npy",
                    **({"kind": "missing-plane", "path": str(file)}
                       if version == 2 else {}))
            expected = planes.get(name)
            if expected is not None:
                size = file.stat().st_size
                if size != int(expected["bytes"]):
                    raise StoreCorruptionError(
                        f"plane {name}.npy of the store at {path} is "
                        f"{size} byte(s), expected {expected['bytes']} — "
                        f"truncated or torn write", kind="truncated",
                        path=str(file))
                if verify and zlib.crc32(file.read_bytes()) \
                        != int(expected["crc32"]):
                    raise StoreCorruptionError(
                        f"plane {name}.npy of the store at {path} failed "
                        f"its CRC32 check — refusing to serve corrupted "
                        f"measurements", kind="bad-crc", path=str(file))
            arrays[name] = np.load(file, mmap_mode=mode, allow_pickle=False)
        return cls(arrays["device_ids"], arrays["values"], arrays["passed"],
                   meta["test_numbers"], meta["test_names"], meta["blocks"],
                   meta["lowers"], meta["uppers"], meta["conditions"],
                   arrays["fault_index"], arrays["fault_blocks"],
                   arrays["fault_modes"], arrays["fault_severities"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeviceResultStore(tests={self.test_count}, "
                f"devices={self.device_count}, faults={len(self.fault_index)})")


def store_from_datalogs(datalogs: Sequence[DeviceDatalog]) -> DeviceResultStore:
    """Build a columnar store from parsed per-device datalogs.

    The ground-truth ``injected_faults`` metadata written by
    :meth:`DeviceResult.to_datalog` is decoded back into fault entries
    (severity is not serialised by the label format and defaults to 1.0).
    """
    if not datalogs:
        raise ATEError("cannot build a store from an empty datalog list")
    results = []
    for datalog in datalogs:
        faults: dict[str, BlockFault] = {}
        labels = datalog.metadata.get("injected_faults", "")
        if labels:
            for label in labels.split(","):
                block, _, mode = label.partition(":")
                if not block or not mode:
                    raise ATEError(
                        f"malformed injected_faults label {label!r} for "
                        f"device {datalog.device_id!r}")
                faults[block] = BlockFault(block, FaultMode(mode))
        measurements = [Measurement(
            test_number=record.test_number, test_name=record.test_name,
            block=record.block, value=record.value, lower=record.lower,
            upper=record.upper, passed=record.passed,
            conditions=dict(record.conditions)) for record in datalog.records]
        results.append(DeviceResult(device_id=datalog.device_id,
                                    measurements=measurements, faults=faults))
    return DeviceResultStore.from_results(results)
