"""Failed/passing device population generation.

The paper fine-tuned the regulator's CPTs with cases generated from 70 failed
products returned from the field.  Customer returns and their proprietary ATE
logs are not available, so :class:`PopulationGenerator` produces the closest
synthetic equivalent: a population of simulated devices, each with a randomly
sampled block-level fault (the failed devices) or no fault (the passing
devices), tested with the no-stop-on-fail functional program.  The injected
fault of every device is kept as ground truth for scoring diagnoses, but it
never enters the learning path.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.ate.datalog import DeviceDatalog
from repro.ate.test_program import TestProgram
from repro.ate.tester import ATETester, DeviceResult
from repro.circuits.behavioral import BehavioralSimulator
from repro.circuits.faults import BlockFault, FaultUniverse
from repro.exceptions import ATEError
from repro.utils.rng import ensure_rng


class DevicePopulation:
    """A generated device population.

    Backed either by per-device :class:`DeviceResult` rows or by a columnar
    :class:`DeviceResultStore` (the batched generator produces the latter and
    materialises rows lazily on first access to :attr:`results`, so
    store-only consumers — case generation, batched CPT learning — never pay
    for row objects).

    Attributes
    ----------
    results:
        Per-device ATE results, in generation order.
    ground_truth:
        Injected fault per device id (absent for defect-free devices).
    """

    def __init__(self, results: list[DeviceResult] | None = None,
                 ground_truth: Mapping[str, BlockFault] | None = None,
                 store=None) -> None:
        if results is None and store is None:
            raise ATEError(
                "a population needs result rows or a columnar store")
        self._results = list(results) if results is not None else None
        self._store = store
        self.ground_truth = dict(ground_truth or {})

    @property
    def results(self) -> list[DeviceResult]:
        """Per-device ATE results (materialised from the store on demand)."""
        if self._results is None:
            self._results = self._store.to_results()
        return self._results

    @property
    def device_ids(self) -> list[str]:
        """All device identifiers."""
        if self._results is None:
            return [str(device_id) for device_id in self._store.device_ids]
        return [result.device_id for result in self.results]

    @property
    def failing_results(self) -> list[DeviceResult]:
        """Results of devices that failed at least one specification test."""
        return [result for result in self.results if result.failed]

    @property
    def passing_results(self) -> list[DeviceResult]:
        """Results of devices that passed every specification test."""
        return [result for result in self.results if not result.failed]

    def to_datalogs(self) -> list[DeviceDatalog]:
        """Convert every device result into an ASCII-serialisable datalog."""
        return [result.to_datalog() for result in self.results]

    def to_store(self):
        """Return the population as a columnar :class:`DeviceResultStore`.

        The array-native entry point into case generation and batched CPT
        learning (see :meth:`CaseGenerator.case_matrix`).  Cached like
        :meth:`result_for`: the only mutation the generators perform is
        appending, so the store is rebuilt only when ``results`` grew.
        """
        from repro.ate.store import DeviceResultStore

        if self._results is None:
            return self._store
        cached = self.__dict__.get("_store_cache")
        if cached is None or cached[1] != len(self._results):
            if (self._store is not None
                    and self._store.device_count == len(self._results)):
                store = self._store
            else:
                store = DeviceResultStore.from_results(self._results)
            cached = (store, len(self._results))
            self.__dict__["_store_cache"] = cached
        return cached[0]

    def result_for(self, device_id: str) -> DeviceResult:
        """Return the result of one device (O(1) dict-backed lookup).

        The index is rebuilt whenever ``results`` changes length (the only
        mutation the generators perform is appending); first occurrence wins
        for duplicate device ids, matching the previous linear scan.
        """
        cached = self.__dict__.get("_result_index")
        if cached is None or cached[1] != len(self.results):
            index: dict[str, DeviceResult] = {}
            for result in self.results:
                index.setdefault(result.device_id, result)
            cached = (index, len(self.results))
            self.__dict__["_result_index"] = cached
        try:
            return cached[0][device_id]
        except KeyError:
            raise ATEError(f"no device {device_id!r} in the population") from None

    def __len__(self) -> int:
        if self._results is None:
            return self._store.device_count
        return len(self._results)


class PopulationGenerator:
    """Generates fault-injected device populations.

    Parameters
    ----------
    simulator:
        Behavioural simulator of the circuit (with process variation).
    program:
        The no-stop-on-fail functional test program.
    fault_universe:
        The faults that may be injected into failed devices.
    block_weights:
        Optional relative defect likelihood per block.
    device_prefix:
        Prefix of generated device identifiers.
    seed:
        Seed or generator for reproducible populations.
    """

    def __init__(self, simulator: BehavioralSimulator, program: TestProgram,
                 fault_universe: FaultUniverse,
                 block_weights: Mapping[str, float] | None = None,
                 device_prefix: str = "DEV",
                 seed: int | np.random.Generator | None = None) -> None:
        self.simulator = simulator
        self.program = program
        self.fault_universe = fault_universe
        self.block_weights = dict(block_weights or {})
        self.device_prefix = device_prefix
        self._rng = ensure_rng(seed)
        self._tester = ATETester(simulator, program, stop_on_fail=False)
        self._counter = 0

    def _next_device_id(self) -> str:
        self._counter += 1
        return f"{self.device_prefix}-{self._counter:05d}"

    # ------------------------------------------------------------- generation
    def generate_failed_device(self, fault: BlockFault | None = None) -> DeviceResult:
        """Test one device with an injected fault (sampled when not given)."""
        if fault is None:
            fault = self.fault_universe.sample(self._rng, self.block_weights)
        device_id = self._next_device_id()
        return self._tester.test_device(device_id, faults={fault.block: fault})

    def generate_passing_device(self) -> DeviceResult:
        """Test one defect-free device (process variation and noise only)."""
        device_id = self._next_device_id()
        return self._tester.test_device(device_id, faults={})

    def _generate_failed_batch(self, count: int) -> list[DeviceResult]:
        """Sample ``count`` faults up-front and test the devices in one batch."""
        faults = self.fault_universe.sample_batch(count, self._rng,
                                                  self.block_weights)
        device_ids = [self._next_device_id() for _ in range(count)]
        return self._tester.test_devices(
            device_ids, [{fault.block: fault} for fault in faults])

    def _generate_failed_store(self, count: int):
        """Columnar :meth:`_generate_failed_batch`: same RNG stream, no rows."""
        faults = self.fault_universe.sample_batch(count, self._rng,
                                                  self.block_weights)
        device_ids = [self._next_device_id() for _ in range(count)]
        store = self._tester.test_devices_store(
            device_ids, [{fault.block: fault} for fault in faults])
        return store, list(faults)

    def generate(self, failed_count: int, passing_count: int = 0,
                 require_observable_failure: bool = True,
                 max_attempts_per_device: int = 20) -> DevicePopulation:
        """Generate a population of ``failed_count`` + ``passing_count`` devices.

        All faults of a round are sampled up-front and the whole round is
        simulated through the batched tester; only the devices whose fault
        was masked by the test conditions are re-drawn (again as one batch)
        in the next round.  Per device the semantics match the scalar retry
        loop: up to ``max_attempts_per_device`` fault draws, a fresh device
        id per draw, and the masked fault is accepted once the attempts are
        exhausted.

        Parameters
        ----------
        failed_count / passing_count:
            Number of fault-injected and defect-free devices.
        require_observable_failure:
            When ``True`` (default), fault-injected devices that happen to
            pass every specification test (fault masked by the test
            conditions) are re-drawn, mirroring the paper's setting in which
            every customer return is an observably failing product.
        max_attempts_per_device:
            Upper bound on re-draws before accepting a masked fault.
        """
        from repro.ate.store import DeviceResultStore

        if failed_count < 0 or passing_count < 0:
            raise ATEError("device counts must be non-negative")
        if not failed_count and not passing_count:
            return DevicePopulation(results=[], ground_truth={})
        values = passed = None
        device_ids: list[str] = []
        faults_by_slot: list[BlockFault] = []
        metadata = None
        if failed_count:
            store, faults_by_slot = self._generate_failed_store(failed_count)
            metadata = store
            values, passed = store.values, store.passed
            device_ids = [str(device_id) for device_id in store.device_ids]
            if require_observable_failure:
                masked = np.flatnonzero(passed.all(axis=0))
                attempts = 1
                while len(masked) and attempts < max_attempts_per_device:
                    redrawn, redrawn_faults = self._generate_failed_store(
                        len(masked))
                    values[:, masked] = redrawn.values
                    passed[:, masked] = redrawn.passed
                    for slot, device_id, fault in zip(
                            masked, redrawn.device_ids, redrawn_faults):
                        device_ids[slot] = str(device_id)
                        faults_by_slot[slot] = fault
                    masked = masked[passed[:, masked].all(axis=0)]
                    attempts += 1
        ground_truth = {device_ids[slot]: fault
                        for slot, fault in enumerate(faults_by_slot)}
        if passing_count:
            passing_ids = [self._next_device_id()
                           for _ in range(passing_count)]
            passing_store = self._tester.test_devices_store(passing_ids)
            if metadata is None:
                metadata = passing_store
                values, passed = passing_store.values, passing_store.passed
                device_ids = [str(device_id)
                              for device_id in passing_store.device_ids]
            else:
                values = np.hstack([values, passing_store.values])
                passed = np.hstack([passed, passing_store.passed])
                device_ids.extend(str(device_id)
                                  for device_id in passing_store.device_ids)
        combined = DeviceResultStore(
            device_ids, values, passed, metadata.test_numbers,
            metadata.test_names, metadata.blocks, metadata.lowers,
            metadata.uppers, metadata.conditions,
            np.arange(len(faults_by_slot), dtype=np.int64),
            [fault.block for fault in faults_by_slot],
            [fault.mode.value for fault in faults_by_slot],
            [fault.severity for fault in faults_by_slot])
        return DevicePopulation(store=combined, ground_truth=ground_truth)

    def generate_for_fault(self, fault: BlockFault, count: int) -> DevicePopulation:
        """Generate ``count`` devices that all carry the same fault.

        Used by the fault-dictionary baseline, whose signatures are built per
        fault rather than per random population.
        """
        device_ids = [self._next_device_id() for _ in range(count)]
        results = self._tester.test_devices(
            device_ids, [{fault.block: fault} for _ in range(count)])
        ground_truth = {result.device_id: fault for result in results}
        return DevicePopulation(results=results, ground_truth=ground_truth)
