"""The ordered, no-stop-on-fail functional test program.

The paper stresses that the learning cases come from *no-stop-on-fail* test
data: every specification test is executed on every device even after the
first failure, so every datalog contains the complete measurement vector.
:class:`TestProgram` models that list and knows which model variables it
controls and observes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.ate.test_spec import SpecificationTest
from repro.exceptions import ATEError


class TestProgram:
    """An ordered collection of specification tests.

    Parameters
    ----------
    name:
        Program name (recorded in datalogs).
    tests:
        The specification tests, in execution order.
    """

    def __init__(self, name: str, tests: Sequence[SpecificationTest] = ()) -> None:
        if not name:
            raise ATEError("test program name must be non-empty")
        self.name = name
        self._tests: list[SpecificationTest] = []
        self._numbers: set[int] = set()
        for test in tests:
            self.add_test(test)

    # ------------------------------------------------------------------ tests
    def add_test(self, test: SpecificationTest) -> None:
        """Append ``test`` to the program, enforcing unique test numbers."""
        if test.number in self._numbers:
            raise ATEError(f"duplicate test number {test.number} in program {self.name!r}")
        self._numbers.add(test.number)
        self._tests.append(test)

    def add_tests(self, tests: Iterable[SpecificationTest]) -> None:
        """Append several tests in order."""
        for test in tests:
            self.add_test(test)

    @property
    def tests(self) -> list[SpecificationTest]:
        """All tests in execution order."""
        return list(self._tests)

    def __len__(self) -> int:
        return len(self._tests)

    def __iter__(self):
        return iter(self._tests)

    def test_by_number(self, number: int) -> SpecificationTest:
        """Return the test with the given ATE test number."""
        for test in self._tests:
            if test.number == number:
                return test
        raise ATEError(f"no test numbered {number} in program {self.name!r}")

    def test_by_name(self, name: str) -> SpecificationTest:
        """Return the test with the given name."""
        for test in self._tests:
            if test.name == name:
                return test
        raise ATEError(f"no test named {name!r} in program {self.name!r}")

    # ------------------------------------------------------------ block views
    def measured_blocks(self) -> list[str]:
        """Return the observable blocks the program measures (unique, ordered)."""
        return list(dict.fromkeys(test.measured_block for test in self._tests))

    def controlled_blocks(self) -> list[str]:
        """Return the controllable blocks the program forces (unique, ordered)."""
        blocks: dict[str, None] = {}
        for test in self._tests:
            for block in test.conditions:
                blocks.setdefault(block, None)
        return list(blocks)

    def tests_measuring(self, block: str) -> list[SpecificationTest]:
        """Return every test that measures ``block``."""
        return [test for test in self._tests if test.measured_block == block]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TestProgram(name={self.name!r}, tests={len(self._tests)})"
