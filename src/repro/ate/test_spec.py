"""Specification tests and their limits.

A specification test forces the circuit's controllable blocks to defined
levels, measures the output of one observable block and compares the measured
value against a lower/upper limit pair.  The full-circuit production test is
an ordered list of such tests (see :mod:`repro.ate.test_program`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.exceptions import ATEError


@dataclasses.dataclass(frozen=True)
class TestLimit:
    """A lower/upper specification limit pair for a measurement.

    Attributes
    ----------
    lower:
        Lower specification limit (inclusive).
    upper:
        Upper specification limit (inclusive).
    units:
        Unit string recorded in datalogs (volts throughout this library).
    """

    lower: float
    upper: float
    units: str = "V"

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ATEError(
                f"test limit lower bound {self.lower} exceeds upper bound {self.upper}")

    def passes(self, value: float) -> bool:
        """Return ``True`` when ``value`` is within the limits."""
        return self.lower <= value <= self.upper

    def margin(self, value: float) -> float:
        """Return the distance of ``value`` to the nearest limit (negative when failing)."""
        if value < self.lower:
            return value - self.lower
        if value > self.upper:
            return self.upper - value
        return min(value - self.lower, self.upper - value)


@dataclasses.dataclass(frozen=True)
class SpecificationTest:
    """One functional specification test.

    Attributes
    ----------
    number:
        Test number in the program (ATE test numbers are stable identifiers
        that Dlog2BBN uses to map measurements onto model variables).
    name:
        Human-readable test name (e.g. ``"reg1_nominal"``).
    measured_block:
        The observable model variable this test measures.
    conditions:
        The forced values of the controllable blocks during the test.
    limit:
        The pass/fail specification limits.
    description:
        Free-text intent of the test.
    """

    number: int
    name: str
    measured_block: str
    conditions: Mapping[str, float]
    limit: TestLimit
    description: str = ""

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ATEError(f"test number must be non-negative, got {self.number}")
        if not self.name:
            raise ATEError("test name must be non-empty")
        if not self.measured_block:
            raise ATEError(f"test {self.name!r} must name a measured block")
        object.__setattr__(self, "conditions", dict(self.conditions))

    def evaluate(self, value: float) -> bool:
        """Return the pass/fail verdict for a measured value."""
        return self.limit.passes(value)
