"""The hypothetical four-block analogue circuit of Fig. 1.

Section III of the paper introduces BBN circuit modelling on a small
hypothetical circuit: four functional blocks, two circuit inputs (into
Block-1 and Block-2), Block-1 driving Block-2 and Block-3, Block-3 driving
Block-4, and the circuit output taken from Block-4.  Table I gives the
functional types, Table II the usable states.

This module builds both representations of that circuit:

* a behavioural :class:`~repro.circuits.netlist.BlockNetlist` that can be
  simulated and fault-injected, and
* the :class:`~repro.core.circuit_model.CircuitModelDescription` the model
  builder consumes (Tables I, II and the Fig. 1b dependency graph).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.circuits.components import BehaviouralBlock, SupplyInput
from repro.circuits.faults import FaultMode, FaultUniverse
from repro.circuits.netlist import BlockNetlist
from repro.core.blocks import BlockType, ModelVariable
from repro.core.circuit_model import CircuitModelDescription
from repro.core.states import StateDefinition, StateTable


class _GainStage(BehaviouralBlock):
    """A simple saturating gain stage used for Block-2 and Block-3."""

    def __init__(self, name: str, driver: str, gain: float = 2.0,
                 saturation: float = 5.0, threshold: float = 0.5,
                 vmax: float = 20.0) -> None:
        super().__init__(name, inputs=[driver], vmax=vmax)
        self.driver = driver
        self.gain = float(gain)
        self.saturation = float(saturation)
        self.threshold = float(threshold)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        drive = inputs[self.driver]
        if drive < self.threshold:
            return 0.05
        return min(self.gain * drive, self.saturation)

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        drive = np.asarray(inputs[self.driver], dtype=float)
        return np.where(drive < self.threshold, 0.05,
                        np.minimum(self.gain * drive, self.saturation))


@dataclasses.dataclass
class HypotheticalCircuit:
    """Bundle of the hypothetical circuit's representations.

    Attributes
    ----------
    netlist:
        Behavioural netlist for simulation.
    model:
        The circuit-model description (Tables I/II, Fig. 1b).
    fault_universe:
        Faults that can be injected (Block-2, Block-3, Block-4; Block-1 is a
        controllable input in the BBN sense, but the physical block can still
        fail so it is included).
    nominal_conditions:
        The forced input levels of a nominal full-circuit test.
    healthy_states:
        The state label that corresponds to defect-free operation of each
        model variable (designer knowledge consumed by the prior builder and
        by candidate deduction).
    """

    netlist: BlockNetlist
    model: CircuitModelDescription
    fault_universe: FaultUniverse
    nominal_conditions: dict[str, float]
    healthy_states: dict[str, str]


def build_hypothetical_circuit() -> HypotheticalCircuit:
    """Construct the Fig. 1 hypothetical circuit.

    Block-1 is modelled as a controllable driver stage (three usable states:
    non-operational plus two operational drive levels, as in Table II),
    Block-2 and Block-3 as gain stages and Block-4 as an output stage.
    """
    netlist = BlockNetlist("hypothetical")
    netlist.add_blocks([
        SupplyInput("block1", default=0.0, vmax=20.0),
        _GainStage("block2", driver="block1", gain=1.5, saturation=5.0),
        _GainStage("block3", driver="block1", gain=1.2, saturation=4.0),
        _GainStage("block4", driver="block3", gain=2.0, saturation=5.0),
    ])
    netlist.validate()

    variables = [
        ModelVariable("block1", BlockType.CONTROL, "Block-1",
                      "Controllable input/driver block"),
        ModelVariable("block2", BlockType.CONTROL_OBSERVE, "Block-2",
                      "Controllable and observable block"),
        ModelVariable("block3", BlockType.INTERNAL, "Block-3",
                      "Internal non-observable block"),
        ModelVariable("block4", BlockType.OBSERVE, "Block-4",
                      "Observable output block"),
    ]
    state_tables = [
        StateTable("block1", [
            StateDefinition("0", 0.0, 0.8, "Non-Operational"),
            StateDefinition("1", 0.8, 2.5, "Operational-I"),
            StateDefinition("2", 2.5, 20.0, "Operational-II"),
        ]),
        StateTable("block2", [
            StateDefinition("0", 0.0, 1.0, "Non-Operational"),
            StateDefinition("1", 1.0, 20.0, "Operational"),
        ]),
        StateTable("block3", [
            StateDefinition("0", 0.0, 1.0, "Non-Operational"),
            StateDefinition("1", 1.0, 20.0, "Operational"),
        ]),
        StateTable("block4", [
            StateDefinition("0", 0.0, 1.5, "Non-Operational"),
            StateDefinition("1", 1.5, 20.0, "Operational"),
        ]),
    ]
    dependencies = [
        ("block1", "block2"),
        ("block1", "block3"),
        ("block3", "block4"),
    ]
    model = CircuitModelDescription("hypothetical", variables, state_tables,
                                    dependencies)
    fault_universe = FaultUniverse(
        ["block2", "block3", "block4"],
        modes=(FaultMode.DEAD, FaultMode.STUCK_HIGH, FaultMode.DEGRADED),
        severities=(1.0, 0.6),
    )
    nominal_conditions = {"block1": 3.0}
    healthy_states = {"block1": "2", "block2": "1", "block3": "1", "block4": "1"}
    return HypotheticalCircuit(netlist=netlist, model=model,
                               fault_universe=fault_universe,
                               nominal_conditions=nominal_conditions,
                               healthy_states=healthy_states)
