"""Block-level fault models and fault universes.

The paper diagnoses *which functional block failed*, not which transistor, so
the fault model lives at the block level too: a fault turns one block's
behaviour into a degraded version of itself.  Five behavioural fault modes
cover the classical analogue defect classes (opens, shorts, parametric
drift):

``dead``
    the block output collapses to 0 V (open output, dead bias chain).
``stuck_high``
    the block output sticks at its maximum (output short to supply).
``degraded``
    the block output is attenuated (parametric degradation, weak drive).
``short_to_supply``
    the output follows the highest input rail.
``drift``
    the output drifts above nominal (reference drift, offset).
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import FaultError
from repro.utils.rng import ensure_rng


class FaultMode(str, enum.Enum):
    """Behavioural fault modes that can be injected into a block."""

    DEAD = "dead"
    STUCK_HIGH = "stuck_high"
    DEGRADED = "degraded"
    SHORT_TO_SUPPLY = "short_to_supply"
    DRIFT = "drift"


@dataclasses.dataclass(frozen=True)
class BlockFault:
    """One injected fault: a block, a mode and a severity.

    Attributes
    ----------
    block:
        Name of the faulted functional block.
    mode:
        The behavioural fault mode.
    severity:
        Scale factor in ``(0, 1]`` for the parametric modes (``degraded`` and
        ``drift``); ignored by the hard modes.
    """

    block: str
    mode: FaultMode
    severity: float = 1.0

    def __post_init__(self) -> None:
        if not self.block:
            raise FaultError("fault block name must be non-empty")
        if not 0.0 < self.severity <= 1.0:
            raise FaultError(
                f"fault severity must be in (0, 1], got {self.severity}")

    @property
    def label(self) -> str:
        """A compact human-readable identifier (used in datalogs and reports)."""
        return f"{self.block}:{self.mode.value}"


class FaultUniverse:
    """The set of faults considered for a circuit.

    Parameters
    ----------
    faultable_blocks:
        Blocks into which faults may be injected.  Controllable blocks
        (supply/pin inputs forced by the tester) are excluded by the circuit
        builders because a forced net cannot "fail" during the test.
    modes:
        Fault modes to enumerate per block.
    severities:
        Severities enumerated for the parametric modes.
    """

    def __init__(self, faultable_blocks: Sequence[str],
                 modes: Iterable[FaultMode] = (FaultMode.DEAD,
                                               FaultMode.STUCK_HIGH,
                                               FaultMode.DEGRADED),
                 severities: Sequence[float] = (1.0,)) -> None:
        if not faultable_blocks:
            raise FaultError("fault universe requires at least one faultable block")
        self.faultable_blocks = list(dict.fromkeys(faultable_blocks))
        self.modes = list(modes)
        self.severities = [float(s) for s in severities]
        if not self.modes:
            raise FaultError("fault universe requires at least one fault mode")

    # ------------------------------------------------------------------- faults
    def enumerate(self) -> list[BlockFault]:
        """Return every fault in the universe (the full fault list)."""
        faults = []
        for block in self.faultable_blocks:
            for mode in self.modes:
                if mode in (FaultMode.DEGRADED, FaultMode.DRIFT):
                    for severity in self.severities:
                        faults.append(BlockFault(block, mode, severity))
                else:
                    faults.append(BlockFault(block, mode))
        return faults

    def faults_of(self, block: str) -> list[BlockFault]:
        """Return every fault of one block."""
        if block not in self.faultable_blocks:
            raise FaultError(f"block {block!r} is not in the fault universe")
        return [fault for fault in self.enumerate() if fault.block == block]

    def sample(self, rng: int | np.random.Generator | None = None,
               block_weights: dict[str, float] | None = None) -> BlockFault:
        """Draw one fault at random.

        Parameters
        ----------
        rng:
            Seed or generator.
        block_weights:
            Optional relative likelihood of each block failing (defects are
            rarely uniform across blocks — large power devices fail more
            often than small logic).  Missing blocks default to weight 1.
        """
        generator = ensure_rng(rng)
        weights = np.array([
            (block_weights or {}).get(block, 1.0) for block in self.faultable_blocks
        ], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise FaultError("block weights must be non-negative and not all zero")
        block = self.faultable_blocks[
            int(generator.choice(len(self.faultable_blocks), p=weights / weights.sum()))]
        mode = self.modes[int(generator.integers(len(self.modes)))]
        if mode in (FaultMode.DEGRADED, FaultMode.DRIFT):
            severity = self.severities[int(generator.integers(len(self.severities)))]
        else:
            severity = 1.0
        return BlockFault(block, mode, severity)

    def sample_many(self, count: int,
                    rng: int | np.random.Generator | None = None,
                    block_weights: dict[str, float] | None = None
                    ) -> list[BlockFault]:
        """Draw ``count`` independent faults (scalar reference path)."""
        generator = ensure_rng(rng)
        return [self.sample(generator, block_weights) for _ in range(count)]

    def sample_batch(self, count: int,
                     rng: int | np.random.Generator | None = None,
                     block_weights: dict[str, float] | None = None
                     ) -> list[BlockFault]:
        """Draw ``count`` independent faults with vectorised random draws.

        Same distribution as :meth:`sample_many`, but blocks, modes and
        severities are drawn as whole arrays (three generator calls total
        instead of two-to-three per device), which is what the population
        generator uses.  The random stream differs from the scalar path, so
        the two are interchangeable per-population, not per-draw.
        """
        if count <= 0:
            return []
        generator = ensure_rng(rng)
        weights = np.array([
            (block_weights or {}).get(block, 1.0) for block in self.faultable_blocks
        ], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise FaultError("block weights must be non-negative and not all zero")
        block_indices = generator.choice(len(self.faultable_blocks), size=count,
                                         p=weights / weights.sum())
        mode_indices = generator.integers(len(self.modes), size=count)
        parametric = np.array([self.modes[index] in (FaultMode.DEGRADED,
                                                     FaultMode.DRIFT)
                               for index in mode_indices])
        severities = np.ones(count)
        parametric_count = int(parametric.sum())
        if parametric_count:
            drawn = generator.integers(len(self.severities), size=parametric_count)
            severities[parametric] = np.array(self.severities)[drawn]
        return [BlockFault(self.faultable_blocks[int(block)],
                           self.modes[int(mode)], float(severity))
                for block, mode, severity in zip(block_indices, mode_indices,
                                                 severities)]

    def __len__(self) -> int:
        return len(self.enumerate())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultUniverse(blocks={len(self.faultable_blocks)}, "
                f"modes={[m.value for m in self.modes]})")
