"""Monte-Carlo process variation.

Real devices never sit exactly at the behavioural nominal: references drift a
few percent, regulator outputs spread with resistor mismatch.  Process
variation gives every simulated device a per-block multiplicative deviation,
which makes the synthetic ATE data realistically noisy and exercises the
state-binning logic of the model builder near the specification limits.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.utils.rng import ensure_rng


class ProcessVariation:
    """Per-block multiplicative Gaussian process variation.

    Parameters
    ----------
    default_sigma:
        Relative standard deviation applied to blocks without an explicit
        entry (e.g. ``0.01`` for 1 % spread).
    per_block_sigma:
        Optional overrides per block name.
    clip:
        Multipliers are clipped to ``[1 - clip, 1 + clip]`` to keep hard
        outliers from masquerading as catastrophic faults.
    """

    def __init__(self, default_sigma: float = 0.01,
                 per_block_sigma: Mapping[str, float] | None = None,
                 clip: float = 0.2) -> None:
        if default_sigma < 0:
            raise CircuitError("default_sigma must be non-negative")
        if clip <= 0:
            raise CircuitError("clip must be positive")
        self.default_sigma = float(default_sigma)
        self.per_block_sigma = dict(per_block_sigma or {})
        for block, sigma in self.per_block_sigma.items():
            if sigma < 0:
                raise CircuitError(
                    f"sigma for block {block!r} must be non-negative, got {sigma}")
        self.clip = float(clip)

    def sigma_of(self, block: str) -> float:
        """Return the relative sigma used for ``block``."""
        return self.per_block_sigma.get(block, self.default_sigma)

    def sample(self, blocks: Sequence[str],
               rng: int | np.random.Generator | None = None) -> dict[str, float]:
        """Draw one multiplier per block for a single device."""
        generator = ensure_rng(rng)
        multipliers: dict[str, float] = {}
        for block in blocks:
            sigma = self.sigma_of(block)
            value = 1.0 if sigma == 0 else float(generator.normal(1.0, sigma))
            multipliers[block] = float(np.clip(value, 1.0 - self.clip, 1.0 + self.clip))
        return multipliers

    def sample_devices(self, blocks: Sequence[str], count: int,
                       rng: int | np.random.Generator | None = None
                       ) -> np.ndarray:
        """Draw multipliers for ``count`` devices as a ``(count, blocks)`` array.

        The draws are made device-major over the non-zero-sigma blocks, which
        is exactly the order ``count`` successive :meth:`sample` calls
        consume, so with the same generator state the batched and scalar
        paths produce identical multipliers.
        """
        blocks = list(blocks)
        sigmas = np.array([self.sigma_of(block) for block in blocks], dtype=float)
        multipliers = np.ones((count, len(blocks)))
        varying = np.flatnonzero(sigmas != 0)
        if varying.size and count:
            draws = ensure_rng(rng).normal(1.0, sigmas[varying],
                                           size=(count, varying.size))
            multipliers[:, varying] = np.clip(draws, 1.0 - self.clip,
                                              1.0 + self.clip)
        return multipliers

    def sample_population(self, blocks: Sequence[str], count: int,
                          rng: int | np.random.Generator | None = None
                          ) -> list[dict[str, float]]:
        """Draw multipliers for ``count`` devices as per-device mappings."""
        generator = ensure_rng(rng)
        return [self.sample(blocks, generator) for _ in range(count)]
