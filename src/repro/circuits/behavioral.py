"""Block-level DC behavioural simulation.

The solver evaluates the blocks of a :class:`~repro.circuits.netlist.BlockNetlist`
in dependency order, applying injected faults, process variation and
measurement noise.  One evaluation corresponds to one DC operating point of
the circuit under one test condition — exactly what a functional
specification test on the ATE measures.

Two evaluation paths share one compiled :class:`SimulationPlan`:

* the scalar path (:meth:`BehavioralSimulator.run`) evaluates one device at
  one operating point, and
* the batched path (:meth:`BehavioralSimulator.run_batch` /
  :meth:`BehavioralSimulator.run_program`) evaluates a whole device
  population as ``(devices, blocks)`` float arrays with one vectorised noise
  draw per block.

The two paths consume the random stream identically (noise is drawn
device-major, exactly the order the scalar loop uses), so a batched run with
the same seed reproduces the scalar results bit-for-bit — the equivalence
tests pin that contract.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.circuits.components import (
    FAULT_MODE_CODES,
    HEALTHY,
    BehaviouralBlock,
    BlockHealth,
)
from repro.circuits.faults import BlockFault
from repro.circuits.netlist import BlockNetlist
from repro.circuits.process_variation import ProcessVariation
from repro.exceptions import CircuitError
from repro.utils.rng import ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """The outcome of one DC operating-point evaluation.

    Attributes
    ----------
    voltages:
        Output voltage of every block (net), including internal nets.
    conditions:
        The forced values of the controllable nets for this evaluation.
    faults:
        The faults that were injected, keyed by block name.
    """

    voltages: dict[str, float]
    conditions: dict[str, float]
    faults: dict[str, BlockFault]

    def voltage(self, block: str) -> float:
        """Return the simulated output voltage of ``block``."""
        if block not in self.voltages:
            raise CircuitError(f"no simulated voltage for block {block!r}")
        return self.voltages[block]


@dataclasses.dataclass
class BatchSimulationResult:
    """The outcome of one batched DC evaluation: N devices, one condition.

    Attributes
    ----------
    voltages:
        ``(devices, blocks)`` float array of block output voltages, columns
        in :attr:`columns` order (the netlist evaluation order).
    columns:
        Block name per voltage column.
    conditions:
        The forced values of the controllable nets for this evaluation.
    """

    voltages: np.ndarray
    columns: list[str]
    conditions: dict[str, float]

    def __post_init__(self) -> None:
        self._column_index = {name: i for i, name in enumerate(self.columns)}

    @property
    def device_count(self) -> int:
        """Number of devices along the batch axis."""
        return int(self.voltages.shape[0])

    def voltage(self, block: str) -> np.ndarray:
        """Return the ``(devices,)`` output voltages of ``block``."""
        if block not in self._column_index:
            raise CircuitError(f"no simulated voltage for block {block!r}")
        return self.voltages[:, self._column_index[block]]

    def device_voltages(self, device: int) -> dict[str, float]:
        """Return one device's voltages as a ``{block: voltage}`` mapping."""
        row = self.voltages[device]
        return {name: float(row[i]) for i, name in enumerate(self.columns)}


class SimulationPlan:
    """A netlist compiled for repeated evaluation.

    The plan caches everything :meth:`BehavioralSimulator.run` used to
    recompute per call: the topological evaluation order, each block's input
    wiring as column indices, which blocks are primary inputs, and the
    multiplier column per block (process-variation multipliers are drawn in
    netlist insertion order, which may differ from evaluation order).
    """

    def __init__(self, netlist: BlockNetlist) -> None:
        self.order: list[str] = netlist.evaluation_order()
        self.blocks: list[BehaviouralBlock] = [netlist.block(name)
                                               for name in self.order]
        self.column: dict[str, int] = {name: i for i, name in enumerate(self.order)}
        self.columns: list[str] = list(self.order)
        #: Multiplier columns follow netlist insertion order (the order the
        #: scalar ``sample_device`` draws them in).
        self.multiplier_names: list[str] = list(netlist.block_names)
        self._multiplier_index = {name: i
                                  for i, name in enumerate(self.multiplier_names)}
        #: Position of each evaluation column in the multiplier array.
        self.multiplier_column: list[int] = [self._multiplier_index[name]
                                             for name in self.order]
        self.input_columns: list[list[int]] = [
            [self.column[net] for net in block.inputs] for block in self.blocks]
        self.is_primary: list[bool] = [not block.inputs for block in self.blocks]

    @property
    def block_count(self) -> int:
        """Number of blocks (voltage columns)."""
        return len(self.order)

    # --------------------------------------------------------------- encoding
    def encode_faults(self, faults_per_device: Sequence[Mapping[str, BlockFault] | None],
                      netlist: BlockNetlist
                      ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Encode per-device fault maps into ``(modes, severities)`` arrays.

        Returns ``(None, None)`` when no device carries a fault.  Unknown
        fault blocks raise :class:`CircuitError` exactly like the scalar
        path; validation happens once here, not per operating point.
        """
        count = len(faults_per_device)
        modes: np.ndarray | None = None
        severities: np.ndarray | None = None
        for device, faults in enumerate(faults_per_device):
            if not faults:
                continue
            for block_name, fault in faults.items():
                if block_name not in netlist:
                    raise CircuitError(
                        f"cannot inject a fault into unknown block {block_name!r}")
                code = FAULT_MODE_CODES.get(fault.mode.value)
                if code is None:
                    raise CircuitError(
                        f"unknown fault mode {fault.mode.value!r} on block "
                        f"{block_name!r}")
                if modes is None:
                    modes = np.zeros((count, self.block_count), dtype=np.int8)
                    severities = np.ones((count, self.block_count))
                modes[device, self.column[block_name]] = code
                severities[device, self.column[block_name]] = fault.severity
        return modes, severities

    def encode_multipliers(self, device_multipliers, count: int) -> np.ndarray:
        """Normalise multipliers to a ``(devices, blocks)`` array.

        Accepts ``None`` (nominal), an array in netlist insertion order (the
        layout :meth:`ProcessVariation.sample_devices` produces) or a
        sequence of per-device ``{block: multiplier}`` mappings.
        """
        if device_multipliers is None:
            return np.ones((count, len(self.multiplier_names)))
        if isinstance(device_multipliers, np.ndarray):
            array = np.asarray(device_multipliers, dtype=float)
            if array.shape != (count, len(self.multiplier_names)):
                raise CircuitError(
                    f"device multipliers have shape {array.shape}, expected "
                    f"{(count, len(self.multiplier_names))}")
            return array
        if len(device_multipliers) != count:
            raise CircuitError(
                f"got {len(device_multipliers)} multiplier mappings for "
                f"{count} devices")
        array = np.ones((count, len(self.multiplier_names)))
        for device, multipliers in enumerate(device_multipliers):
            if not multipliers:
                continue
            for name, value in multipliers.items():
                column = self._multiplier_index.get(name)
                if column is not None:
                    array[device, column] = float(value)
        return array

    # -------------------------------------------------------------- evaluation
    def evaluate(self, condition_arrays: Mapping[str, np.ndarray], count: int,
                 modes: np.ndarray | None, severities: np.ndarray | None,
                 multipliers: np.ndarray,
                 noise: np.ndarray | None) -> np.ndarray:
        """Evaluate ``count`` device rows, one forced condition per row.

        The device axis is fully general: a row is one (device, operating
        point) pair, so a whole test program can be evaluated in a single
        pass by repeating devices per condition.  ``condition_arrays`` maps
        every forced net to its ``(count,)`` value array; ``noise`` is a
        ``(count, blocks)`` array (columns in evaluation order) or ``None``
        for a noiseless run.  Returns the ``(count, blocks)`` voltage array.
        """
        voltages = np.empty((count, self.block_count))
        for col, block in enumerate(self.blocks):
            if self.is_primary[col]:
                inputs = condition_arrays
            else:
                inputs = {net: voltages[:, c]
                          for net, c in zip(block.inputs, self.input_columns[col])}
            column_modes = column_severities = None
            if modes is not None:
                column = modes[:, col]
                if column.any():
                    column_modes = column
                    column_severities = severities[:, col]
            value = block.evaluate_batch(inputs, column_modes, column_severities,
                                         size=count)
            value = value * multipliers[:, self.multiplier_column[col]]
            if noise is not None:
                value = value + noise[:, col]
            voltages[:, col] = np.maximum(value, -1.0)
        return voltages


@dataclasses.dataclass
class DeviceContext:
    """One device's validated simulation context (faults plus multipliers).

    Built once per device by :meth:`BehavioralSimulator.device_context` so
    that running the same device under many test conditions does not
    re-validate the fault map on every operating point.
    """

    faults: dict[str, BlockFault]
    health: dict[str, BlockHealth]
    multipliers: dict[str, float]


class BehavioralSimulator:
    """DC block-level simulator with fault injection and noise.

    Parameters
    ----------
    netlist:
        The circuit to simulate (validated on construction).
    measurement_noise:
        Standard deviation, in volts, of the additive Gaussian noise applied
        to every block output (models ATE measurement noise plus residual
        block-level mismatch).
    process_variation:
        Optional :class:`ProcessVariation` describing lot-to-lot spread;
        per-device multipliers are drawn via :meth:`sample_device` or, for a
        whole population at once, :meth:`sample_devices`.
    seed:
        Seed or generator for reproducible simulation.
    """

    def __init__(self, netlist: BlockNetlist, measurement_noise: float = 0.01,
                 process_variation: ProcessVariation | None = None,
                 seed: int | np.random.Generator | None = None) -> None:
        netlist.validate()
        if measurement_noise < 0:
            raise CircuitError("measurement_noise must be non-negative")
        self.netlist = netlist
        self.measurement_noise = float(measurement_noise)
        self.process_variation = process_variation
        self._rng = ensure_rng(seed)
        self.plan = SimulationPlan(netlist)
        self._order = self.plan.order

    # ------------------------------------------------------------------ device
    def sample_device(self) -> dict[str, float]:
        """Draw per-block process-variation multipliers for one device."""
        if self.process_variation is None:
            return {name: 1.0 for name in self.netlist.block_names}
        return self.process_variation.sample(self.netlist.block_names, self._rng)

    def sample_devices(self, count: int) -> np.ndarray:
        """Draw multipliers for ``count`` devices as a ``(devices, blocks)`` array.

        Columns follow netlist insertion order; with the same generator
        state this consumes the random stream exactly like ``count``
        successive :meth:`sample_device` calls.
        """
        if self.process_variation is None:
            return np.ones((count, len(self.netlist.block_names)))
        return self.process_variation.sample_devices(
            self.netlist.block_names, count, self._rng)

    def device_context(self, faults: Mapping[str, BlockFault] | None = None,
                       device_multipliers: Mapping[str, float] | None = None
                       ) -> DeviceContext:
        """Validate a device's faults once and return a reusable context."""
        faults = dict(faults or {})
        health: dict[str, BlockHealth] = {}
        for block_name, fault in faults.items():
            if block_name not in self.netlist:
                raise CircuitError(
                    f"cannot inject a fault into unknown block {block_name!r}")
            health[block_name] = BlockHealth(healthy=False, mode=fault.mode.value,
                                             severity=fault.severity)
        return DeviceContext(faults=faults, health=health,
                             multipliers=dict(device_multipliers or {}))

    # -------------------------------------------------------------- evaluation
    def run(self, conditions: Mapping[str, float],
            faults: Mapping[str, BlockFault] | None = None,
            device_multipliers: Mapping[str, float] | None = None,
            noisy: bool = True) -> SimulationResult:
        """Evaluate one DC operating point.

        Parameters
        ----------
        conditions:
            Forced voltages of the controllable (primary-input) blocks.
        faults:
            Optional per-block faults to inject.
        device_multipliers:
            Optional per-block process-variation multipliers (from
            :meth:`sample_device`); defaults to nominal.
        noisy:
            Apply measurement noise when ``True``.
        """
        context = self.device_context(faults, device_multipliers)
        return self.run_with_context(conditions, context, noisy)

    def run_with_context(self, conditions: Mapping[str, float],
                         context: DeviceContext,
                         noisy: bool = True) -> SimulationResult:
        """Evaluate one operating point of an already-validated device."""
        voltages: dict[str, float] = {}
        conditions_map = dict(conditions)
        add_noise = noisy and self.measurement_noise > 0
        health = context.health
        multipliers = context.multipliers
        plan = self.plan
        for name, block, primary in zip(plan.order, plan.blocks, plan.is_primary):
            if primary:
                # Primary inputs read their forced value from the conditions.
                block_inputs: Mapping[str, float] = conditions_map
            else:
                block_inputs = {net: voltages[net] for net in block.inputs}
            value = block.evaluate(block_inputs, health.get(name, HEALTHY))
            value *= multipliers.get(name, 1.0)
            if add_noise:
                value += float(self._rng.normal(0.0, self.measurement_noise))
            voltages[name] = float(max(value, -1.0))
        return SimulationResult(voltages=voltages,
                                conditions=dict(conditions),
                                faults=dict(context.faults))

    def run_many(self, condition_sets: Mapping[str, Mapping[str, float]],
                 faults: Mapping[str, BlockFault] | None = None,
                 device_multipliers: Mapping[str, float] | None = None,
                 noisy: bool = True) -> dict[str, SimulationResult]:
        """Evaluate several named test conditions on the same (faulty) device."""
        context = self.device_context(faults, device_multipliers)
        return {label: self.run_with_context(conditions, context, noisy)
                for label, conditions in condition_sets.items()}

    # ------------------------------------------------------------- batched runs
    def run_batch(self, conditions: Mapping[str, float],
                  faults_per_device: Sequence[Mapping[str, BlockFault] | None] | None = None,
                  device_multipliers=None, noisy: bool = True,
                  size: int | None = None) -> BatchSimulationResult:
        """Evaluate one DC operating point for a whole device population.

        Parameters
        ----------
        conditions:
            Forced voltages of the controllable blocks (shared by every
            device — one operating point, many devices).
        faults_per_device:
            One fault map (or ``None``) per device; ``None`` means every
            device is defect-free.
        device_multipliers:
            ``None`` (nominal), a ``(devices, blocks)`` array from
            :meth:`sample_devices`, or a sequence of per-device mappings.
        noisy:
            Apply measurement noise when ``True``.  Noise is drawn as one
            device-major ``(devices, blocks)`` array, so with the same seed
            the batch reproduces sequential scalar :meth:`run` calls
            bit-for-bit.
        size:
            Device count; required when both ``faults_per_device`` and
            ``device_multipliers`` are ``None``.
        """
        count = self._batch_size(faults_per_device, device_multipliers, size)
        modes, severities, multipliers = self._batch_context(
            faults_per_device, device_multipliers, count)
        noise = self._draw_noise(count, 1, noisy)
        condition_arrays = {net: np.full(count, float(value))
                            for net, value in conditions.items()}
        voltages = self.plan.evaluate(condition_arrays, count, modes, severities,
                                      multipliers,
                                      None if noise is None else noise[:, 0, :])
        return BatchSimulationResult(voltages=voltages,
                                     columns=list(self.plan.columns),
                                     conditions=dict(conditions))

    def run_program(self, condition_sets: Sequence[Mapping[str, float]],
                    faults_per_device: Sequence[Mapping[str, BlockFault] | None] | None = None,
                    device_multipliers=None, noisy: bool = True,
                    size: int | None = None) -> np.ndarray:
        """Evaluate every condition set for a whole device population.

        Returns a ``(conditions, devices, blocks)`` voltage array (columns in
        evaluation order, see ``plan.columns``).  Noise for the full program
        is drawn as one ``(devices, conditions, blocks)`` array — the same
        device-major order the scalar path consumes when a tester walks one
        device through the whole program before the next device.

        When every condition set forces the same nets (the normal functional
        program layout) all ``conditions × devices`` rows are evaluated in a
        single pass over the blocks — every block runs exactly once for the
        whole program.
        """
        count = self._batch_size(faults_per_device, device_multipliers, size)
        modes, severities, multipliers = self._batch_context(
            faults_per_device, device_multipliers, count)
        condition_count = len(condition_sets)
        noise = self._draw_noise(count, condition_count, noisy)
        blocks = self.plan.block_count

        forced_nets = set(condition_sets[0]) if condition_sets else set()
        if all(set(conditions) == forced_nets for conditions in condition_sets):
            # Flatten (condition, device) onto one axis; row t*count + n is
            # device n under condition t, so reshaping the result recovers the
            # (conditions, devices, blocks) layout exactly.
            total = condition_count * count
            condition_arrays = {
                net: np.repeat(np.array([float(conditions[net])
                                         for conditions in condition_sets]),
                               count)
                for net in forced_nets}
            flat = self.plan.evaluate(
                condition_arrays, total,
                None if modes is None else np.tile(modes, (condition_count, 1)),
                None if severities is None else np.tile(severities,
                                                        (condition_count, 1)),
                np.tile(multipliers, (condition_count, 1)),
                None if noise is None
                else noise.transpose(1, 0, 2).reshape(total, blocks))
            return flat.reshape(condition_count, count, blocks)

        voltages = np.empty((condition_count, count, blocks))
        for index, conditions in enumerate(condition_sets):
            condition_arrays = {net: np.full(count, float(value))
                                for net, value in conditions.items()}
            voltages[index] = self.plan.evaluate(
                condition_arrays, count, modes, severities, multipliers,
                None if noise is None else noise[:, index, :])
        return voltages

    # ---------------------------------------------------------------- internals
    @staticmethod
    def _batch_size(faults_per_device, device_multipliers, size: int | None) -> int:
        if faults_per_device is not None:
            return len(faults_per_device)
        if device_multipliers is not None:
            return len(device_multipliers)
        if size is None:
            raise CircuitError(
                "run_batch needs faults_per_device, device_multipliers or an "
                "explicit size to determine the device count")
        return int(size)

    def _batch_context(self, faults_per_device, device_multipliers, count: int):
        if faults_per_device is not None and len(faults_per_device) != count:
            raise CircuitError(
                f"got {len(faults_per_device)} fault maps for {count} devices")
        if faults_per_device is None:
            modes = severities = None
        else:
            modes, severities = self.plan.encode_faults(faults_per_device,
                                                        self.netlist)
        multipliers = self.plan.encode_multipliers(device_multipliers, count)
        return modes, severities, multipliers

    def _draw_noise(self, count: int, condition_count: int,
                    noisy: bool) -> np.ndarray | None:
        if not noisy or self.measurement_noise <= 0:
            return None
        return self._rng.normal(
            0.0, self.measurement_noise,
            size=(count, condition_count, self.plan.block_count))
