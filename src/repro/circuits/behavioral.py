"""Block-level DC behavioural simulation.

The solver evaluates the blocks of a :class:`~repro.circuits.netlist.BlockNetlist`
in dependency order, applying injected faults, process variation and
measurement noise.  One evaluation corresponds to one DC operating point of
the circuit under one test condition — exactly what a functional
specification test on the ATE measures.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.circuits.components import HEALTHY, BlockHealth
from repro.circuits.faults import BlockFault
from repro.circuits.netlist import BlockNetlist
from repro.circuits.process_variation import ProcessVariation
from repro.exceptions import CircuitError
from repro.utils.rng import ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """The outcome of one DC operating-point evaluation.

    Attributes
    ----------
    voltages:
        Output voltage of every block (net), including internal nets.
    conditions:
        The forced values of the controllable nets for this evaluation.
    faults:
        The faults that were injected, keyed by block name.
    """

    voltages: dict[str, float]
    conditions: dict[str, float]
    faults: dict[str, BlockFault]

    def voltage(self, block: str) -> float:
        """Return the simulated output voltage of ``block``."""
        if block not in self.voltages:
            raise CircuitError(f"no simulated voltage for block {block!r}")
        return self.voltages[block]


class BehavioralSimulator:
    """DC block-level simulator with fault injection and noise.

    Parameters
    ----------
    netlist:
        The circuit to simulate (validated on construction).
    measurement_noise:
        Standard deviation, in volts, of the additive Gaussian noise applied
        to every block output (models ATE measurement noise plus residual
        block-level mismatch).
    process_variation:
        Optional :class:`ProcessVariation` describing lot-to-lot spread;
        per-device multipliers are drawn via :meth:`sample_device`.
    seed:
        Seed or generator for reproducible simulation.
    """

    def __init__(self, netlist: BlockNetlist, measurement_noise: float = 0.01,
                 process_variation: ProcessVariation | None = None,
                 seed: int | np.random.Generator | None = None) -> None:
        netlist.validate()
        if measurement_noise < 0:
            raise CircuitError("measurement_noise must be non-negative")
        self.netlist = netlist
        self.measurement_noise = float(measurement_noise)
        self.process_variation = process_variation
        self._rng = ensure_rng(seed)
        self._order = netlist.evaluation_order()

    # ------------------------------------------------------------------ device
    def sample_device(self) -> dict[str, float]:
        """Draw per-block process-variation multipliers for one device."""
        if self.process_variation is None:
            return {name: 1.0 for name in self.netlist.block_names}
        return self.process_variation.sample(self.netlist.block_names, self._rng)

    # -------------------------------------------------------------- evaluation
    def run(self, conditions: Mapping[str, float],
            faults: Mapping[str, BlockFault] | None = None,
            device_multipliers: Mapping[str, float] | None = None,
            noisy: bool = True) -> SimulationResult:
        """Evaluate one DC operating point.

        Parameters
        ----------
        conditions:
            Forced voltages of the controllable (primary-input) blocks.
        faults:
            Optional per-block faults to inject.
        device_multipliers:
            Optional per-block process-variation multipliers (from
            :meth:`sample_device`); defaults to nominal.
        noisy:
            Apply measurement noise when ``True``.
        """
        faults = dict(faults or {})
        for block_name in faults:
            if block_name not in self.netlist:
                raise CircuitError(
                    f"cannot inject a fault into unknown block {block_name!r}")
        multipliers = dict(device_multipliers or {})
        voltages: dict[str, float] = {}
        inputs_with_conditions = dict(conditions)

        for name in self._order:
            block = self.netlist.block(name)
            block_inputs = {net: voltages[net] for net in block.inputs}
            if not block.inputs:
                # Primary inputs read their forced value from the conditions.
                block_inputs = dict(inputs_with_conditions)
            health = self._health_of(name, faults)
            value = block.evaluate(block_inputs, health)
            value *= multipliers.get(name, 1.0)
            if noisy and self.measurement_noise > 0:
                value += float(self._rng.normal(0.0, self.measurement_noise))
            voltages[name] = float(max(value, -1.0))
        return SimulationResult(voltages=voltages,
                                conditions=dict(conditions),
                                faults=faults)

    def run_many(self, condition_sets: Mapping[str, Mapping[str, float]],
                 faults: Mapping[str, BlockFault] | None = None,
                 device_multipliers: Mapping[str, float] | None = None,
                 noisy: bool = True) -> dict[str, SimulationResult]:
        """Evaluate several named test conditions on the same (faulty) device."""
        return {label: self.run(conditions, faults, device_multipliers, noisy)
                for label, conditions in condition_sets.items()}

    # -------------------------------------------------------------------- misc
    @staticmethod
    def _health_of(name: str, faults: Mapping[str, BlockFault]) -> BlockHealth:
        if name not in faults:
            return HEALTHY
        fault = faults[name]
        return BlockHealth(healthy=False, mode=fault.mode.value,
                           severity=fault.severity)
