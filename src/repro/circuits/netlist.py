"""Block-level netlists.

A :class:`BlockNetlist` is the structural description of an analogue circuit
at the functional-block level: named blocks, the nets they drive and the nets
they read.  The netlist provides the evaluation order for the behavioural
solver and the dependency arcs for BBN structure modelling.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.circuits.components import BehaviouralBlock
from repro.exceptions import CircuitError
from repro.bayesnet.graph import DirectedGraph


class BlockNetlist:
    """A collection of behavioural blocks wired block-output to block-input.

    Every block drives exactly one net named after the block itself, which is
    the convention the paper uses (the model variable ``reg1`` *is* the
    output of the reg1 block).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise CircuitError("netlist name must be non-empty")
        self.name = name
        self._blocks: dict[str, BehaviouralBlock] = {}

    # ------------------------------------------------------------------ blocks
    def add_block(self, block: BehaviouralBlock) -> None:
        """Add ``block``; its output net takes the block's name."""
        if block.name in self._blocks:
            raise CircuitError(f"duplicate block name {block.name!r}")
        self._blocks[block.name] = block

    def add_blocks(self, blocks: Iterable[BehaviouralBlock]) -> None:
        """Add several blocks at once."""
        for block in blocks:
            self.add_block(block)

    def block(self, name: str) -> BehaviouralBlock:
        """Return the block called ``name``."""
        if name not in self._blocks:
            raise CircuitError(f"no block named {name!r} in netlist {self.name!r}")
        return self._blocks[name]

    @property
    def block_names(self) -> list[str]:
        """All block names in insertion order."""
        return list(self._blocks)

    @property
    def blocks(self) -> list[BehaviouralBlock]:
        """All blocks in insertion order."""
        return list(self._blocks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------ connectivity
    def validate(self) -> None:
        """Check that every block input is driven by some block in the netlist."""
        for block in self._blocks.values():
            for net in block.inputs:
                if net not in self._blocks:
                    raise CircuitError(
                        f"block {block.name!r} reads net {net!r} which no "
                        f"block in netlist {self.name!r} drives")
        # Ensure the dependency graph is acyclic (DirectedGraph enforces it).
        self.dependency_graph()

    def dependency_graph(self) -> DirectedGraph:
        """Return the DAG of block dependencies (driver -> reader)."""
        graph = DirectedGraph(nodes=self.block_names)
        for block in self._blocks.values():
            for net in block.inputs:
                if net in self._blocks:
                    graph.add_edge(net, block.name)
        return graph

    def evaluation_order(self) -> list[str]:
        """Return a drivers-before-readers evaluation order."""
        return self.dependency_graph().topological_sort()

    def drivers_of(self, name: str) -> list[str]:
        """Return the blocks whose outputs block ``name`` reads."""
        return list(self.block(name).inputs)

    def readers_of(self, name: str) -> list[str]:
        """Return the blocks that read the output of block ``name``."""
        self.block(name)
        return [block.name for block in self._blocks.values()
                if name in block.inputs]

    def primary_inputs(self) -> list[str]:
        """Return blocks with no drivers (controllable sources and pins)."""
        return [name for name, block in self._blocks.items() if not block.inputs]

    def primary_outputs(self) -> list[str]:
        """Return blocks whose output no other block reads."""
        return [name for name in self._blocks if not self.readers_of(name)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockNetlist(name={self.name!r}, blocks={len(self._blocks)})"
