"""The industrial multiple-output automotive voltage regulator (Fig. 2 / Fig. 3).

The paper's case study is a multiple-output voltage regulator with a built-in
power switch and ignition buffer, fabricated in a complementary bipolar
process, featuring reverse-polarity protection and low quiescent current.
Table V lists its 19 BBN model variables and Fig. 3 the structural
dependencies among them.

The state definitions below are copied from Table VII (state labels, lower
and upper voltage limits, remarks).  The dependency arcs reproduce Fig. 3 as
far as the paper describes it explicitly (warnvpst has parents lcbg and hcbg;
lcbg, enblSen and hcbg form a dependency loop; the enable gates derive from
their pins and warnvpst; each regulator output depends on its supply,
reference and enable) — the exact arc list is documented here because the
original figure is not machine-readable.

Naming note: the paper uses "enb13 pin" / "enb13" for the external pin and
the internal enable signal respectively; this module uses ``enb13_pin`` /
``enb13`` (and likewise for ``enb4`` and ``enbsw``), and ``vp1x`` for the
ignition-sense variable printed as both "vp1x" and "vpx" in the paper.
"""

from __future__ import annotations

import dataclasses

from repro.circuits.components import (
    BandgapReference,
    EnableGate,
    EnableSense,
    LinearRegulator,
    OrNode,
    PinInput,
    PowerSwitch,
    SupplyInput,
    SupplyMonitor,
)
from repro.circuits.faults import FaultMode, FaultUniverse
from repro.circuits.netlist import BlockNetlist
from repro.circuits.process_variation import ProcessVariation
from repro.core.blocks import BlockType, ModelVariable
from repro.core.circuit_model import CircuitModelDescription
from repro.core.states import StateDefinition, StateTable

#: The 19 model variables of Table V: name -> (circuit reference, type).
VOLTAGE_REGULATOR_BLOCKS: dict[str, tuple[str | None, BlockType]] = {
    "vp1": ("1", BlockType.CONTROL),
    "vp1x": ("1", BlockType.CONTROL),
    "vp2": ("2", BlockType.CONTROL),
    "enb13_pin": ("3", BlockType.CONTROL),
    "enb4_pin": ("4", BlockType.CONTROL),
    "enbsw_pin": ("5", BlockType.CONTROL),
    "sw": ("6", BlockType.OBSERVE),
    "reg1": ("7", BlockType.OBSERVE),
    "reg2": ("8", BlockType.OBSERVE),
    "reg3": ("9", BlockType.OBSERVE),
    "reg4": ("10", BlockType.OBSERVE),
    "enbsw": ("11", BlockType.INTERNAL),
    "lcbg": ("12", BlockType.INTERNAL),
    "warnvpst": ("13", BlockType.INTERNAL),
    "enblSen": ("14", BlockType.INTERNAL),
    "vx": (None, BlockType.INTERNAL),
    "hcbg": (None, BlockType.INTERNAL),
    "enb4": ("15", BlockType.INTERNAL),
    "enb13": ("16", BlockType.INTERNAL),
}

#: The Fig. 3 dependency arcs (parent -> child), as reconstructed from the
#: paper's description of the diagnostic case studies.
VOLTAGE_REGULATOR_DEPENDENCIES: list[tuple[str, str]] = [
    # Low-current bandgap runs straight off the battery rail.
    ("vp1", "lcbg"),
    # vx is the OR of the three external enable pins.
    ("enb13_pin", "vx"),
    ("enb4_pin", "vx"),
    ("enbsw_pin", "vx"),
    # The enable-sense block needs the OR-ed enables and the low-current
    # bandgap; the high-current bandgap needs the enable sense and the
    # battery rail (lcbg -> enblSen -> hcbg is the "loop" of case d4).
    ("vx", "enblSen"),
    ("lcbg", "enblSen"),
    ("enblSen", "hcbg"),
    ("vp1", "hcbg"),
    # The supply monitor watches the battery rail and both bandgaps
    # (case d1: internal parents lcbg, hcbg; the vp-status part of its name
    # means the warning also trips on a sagging supply).
    ("vp1", "warnvpst"),
    ("lcbg", "warnvpst"),
    ("hcbg", "warnvpst"),
    # Internal enables gate the pin requests with the monitor.
    ("enb13_pin", "enb13"),
    ("warnvpst", "enb13"),
    ("enb4_pin", "enb4"),
    ("warnvpst", "enb4"),
    ("enbsw_pin", "enbsw"),
    ("warnvpst", "enbsw"),
    # Regulator outputs: supply, reference and enable.
    ("vp1", "reg1"),
    ("hcbg", "reg1"),
    ("enb13", "reg1"),
    ("vp2", "reg2"),
    ("lcbg", "reg2"),
    ("vp2", "reg3"),
    ("hcbg", "reg3"),
    ("enb13", "reg3"),
    ("vp2", "reg4"),
    ("hcbg", "reg4"),
    ("enb4", "reg4"),
    # Power switch: battery rail, ignition sense and its enable.
    ("vp1", "sw"),
    ("vp1x", "sw"),
    ("enbsw", "sw"),
]


def _state_tables() -> list[StateTable]:
    """Return the Table VII state definitions for all 19 model variables."""
    return [
        StateTable("vp1", [
            StateDefinition("0", 0.0, 4.0, "low level"),
            StateDefinition("1", 4.0, 7.5, "intermediate level"),
            StateDefinition("2", 7.5, 14.4, "nominal level"),
            StateDefinition("3", 14.4, 100.0, "loaddump level"),
        ]),
        StateTable("vp1x", [
            StateDefinition("0", 0.0, 4.0, "bad state"),
            StateDefinition("1", 4.0, 5.0, "off state"),
            StateDefinition("2", 5.0, 6.5, "off-up/on-down"),
            StateDefinition("3", 6.5, 7.5, "on state"),
            StateDefinition("4", 7.5, 100.0, "on state"),
        ]),
        StateTable("vp2", [
            StateDefinition("0", 0.0, 3.5, "low level"),
            StateDefinition("1", 4.75, 6.0, "intermediate level"),
            StateDefinition("2", 6.0, 14.4, "nominal level"),
            StateDefinition("3", 14.4, 100.0, "loaddump level"),
        ]),
        StateTable("enb13_pin", [
            StateDefinition("0", 0.9, 1.9, "bad state"),
            StateDefinition("1", 0.4, 2.4, "good state"),
            StateDefinition("2", 0.0, 0.9, "bad state"),
            StateDefinition("3", 2.4, 100.0, "good state"),
            StateDefinition("4", 0.0, 0.0, "ground"),
        ]),
        StateTable("enb4_pin", [
            StateDefinition("0", 0.9, 1.9, "bad state"),
            StateDefinition("1", 0.4, 2.4, "good state"),
            StateDefinition("2", 0.0, 0.9, "bad state"),
            StateDefinition("3", 2.4, 100.0, "good state"),
            StateDefinition("4", 0.0, 0.0, "ground"),
        ]),
        StateTable("enbsw_pin", [
            StateDefinition("0", 0.9, 1.9, "bad state"),
            StateDefinition("1", 0.4, 2.4, "good state"),
            StateDefinition("2", 0.0, 0.9, "bad state"),
            StateDefinition("3", 2.4, 100.0, "good state"),
            StateDefinition("4", 0.0, 0.0, "ground"),
        ]),
        StateTable("sw", [
            StateDefinition("0", 0.0, 8.0, "short circuit"),
            StateDefinition("1", 8.0, 13.5, "normal mode"),
            StateDefinition("2", 13.5, 16.0, "clamp level"),
            StateDefinition("3", 16.0, 100.0, "others"),
        ]),
        StateTable("reg1", [
            StateDefinition("0", 0.0, 8.0, "switch off/defect"),
            StateDefinition("1", 8.0, 9.0, "in regulation"),
            StateDefinition("2", 9.0, 500.0, "out of regulation"),
            StateDefinition("3", -1.0e-7, -1.0e-3, "negative voltage"),
        ]),
        StateTable("reg2", [
            StateDefinition("0", 0.0, 4.75, "out of regulation"),
            StateDefinition("1", 4.75, 5.25, "in regulation"),
            StateDefinition("2", 5.25, 500.0, "out of regulation"),
            StateDefinition("3", -1.0e-7, -1.0e-3, "negative voltage"),
        ]),
        StateTable("reg3", [
            StateDefinition("0", 0.0, 4.75, "out of regulation"),
            StateDefinition("1", 4.75, 5.25, "in regulation"),
            StateDefinition("2", 5.25, 500.0, "out of regulation"),
            StateDefinition("3", -1.0e-7, -1.0e-3, "negative voltage"),
        ]),
        StateTable("reg4", [
            StateDefinition("0", 0.0, 3.14, "out of regulation"),
            StateDefinition("1", 3.14, 3.46, "in regulation"),
            StateDefinition("2", 3.46, 500.0, "out of regulation"),
            StateDefinition("3", -1.0e-7, -1.0e-3, "negative voltage"),
        ]),
        StateTable("lcbg", [
            StateDefinition("0", 0.0, 1.1, "non operational"),
            StateDefinition("1", 1.1, 1.3, "nominal operating"),
            StateDefinition("2", 1.3, 14.4, "non operational"),
            StateDefinition("3", 14.4, 100.0, "short circuit"),
        ]),
        StateTable("enbsw", [
            StateDefinition("0", 0.0, 2.5, "non-active"),
            StateDefinition("1", 2.5, 100.0, "active"),
        ]),
        StateTable("warnvpst", [
            StateDefinition("0", 0.0, 2.5, "off"),
            StateDefinition("1", 2.5, 100.0, "on"),
        ]),
        StateTable("enblSen", [
            StateDefinition("0", 0.0, 2.5, "non-active"),
            StateDefinition("1", 2.5, 100.0, "active"),
        ]),
        StateTable("vx", [
            StateDefinition("0", 0.0, 1.1, "bad state"),
            StateDefinition("1", 1.1, 100.0, "good state"),
        ]),
        StateTable("hcbg", [
            StateDefinition("0", 0.0, 1.1, "bad state"),
            StateDefinition("1", 1.1, 100.0, "good state"),
        ]),
        StateTable("enb4", [
            StateDefinition("0", 0.0, 2.5, "non-active"),
            StateDefinition("1", 2.5, 100.0, "active"),
        ]),
        StateTable("enb13", [
            StateDefinition("0", 0.0, 2.5, "non-active"),
            StateDefinition("1", 2.5, 100.0, "active"),
        ]),
    ]


def _netlist() -> BlockNetlist:
    """Return the behavioural netlist of the regulator."""
    netlist = BlockNetlist("voltage_regulator")
    netlist.add_blocks([
        # Controllable supplies and pins (forced by the ATE).
        SupplyInput("vp1", default=13.5),
        SupplyInput("vp1x", default=13.5),
        SupplyInput("vp2", default=8.0),
        PinInput("enb13_pin", default=3.3),
        PinInput("enb4_pin", default=3.3),
        PinInput("enbsw_pin", default=3.3),
        # Internal blocks.
        BandgapReference("lcbg", supply="vp1", reference=1.2, headroom=3.0),
        OrNode("vx", pins=["enb13_pin", "enb4_pin", "enbsw_pin"]),
        EnableSense("enblSen", or_net="vx", reference_net="lcbg",
                    active_level=3.3),
        BandgapReference("hcbg", supply="vp1", enable="enblSen",
                         reference=1.2, headroom=4.5),
        SupplyMonitor("warnvpst", primary_reference="lcbg",
                      secondary_reference="hcbg", supply="vp1",
                      supply_threshold=7.0, on_level=5.0),
        EnableGate("enb13", pin="enb13_pin", monitor="warnvpst"),
        EnableGate("enb4", pin="enb4_pin", monitor="warnvpst"),
        EnableGate("enbsw", pin="enbsw_pin", monitor="warnvpst"),
        # Observable outputs.
        LinearRegulator("reg1", supply="vp1", reference="hcbg", enable="enb13",
                        target=8.5, dropout=1.5),
        LinearRegulator("reg2", supply="vp2", reference="lcbg", enable=None,
                        target=5.0, dropout=1.0),
        LinearRegulator("reg3", supply="vp2", reference="hcbg", enable="enb13",
                        target=5.0, dropout=1.0),
        LinearRegulator("reg4", supply="vp2", reference="hcbg", enable="enb4",
                        target=3.3, dropout=1.0),
        PowerSwitch("sw", supply="vp1", ignition="vp1x", enable="enbsw",
                    drop=0.7, clamp_level=14.5),
    ])
    netlist.validate()
    return netlist


#: Relative defect likelihood per internal block; power blocks (bandgaps, the
#: monitor) fail more often in the field than small logic, which mimics the
#: skew of real customer-return Pareto charts.
DEFAULT_BLOCK_WEIGHTS: dict[str, float] = {
    "lcbg": 1.5,
    "hcbg": 1.5,
    "warnvpst": 1.2,
    "enblSen": 0.8,
    "vx": 0.5,
    "enb13": 1.0,
    "enb4": 1.0,
    "enbsw": 1.0,
    "reg1": 1.3,
    "reg2": 1.3,
    "reg3": 1.3,
    "reg4": 1.3,
    "sw": 1.5,
}


@dataclasses.dataclass
class VoltageRegulatorCircuit:
    """Bundle of the voltage-regulator representations.

    Attributes
    ----------
    netlist:
        Behavioural netlist for simulation and fault injection.
    model:
        The circuit-model description (Table V, Table VII states, Fig. 3 arcs).
    fault_universe:
        Faults over every non-controllable block.
    process_variation:
        Default process-variation model for population generation.
    nominal_conditions:
        The forced levels of the nominal full-circuit functional test.
    block_weights:
        Relative defect likelihood per block (used when sampling failed
        devices).
    healthy_states:
        The state label that corresponds to defect-free operation of each
        model variable (designer knowledge consumed by the prior builder and
        by candidate deduction).
    designer_fault_probabilities:
        Designer estimate of each block's prior defect likelihood, consumed
        by the behaviour-informed prior builder.
    """

    netlist: BlockNetlist
    model: CircuitModelDescription
    fault_universe: FaultUniverse
    process_variation: ProcessVariation
    nominal_conditions: dict[str, float]
    block_weights: dict[str, float]
    healthy_states: dict[str, str]
    designer_fault_probabilities: dict[str, float]


def build_voltage_regulator() -> VoltageRegulatorCircuit:
    """Construct the industrial multiple-output voltage regulator."""
    variables = [
        ModelVariable(name, block_type, reference,
                      description=_DESCRIPTIONS.get(name, ""))
        for name, (reference, block_type) in VOLTAGE_REGULATOR_BLOCKS.items()
    ]
    model = CircuitModelDescription("voltage_regulator", variables,
                                    _state_tables(),
                                    VOLTAGE_REGULATOR_DEPENDENCIES)
    netlist = _netlist()
    faultable = [name for name, (reference, block_type)
                 in VOLTAGE_REGULATOR_BLOCKS.items()
                 if not block_type.is_controllable]
    fault_universe = FaultUniverse(
        faultable,
        modes=(FaultMode.DEAD, FaultMode.STUCK_HIGH, FaultMode.DEGRADED,
               FaultMode.SHORT_TO_SUPPLY),
        severities=(1.0, 0.7),
    )
    process_variation = ProcessVariation(
        default_sigma=0.005,
        per_block_sigma={"lcbg": 0.008, "hcbg": 0.008, "reg1": 0.01,
                         "reg2": 0.01, "reg3": 0.01, "reg4": 0.01},
    )
    nominal_conditions = {
        "vp1": 13.5, "vp1x": 13.5, "vp2": 8.0,
        "enb13_pin": 3.3, "enb4_pin": 3.3, "enbsw_pin": 3.3,
    }
    return VoltageRegulatorCircuit(
        netlist=netlist, model=model, fault_universe=fault_universe,
        process_variation=process_variation,
        nominal_conditions=nominal_conditions,
        block_weights=dict(DEFAULT_BLOCK_WEIGHTS),
        healthy_states=dict(REGULATOR_HEALTHY_STATES),
        designer_fault_probabilities=dict(DESIGNER_FAULT_PROBABILITIES),
    )


#: Designer estimate of each internal block's prior probability of being the
#: defective one, given that the device is a field return.  Large analogue
#: blocks (bandgaps, the supply monitor, the regulators and the power switch)
#: dominate the defect Pareto; the small enable logic rarely fails.
DESIGNER_FAULT_PROBABILITIES: dict[str, float] = {
    "lcbg": 0.25, "hcbg": 0.30, "warnvpst": 0.30,
    "enblSen": 0.04, "vx": 0.03,
    "enb13": 0.08, "enb4": 0.08, "enbsw": 0.08,
    "reg1": 0.25, "reg2": 0.25, "reg3": 0.25, "reg4": 0.25,
    "sw": 0.30,
}


#: State labels corresponding to defect-free operation under the nominal
#: full-circuit test condition (vp1/vp1x/vp2 nominal, all enables requested).
#: For controllable variables the entry is the nominal forced state.
REGULATOR_HEALTHY_STATES: dict[str, str] = {
    "vp1": "2", "vp1x": "4", "vp2": "2",
    "enb13_pin": "1", "enb4_pin": "1", "enbsw_pin": "1",
    "sw": "1", "reg1": "1", "reg2": "1", "reg3": "1", "reg4": "1",
    "lcbg": "1", "hcbg": "1", "warnvpst": "1", "enblSen": "1", "vx": "1",
    "enb13": "1", "enb4": "1", "enbsw": "1",
}


_DESCRIPTIONS: dict[str, str] = {
    "vp1": "Battery supply rail",
    "vp1x": "Ignition-buffer sense input",
    "vp2": "Second (pre-regulated) supply rail",
    "enb13_pin": "External enable pin for regulators 1 and 3",
    "enb4_pin": "External enable pin for regulator 4",
    "enbsw_pin": "External enable pin for the power switch",
    "sw": "Built-in power switch output",
    "reg1": "Regulator output 1 (8.5 V)",
    "reg2": "Regulator output 2 (5.0 V, always on)",
    "reg3": "Regulator output 3 (5.0 V)",
    "reg4": "Regulator output 4 (3.3 V)",
    "enbsw": "Internal enable of the power switch",
    "lcbg": "Low-current bandgap reference",
    "warnvpst": "Supply warning / power-on monitor",
    "enblSen": "Enable-sense logic",
    "vx": "OR of the external enable pins",
    "hcbg": "High-current bandgap reference",
    "enb4": "Internal enable of regulator 4",
    "enb13": "Internal enable of regulators 1 and 3",
}
