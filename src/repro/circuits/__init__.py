"""Behavioural analogue-circuit substrate.

The paper diagnoses an industrial multiple-output voltage regulator using
*functional* test data only: per-test voltage measurements of controllable
and observable functional blocks.  This subpackage provides a block-level
behavioural simulator that produces exactly that kind of data:

* :mod:`repro.circuits.components` — behavioural block primitives (supplies,
  bandgaps, enable logic, regulators, power switch, monitors).
* :mod:`repro.circuits.netlist` — block-level netlists (directed connections
  between named blocks).
* :mod:`repro.circuits.behavioral` — the DC block-level solver that
  propagates voltages through a netlist.
* :mod:`repro.circuits.faults` — block-level fault models and injection.
* :mod:`repro.circuits.process_variation` — Monte-Carlo parameter spread.
* :mod:`repro.circuits.hypothetical` — the four-block hypothetical circuit of
  Fig. 1.
* :mod:`repro.circuits.voltage_regulator` — the multiple-output automotive
  voltage regulator of Fig. 2/3 (the paper's industrial example).
"""

from repro.circuits.components import (
    BehaviouralBlock,
    SupplyInput,
    PinInput,
    BandgapReference,
    OrNode,
    EnableSense,
    SupplyMonitor,
    EnableGate,
    LinearRegulator,
    PowerSwitch,
)
from repro.circuits.netlist import BlockNetlist
from repro.circuits.behavioral import (
    BatchSimulationResult,
    BehavioralSimulator,
    DeviceContext,
    SimulationPlan,
    SimulationResult,
)
from repro.circuits.faults import FaultMode, BlockFault, FaultUniverse
from repro.circuits.process_variation import ProcessVariation
from repro.circuits.hypothetical import build_hypothetical_circuit
from repro.circuits.voltage_regulator import (
    build_voltage_regulator,
    VOLTAGE_REGULATOR_BLOCKS,
)

__all__ = [
    "BehaviouralBlock",
    "SupplyInput",
    "PinInput",
    "BandgapReference",
    "OrNode",
    "EnableSense",
    "SupplyMonitor",
    "EnableGate",
    "LinearRegulator",
    "PowerSwitch",
    "BlockNetlist",
    "BatchSimulationResult",
    "BehavioralSimulator",
    "DeviceContext",
    "SimulationPlan",
    "SimulationResult",
    "FaultMode",
    "BlockFault",
    "FaultUniverse",
    "ProcessVariation",
    "build_hypothetical_circuit",
    "build_voltage_regulator",
    "VOLTAGE_REGULATOR_BLOCKS",
]
