"""Behavioural block primitives.

Every functional block of an analogue circuit is modelled at the behavioural
level: a block reads the DC voltages of its input nets, applies its transfer
behaviour (possibly degraded by an injected fault and by process variation)
and drives its output net.  The behavioural level is deliberate — the paper's
block-level diagnosis only ever sees *functional* (specification) test data,
never transistor-level waveforms, so a DC block-level model exercises the
same code path as the authors' silicon.

All blocks share the :class:`BehaviouralBlock` interface:

``evaluate(inputs, health)``
    map input net voltages to the block's output voltage, where ``health``
    scales/overrides the behaviour according to the injected fault.

``evaluate_batch(inputs, modes, severities, size)``
    the same computation over a whole device population at once: every input
    net carries a ``(devices,)`` float array, faults are encoded as integer
    mode codes (see :data:`FAULT_MODE_CODES`) and the output is a
    ``(devices,)`` array.  Subclasses override :meth:`nominal_output_batch`
    with numpy expressions; the base-class fallback loops over the device
    axis with the scalar :meth:`nominal_output`, so custom blocks stay
    batch-compatible without writing any array code.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import CircuitError

#: Integer encoding of fault modes used by the batched evaluation path
#: (0 is reserved for "healthy").  The codes are an implementation detail of
#: the device axis: scalar callers keep passing :class:`BlockHealth`.
FAULT_MODE_CODES: dict[str, int] = {
    "dead": 1,
    "stuck_high": 2,
    "short_to_supply": 3,
    "degraded": 4,
    "drift": 5,
}


@dataclasses.dataclass(frozen=True)
class BlockHealth:
    """The health of a block during one simulation.

    Attributes
    ----------
    healthy:
        ``True`` for a defect-free block.
    mode:
        Name of the fault mode when not healthy (``"dead"``, ``"stuck_high"``,
        ``"degraded"``, ``"short_to_supply"``, ``"drift"``).
    severity:
        Fault severity in ``[0, 1]``; used by the ``degraded`` and ``drift``
        modes to scale the output error.
    """

    healthy: bool = True
    mode: str = "none"
    severity: float = 1.0


HEALTHY = BlockHealth()


class BehaviouralBlock:
    """Base class for behavioural blocks.

    Parameters
    ----------
    name:
        Unique block name (the model-variable name used by the BBN).
    inputs:
        Names of the nets the block reads.
    vmax:
        The maximum voltage the block can ever drive (used by the
        ``stuck_high`` and ``short_to_supply`` fault modes).
    """

    def __init__(self, name: str, inputs: Sequence[str] = (), vmax: float = 40.0) -> None:
        if not name:
            raise CircuitError("block name must be non-empty")
        self.name = name
        self.inputs = list(inputs)
        self.vmax = float(vmax)

    # ------------------------------------------------------------------ faults
    def _apply_fault(self, nominal: float, inputs: Mapping[str, float],
                     health: BlockHealth) -> float:
        """Transform the nominal output according to the block's health."""
        if health.healthy:
            return nominal
        if health.mode == "dead":
            return 0.0
        if health.mode == "stuck_high":
            return self.vmax
        if health.mode == "short_to_supply":
            supply = max((inputs.get(net, 0.0) for net in self.inputs), default=self.vmax)
            return max(supply, nominal)
        if health.mode == "degraded":
            return nominal * max(0.0, 1.0 - 0.7 * health.severity)
        if health.mode == "drift":
            return nominal * (1.0 + 0.5 * health.severity)
        raise CircuitError(f"unknown fault mode {health.mode!r} on block {self.name!r}")

    def _apply_fault_batch(self, nominal: np.ndarray,
                           inputs: Mapping[str, np.ndarray],
                           modes: np.ndarray,
                           severities: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_apply_fault` over a device axis.

        ``modes`` holds one :data:`FAULT_MODE_CODES` entry (or 0 = healthy)
        per device; ``severities`` the matching severity.  Mode validation
        happens where faults are encoded, so every code here is known.
        """
        value = np.array(nominal, dtype=float, copy=True)
        dead = modes == FAULT_MODE_CODES["dead"]
        if dead.any():
            value[dead] = 0.0
        stuck = modes == FAULT_MODE_CODES["stuck_high"]
        if stuck.any():
            value[stuck] = self.vmax
        short = modes == FAULT_MODE_CODES["short_to_supply"]
        if short.any():
            if self.inputs:
                supply = np.maximum.reduce(
                    [np.asarray(inputs[net], dtype=float) for net in self.inputs])
            else:
                supply = np.full_like(value, self.vmax)
            value[short] = np.maximum(supply, nominal)[short]
        degraded = modes == FAULT_MODE_CODES["degraded"]
        if degraded.any():
            value[degraded] = (nominal[degraded]
                               * np.maximum(0.0, 1.0 - 0.7 * severities[degraded]))
        drift = modes == FAULT_MODE_CODES["drift"]
        if drift.any():
            value[drift] = nominal[drift] * (1.0 + 0.5 * severities[drift])
        return value

    # --------------------------------------------------------------- behaviour
    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        """Return the defect-free output voltage for the given input voltages."""
        raise NotImplementedError

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        """Return the defect-free output for ``size`` devices at once.

        The generic fallback evaluates the scalar :meth:`nominal_output` per
        device, so any custom block works on the batched path; built-in
        blocks override it with numpy expressions.
        """
        out = np.empty(size, dtype=float)
        scalar_inputs: dict[str, float] = {}
        for index in range(size):
            for net, values in inputs.items():
                scalar_inputs[net] = float(values[index])
            out[index] = self.nominal_output(scalar_inputs)
        return out

    def evaluate(self, inputs: Mapping[str, float],
                 health: BlockHealth = HEALTHY) -> float:
        """Return the block's output voltage under ``health``."""
        for net in self.inputs:
            if net not in inputs:
                raise CircuitError(
                    f"block {self.name!r} is missing input net {net!r}")
        nominal = self.nominal_output(inputs)
        return float(min(max(self._apply_fault(nominal, inputs, health), -1.0),
                         self.vmax))

    def evaluate_batch(self, inputs: Mapping[str, np.ndarray],
                       modes: np.ndarray | None = None,
                       severities: np.ndarray | None = None, *,
                       size: int) -> np.ndarray:
        """Return the block's output for a whole device population.

        Parameters
        ----------
        inputs:
            ``(devices,)`` float array per input net (primary-input blocks
            receive the forced condition arrays instead).
        modes / severities:
            Optional per-device fault-mode codes and severities; ``None``
            means every device is healthy.
        size:
            Number of devices along the batch axis.
        """
        for net in self.inputs:
            if net not in inputs:
                raise CircuitError(
                    f"block {self.name!r} is missing input net {net!r}")
        nominal = np.asarray(self.nominal_output_batch(inputs, size), dtype=float)
        if modes is None:
            value = nominal
        else:
            value = self._apply_fault_batch(nominal, inputs, modes, severities)
        return np.minimum(np.maximum(value, -1.0), self.vmax)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs})"


class SupplyInput(BehaviouralBlock):
    """A controllable supply input (e.g. the battery rails ``vp1``/``vp2``).

    The output simply reproduces the externally forced voltage; faults do not
    apply because the ATE drives the net.
    """

    def __init__(self, name: str, default: float = 0.0, vmax: float = 40.0) -> None:
        super().__init__(name, inputs=[], vmax=vmax)
        self.default = float(default)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        return float(inputs.get(self.name, self.default))

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        forced = inputs.get(self.name)
        if forced is None:
            return np.full(size, self.default)
        return np.asarray(forced, dtype=float)

    def evaluate(self, inputs: Mapping[str, float],
                 health: BlockHealth = HEALTHY) -> float:
        # Controllable nets are forced by the tester; health is ignored.
        return float(min(max(self.nominal_output(inputs), -1.0), self.vmax))

    def evaluate_batch(self, inputs: Mapping[str, np.ndarray],
                       modes: np.ndarray | None = None,
                       severities: np.ndarray | None = None, *,
                       size: int) -> np.ndarray:
        # Controllable nets are forced by the tester; health is ignored.
        nominal = self.nominal_output_batch(inputs, size)
        return np.minimum(np.maximum(nominal, -1.0), self.vmax)


class PinInput(SupplyInput):
    """A controllable digital/analogue pin (e.g. the ``enbx`` enable pins)."""

    def __init__(self, name: str, default: float = 0.0, vmax: float = 40.0) -> None:
        super().__init__(name, default=default, vmax=vmax)


class BandgapReference(BehaviouralBlock):
    """A bandgap voltage reference.

    Produces a ``reference`` output (typically 1.2 V) once its supply exceeds
    the start-up headroom and, optionally, once an enable net is active.
    """

    def __init__(self, name: str, supply: str, enable: str | None = None,
                 reference: float = 1.2, headroom: float = 3.0,
                 enable_threshold: float = 2.5, vmax: float = 40.0) -> None:
        inputs = [supply] + ([enable] if enable else [])
        super().__init__(name, inputs=inputs, vmax=vmax)
        self.supply = supply
        self.enable = enable
        self.reference = float(reference)
        self.headroom = float(headroom)
        self.enable_threshold = float(enable_threshold)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        if inputs[self.supply] < self.headroom:
            return 0.05 * inputs[self.supply]
        if self.enable is not None and inputs[self.enable] < self.enable_threshold:
            return 0.1
        return self.reference

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        supply = np.asarray(inputs[self.supply], dtype=float)
        out = np.where(supply < self.headroom, 0.05 * supply, self.reference)
        if self.enable is not None:
            enable = np.asarray(inputs[self.enable], dtype=float)
            out = np.where((supply >= self.headroom)
                           & (enable < self.enable_threshold), 0.1, out)
        return out


class OrNode(BehaviouralBlock):
    """An analogue OR of several pins (the paper's ``vx`` model variable).

    Output follows the highest input pin voltage; it is "good" when at least
    one enable pin is driven to a valid level.
    """

    def __init__(self, name: str, pins: Sequence[str], vmax: float = 40.0) -> None:
        if not pins:
            raise CircuitError(f"OrNode {name!r} requires at least one pin")
        super().__init__(name, inputs=list(pins), vmax=vmax)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        return max(inputs[pin] for pin in self.inputs)

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        return np.maximum.reduce(
            [np.asarray(inputs[pin], dtype=float) for pin in self.inputs])


class EnableSense(BehaviouralBlock):
    """Enable-sensing logic (the paper's ``enblSen``).

    Goes active (drives ``active_level``) when the OR-ed enable net is high
    enough and the low-current bandgap reference is within its nominal
    window.
    """

    def __init__(self, name: str, or_net: str, reference_net: str,
                 active_level: float = 3.3, or_threshold: float = 1.1,
                 reference_window: tuple[float, float] = (1.05, 1.35),
                 vmax: float = 40.0) -> None:
        super().__init__(name, inputs=[or_net, reference_net], vmax=vmax)
        self.or_net = or_net
        self.reference_net = reference_net
        self.active_level = float(active_level)
        self.or_threshold = float(or_threshold)
        self.reference_window = (float(reference_window[0]), float(reference_window[1]))

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        low, high = self.reference_window
        reference_ok = low <= inputs[self.reference_net] <= high
        if inputs[self.or_net] >= self.or_threshold and reference_ok:
            return self.active_level
        return 0.1

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        low, high = self.reference_window
        reference = np.asarray(inputs[self.reference_net], dtype=float)
        or_net = np.asarray(inputs[self.or_net], dtype=float)
        active = ((or_net >= self.or_threshold)
                  & (low <= reference) & (reference <= high))
        return np.where(active, self.active_level, 0.1)


class SupplyMonitor(BehaviouralBlock):
    """Supply/reference monitor (the paper's ``warnvpst``).

    Asserts its output ("on") when the monitored supply rail has enough
    headroom and both bandgap references are good, indicating the chip's
    internal supplies are trustworthy; otherwise the warning output stays low
    ("off") and the downstream enable gates are held inactive.
    """

    def __init__(self, name: str, primary_reference: str, secondary_reference: str,
                 supply: str | None = None, supply_threshold: float = 7.0,
                 on_level: float = 5.0,
                 primary_window: tuple[float, float] = (1.05, 1.35),
                 secondary_threshold: float = 1.1, vmax: float = 40.0) -> None:
        inputs = [primary_reference, secondary_reference] + ([supply] if supply else [])
        super().__init__(name, inputs=inputs, vmax=vmax)
        self.primary_reference = primary_reference
        self.secondary_reference = secondary_reference
        self.supply = supply
        self.supply_threshold = float(supply_threshold)
        self.on_level = float(on_level)
        self.primary_window = (float(primary_window[0]), float(primary_window[1]))
        self.secondary_threshold = float(secondary_threshold)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        low, high = self.primary_window
        primary_ok = low <= inputs[self.primary_reference] <= high
        secondary_ok = inputs[self.secondary_reference] >= self.secondary_threshold
        supply_ok = (self.supply is None
                     or inputs[self.supply] >= self.supply_threshold)
        if primary_ok and secondary_ok and supply_ok:
            return self.on_level
        return 0.1

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        low, high = self.primary_window
        primary = np.asarray(inputs[self.primary_reference], dtype=float)
        secondary = np.asarray(inputs[self.secondary_reference], dtype=float)
        good = ((low <= primary) & (primary <= high)
                & (secondary >= self.secondary_threshold))
        if self.supply is not None:
            supply = np.asarray(inputs[self.supply], dtype=float)
            good = good & (supply >= self.supply_threshold)
        return np.where(good, self.on_level, 0.1)


class EnableGate(BehaviouralBlock):
    """Internal enable gate (the paper's ``enb13``/``enb4``/``enbsw``).

    Passes the external enable-pin request through only when the supply
    monitor has asserted its "on" output.
    """

    def __init__(self, name: str, pin: str, monitor: str,
                 active_level: float = 5.0,
                 pin_windows: Sequence[tuple[float, float]] = ((0.4, 2.4), (2.4, 40.0)),
                 monitor_threshold: float = 2.5, vmax: float = 40.0) -> None:
        super().__init__(name, inputs=[pin, monitor], vmax=vmax)
        self.pin = pin
        self.monitor = monitor
        self.active_level = float(active_level)
        self.pin_windows = [(float(low), float(high)) for low, high in pin_windows]
        self.monitor_threshold = float(monitor_threshold)

    def _pin_request_valid(self, voltage: float) -> bool:
        return any(low <= voltage <= high for low, high in self.pin_windows)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        if not self._pin_request_valid(inputs[self.pin]):
            return 0.1
        if inputs[self.monitor] < self.monitor_threshold:
            return 0.1
        return self.active_level

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        pin = np.asarray(inputs[self.pin], dtype=float)
        monitor = np.asarray(inputs[self.monitor], dtype=float)
        valid = np.zeros(pin.shape, dtype=bool)
        for low, high in self.pin_windows:
            valid |= (low <= pin) & (pin <= high)
        return np.where(valid & (monitor >= self.monitor_threshold),
                        self.active_level, 0.1)


class LinearRegulator(BehaviouralBlock):
    """A linear voltage regulator output (the paper's ``reg1``–``reg4``).

    Regulates to ``target`` when the supply has enough headroom, the bandgap
    reference is good and (optionally) the enable gate is active; collapses
    towards zero when disabled or without a reference.  The regulation loop
    multiplies the reference by a fixed resistor ratio, so a drifted
    reference drags the output out of regulation proportionally — an
    out-of-window reference can never produce an in-regulation output.
    """

    def __init__(self, name: str, supply: str, reference: str,
                 enable: str | None, target: float,
                 dropout: float = 1.0, reference_threshold: float = 0.2,
                 nominal_reference: float = 1.2,
                 enable_threshold: float = 2.5, vmax: float = 40.0) -> None:
        inputs = [supply, reference] + ([enable] if enable else [])
        super().__init__(name, inputs=inputs, vmax=vmax)
        self.supply = supply
        self.reference = reference
        self.enable = enable
        self.target = float(target)
        self.dropout = float(dropout)
        self.reference_threshold = float(reference_threshold)
        self.nominal_reference = float(nominal_reference)
        self.enable_threshold = float(enable_threshold)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        if self.enable is not None and inputs[self.enable] < self.enable_threshold:
            return 0.05
        reference = inputs[self.reference]
        if reference < self.reference_threshold:
            return 0.05
        # The output tracks the reference through the feedback divider.
        regulated = self.target * (reference / self.nominal_reference)
        supply = inputs[self.supply]
        if supply < regulated + self.dropout:
            # Low supply: the output follows the supply minus the dropout.
            return max(0.0, supply - self.dropout)
        return regulated

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        reference = np.asarray(inputs[self.reference], dtype=float)
        supply = np.asarray(inputs[self.supply], dtype=float)
        regulated = self.target * (reference / self.nominal_reference)
        out = np.where(supply < regulated + self.dropout,
                       np.maximum(0.0, supply - self.dropout), regulated)
        out = np.where(reference < self.reference_threshold, 0.05, out)
        if self.enable is not None:
            enable = np.asarray(inputs[self.enable], dtype=float)
            out = np.where(enable < self.enable_threshold, 0.05, out)
        return out


class PowerSwitch(BehaviouralBlock):
    """The built-in power switch (the paper's ``sw``).

    Connects the battery rail to the output when enabled and the ignition
    sense is in its "on" window; clamps the output when the battery exceeds
    the clamp level.
    """

    def __init__(self, name: str, supply: str, ignition: str, enable: str,
                 drop: float = 0.7, clamp_level: float = 14.5,
                 ignition_on_threshold: float = 6.5,
                 enable_threshold: float = 2.5, vmax: float = 40.0) -> None:
        super().__init__(name, inputs=[supply, ignition, enable], vmax=vmax)
        self.supply = supply
        self.ignition = ignition
        self.enable = enable
        self.drop = float(drop)
        self.clamp_level = float(clamp_level)
        self.ignition_on_threshold = float(ignition_on_threshold)
        self.enable_threshold = float(enable_threshold)

    def nominal_output(self, inputs: Mapping[str, float]) -> float:
        if inputs[self.enable] < self.enable_threshold:
            return 0.05
        if inputs[self.ignition] < self.ignition_on_threshold:
            return 0.05
        output = inputs[self.supply] - self.drop
        return min(output, self.clamp_level)

    def nominal_output_batch(self, inputs: Mapping[str, np.ndarray],
                             size: int) -> np.ndarray:
        supply = np.asarray(inputs[self.supply], dtype=float)
        ignition = np.asarray(inputs[self.ignition], dtype=float)
        enable = np.asarray(inputs[self.enable], dtype=float)
        out = np.minimum(supply - self.drop, self.clamp_level)
        out = np.where(ignition < self.ignition_on_threshold, 0.05, out)
        return np.where(enable < self.enable_threshold, 0.05, out)
