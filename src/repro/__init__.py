"""repro — Block-Level Bayesian Diagnosis of Analogue Electronic Circuits.

A from-scratch reproduction of Krishnan, Doornbos, Brand and Kerkhoff,
"Block-Level Bayesian Diagnosis of Analogue Electronic Circuits" (DATE 2010):
a complete pipeline from analogue functional-test data to a ranked list of
suspect functional blocks, built on four substrates that are all part of this
package:

* :mod:`repro.bayesnet` — discrete Bayesian-belief-network engine (factors,
  CPDs, exact and approximate inference, parameter learning).
* :mod:`repro.circuits` — behavioural block-level circuit simulation with
  fault injection and process variation (including the paper's hypothetical
  circuit and the industrial multiple-output voltage regulator).
* :mod:`repro.ate` — ATE emulation: specification tests, no-stop-on-fail
  test programs, datalogs and failed-device population generation.
* :mod:`repro.core` — the paper's contribution: circuit-model description,
  the Dlog2BBN model builder, case generation, the diagnosis engine with
  automated candidate deduction, reports and metrics.
* :mod:`repro.baselines` — fault-dictionary, nearest-neighbour and
  naive-Bayes diagnosers used as comparison baselines.

Performance architecture
------------------------

The serving loop of diagnosis is *compute-once, query-many*: every failing
device asks for the posterior of all ~19 model variables, and the population
workflows (customer returns, fault-coverage and training-set-size sweeps)
multiply that by hundreds of cases.  The stack is organised around that
access pattern:

* **Factor kernels** — :class:`~repro.bayesnet.factor.DiscreteFactor`
  validates only at the public boundary; trusted intermediate results use a
  no-validation fast constructor, variable/state lookups are dict-backed,
  and :func:`~repro.bayesnet.factor.contract_factors` multiplies a whole
  bucket of factors and sums out eliminated variables in one ``einsum``
  call.
* **Single-pass marginals** — ``posteriors`` on both exact engines answers
  *all* requested marginals from one sweep: the junction tree calibrates
  once per evidence set and reads every clique, and variable elimination
  runs one shared-bucket forward/backward pass over its bucket tree.  Both
  engines cache results keyed by the evidence signature, so repeated
  queries on the same failing condition are near-free (the ``sweep_count``
  / ``calibration_count`` attributes expose this for testing).
* **Vectorised sampling** — the forward, likelihood-weighting and Gibbs
  samplers draw whole batches as integer state arrays with row-indexed CPT
  lookups (Gibbs advances parallel chains in lock-step) instead of
  per-sample Python dict loops.
* **Batched diagnosis** —
  :meth:`~repro.core.diagnosis.DiagnosisEngine.diagnose_batch` amortises
  engine construction and per-case posterior sweeps across a population and
  is the intended entry point for population-scale workloads.

``benchmarks/run_bench.py`` snapshots every benchmark kernel's median
runtime to ``BENCH_<n>.json`` so the performance trajectory is tracked
across PRs.

Quickstart
----------

>>> from repro.circuits import build_voltage_regulator
>>> from repro.core import Dlog2BBN, DiagnosisEngine
>>> from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
>>> circuit = build_voltage_regulator()
>>> builder = Dlog2BBN(circuit.model, circuit.healthy_states)
>>> built = builder.build()                      # designer prior only
>>> engine = DiagnosisEngine(built)
>>> diagnosis = engine.diagnose(PAPER_DIAGNOSTIC_CASES[1])   # case d2
>>> diagnosis.suspects
['enb13']
"""

from repro.core import (
    BlockType,
    CircuitModelDescription,
    Diagnosis,
    DiagnosisEngine,
    DiagnosisFailure,
    DiagnosisMetrics,
    DiagnosticCase,
    DiagnosticReport,
    Dlog2BBN,
    FallbackPolicy,
    ModelVariable,
    RobustDiagnosisEngine,
    StateDefinition,
    StateTable,
)
from repro.bayesnet import BayesianNetwork, TabularCPD
from repro.persist import ModelRegistry, PosteriorCache, model_fingerprint
from repro.serving import DiagnosisService, ServiceConfig, ServiceStats

__version__ = "1.1.0"

__all__ = [
    "BlockType",
    "CircuitModelDescription",
    "Diagnosis",
    "DiagnosisEngine",
    "DiagnosisFailure",
    "DiagnosisMetrics",
    "DiagnosticCase",
    "DiagnosticReport",
    "Dlog2BBN",
    "FallbackPolicy",
    "RobustDiagnosisEngine",
    "ModelVariable",
    "StateDefinition",
    "StateTable",
    "BayesianNetwork",
    "TabularCPD",
    "DiagnosisService",
    "ServiceConfig",
    "ServiceStats",
    "ModelRegistry",
    "PosteriorCache",
    "model_fingerprint",
    "__version__",
]
