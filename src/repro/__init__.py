"""repro — Block-Level Bayesian Diagnosis of Analogue Electronic Circuits.

A from-scratch reproduction of Krishnan, Doornbos, Brand and Kerkhoff,
"Block-Level Bayesian Diagnosis of Analogue Electronic Circuits" (DATE 2010):
a complete pipeline from analogue functional-test data to a ranked list of
suspect functional blocks, built on four substrates that are all part of this
package:

* :mod:`repro.bayesnet` — discrete Bayesian-belief-network engine (factors,
  CPDs, exact and approximate inference, parameter learning).
* :mod:`repro.circuits` — behavioural block-level circuit simulation with
  fault injection and process variation (including the paper's hypothetical
  circuit and the industrial multiple-output voltage regulator).
* :mod:`repro.ate` — ATE emulation: specification tests, no-stop-on-fail
  test programs, datalogs and failed-device population generation.
* :mod:`repro.core` — the paper's contribution: circuit-model description,
  the Dlog2BBN model builder, case generation, the diagnosis engine with
  automated candidate deduction, reports and metrics.
* :mod:`repro.baselines` — fault-dictionary, nearest-neighbour and
  naive-Bayes diagnosers used as comparison baselines.

Quickstart
----------

>>> from repro.circuits import build_voltage_regulator
>>> from repro.core import Dlog2BBN, DiagnosisEngine
>>> from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
>>> circuit = build_voltage_regulator()
>>> builder = Dlog2BBN(circuit.model, circuit.healthy_states)
>>> built = builder.build()                      # designer prior only
>>> engine = DiagnosisEngine(built)
>>> diagnosis = engine.diagnose(PAPER_DIAGNOSTIC_CASES[1])   # case d2
>>> diagnosis.suspects
['enb13']
"""

from repro.core import (
    BlockType,
    CircuitModelDescription,
    Diagnosis,
    DiagnosisEngine,
    DiagnosisMetrics,
    DiagnosticCase,
    DiagnosticReport,
    Dlog2BBN,
    ModelVariable,
    StateDefinition,
    StateTable,
)
from repro.bayesnet import BayesianNetwork, TabularCPD

__version__ = "1.0.0"

__all__ = [
    "BlockType",
    "CircuitModelDescription",
    "Diagnosis",
    "DiagnosisEngine",
    "DiagnosisMetrics",
    "DiagnosticCase",
    "DiagnosticReport",
    "Dlog2BBN",
    "ModelVariable",
    "StateDefinition",
    "StateTable",
    "BayesianNetwork",
    "TabularCPD",
    "__version__",
]
