"""Naive-Bayes diagnosis baseline (structure-free ablation of the BBN).

Treats the faulty block as a single class variable and every discretised
controllable/observable state as a conditionally independent feature:
``P(block | evidence) ∝ P(block) * Π P(state_v | block)``.  Compared with the
BBN circuit model this throws away the designer's dependency structure, which
is exactly the ablation the benchmark harness wants to quantify.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Mapping, Sequence

from repro.core.case_generation import LabeledCase
from repro.exceptions import DiagnosisError


class NaiveBayesDiagnoser:
    """Laplace-smoothed naive-Bayes classifier over discretised cases.

    Parameters
    ----------
    alpha:
        Laplace smoothing pseudo-count.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise DiagnosisError("alpha must be positive")
        self.alpha = float(alpha)
        self._class_counts: dict[str, int] = {}
        self._feature_counts: dict[str, dict[tuple[str, str], int]] = {}
        self._feature_values: dict[str, set[str]] = defaultdict(set)
        self._total = 0

    # ---------------------------------------------------------------- training
    def fit(self, cases: Sequence[LabeledCase],
            true_blocks: Mapping[str, str]) -> "NaiveBayesDiagnoser":
        """Count class and (class, feature) occurrences over the training cases."""
        self._class_counts = defaultdict(int)
        self._feature_counts = defaultdict(lambda: defaultdict(int))
        self._feature_values = defaultdict(set)
        self._total = 0
        for case in cases:
            if case.device_id not in true_blocks:
                continue
            block = true_blocks[case.device_id]
            self._class_counts[block] += 1
            self._total += 1
            for variable, state in case.observed().items():
                self._feature_counts[block][(variable, state)] += 1
                self._feature_values[variable].add(state)
        if self._total == 0:
            raise DiagnosisError("no training cases with ground truth were provided")
        self._class_counts = dict(self._class_counts)
        self._feature_counts = {block: dict(counts)
                                for block, counts in self._feature_counts.items()}
        return self

    # --------------------------------------------------------------- diagnosis
    def log_posterior(self, block: str, evidence: Mapping[str, str]) -> float:
        """Return the unnormalised log posterior of ``block`` given ``evidence``."""
        if block not in self._class_counts:
            raise DiagnosisError(f"block {block!r} was never seen during training")
        class_count = self._class_counts[block]
        classes = len(self._class_counts)
        log_probability = math.log(
            (class_count + self.alpha) / (self._total + self.alpha * classes))
        counts = self._feature_counts.get(block, {})
        for variable, state in evidence.items():
            values = self._feature_values.get(variable)
            if not values:
                continue
            count = counts.get((variable, str(state)), 0)
            log_probability += math.log(
                (count + self.alpha) / (class_count + self.alpha * len(values)))
        return log_probability

    def rank(self, evidence: Mapping[str, str]) -> list[tuple[str, float]]:
        """Return blocks ranked by posterior probability (highest first)."""
        if not self._class_counts:
            raise DiagnosisError("naive-Bayes diagnoser has not been fitted")
        evidence = {variable: str(state) for variable, state in evidence.items()}
        log_posteriors = {block: self.log_posterior(block, evidence)
                          for block in self._class_counts}
        maximum = max(log_posteriors.values())
        unnormalised = {block: math.exp(value - maximum)
                        for block, value in log_posteriors.items()}
        total = sum(unnormalised.values())
        return sorted(((block, value / total) for block, value in unnormalised.items()),
                      key=lambda item: item[1], reverse=True)

    def diagnose(self, evidence: Mapping[str, str]) -> str:
        """Return the maximum-posterior block."""
        return self.rank(evidence)[0][0]

    def rank_of(self, evidence: Mapping[str, str], true_block: str) -> int:
        """Return the 1-based rank of ``true_block`` for ``evidence``."""
        ranking = self.rank(evidence)
        for rank, (block, _) in enumerate(ranking, start=1):
            if block == true_block:
                return rank
        return len(ranking) + 1
