"""Fault-dictionary diagnosis baseline.

The oldest analogue diagnosis approach: simulate every fault in the fault
universe, record the pass/fail signature of the test program, and diagnose a
failing device by looking up the closest stored signature.  It needs the same
simulated training data the BBN gets, but no probabilistic model — which is
exactly the comparison the benchmarks draw.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.ate.tester import DeviceResult
from repro.exceptions import DiagnosisError


@dataclasses.dataclass
class _Signature:
    """A stored fault signature: the fraction of failing runs per test."""

    block: str
    fail_rates: dict[int, float]


class FaultDictionaryDiagnoser:
    """Pass/fail signature dictionary over the block-level fault universe.

    Parameters
    ----------
    tie_break_order:
        Optional block ordering used to break exact distance ties
        deterministically.
    """

    def __init__(self, tie_break_order: Sequence[str] | None = None) -> None:
        self._signatures: list[_Signature] = []
        self._test_numbers: list[int] = []
        self._tie_break = {block: index
                           for index, block in enumerate(tie_break_order or [])}

    # ---------------------------------------------------------------- training
    def fit(self, results: Sequence[DeviceResult],
            true_blocks: Mapping[str, str]) -> "FaultDictionaryDiagnoser":
        """Build the dictionary from simulated faulty devices.

        Parameters
        ----------
        results:
            ATE results of fault-injected devices.
        true_blocks:
            Ground-truth faulty block per device id.
        """
        if not results:
            raise DiagnosisError("cannot build a fault dictionary from no devices")
        per_block: dict[str, list[DeviceResult]] = {}
        test_numbers: set[int] = set()
        for result in results:
            if result.device_id not in true_blocks:
                raise DiagnosisError(
                    f"no ground-truth block for device {result.device_id!r}")
            per_block.setdefault(true_blocks[result.device_id], []).append(result)
            test_numbers.update(m.test_number for m in result.measurements)
        self._test_numbers = sorted(test_numbers)
        self._signatures = []
        for block, block_results in per_block.items():
            fail_rates: dict[int, float] = {}
            for number in self._test_numbers:
                outcomes = []
                for result in block_results:
                    for measurement in result.measurements:
                        if measurement.test_number == number:
                            outcomes.append(0.0 if measurement.passed else 1.0)
                fail_rates[number] = float(np.mean(outcomes)) if outcomes else 0.0
            self._signatures.append(_Signature(block=block, fail_rates=fail_rates))
        return self

    # --------------------------------------------------------------- diagnosis
    def _device_signature(self, result: DeviceResult) -> dict[int, float]:
        signature: dict[int, float] = {}
        for measurement in result.measurements:
            signature[measurement.test_number] = 0.0 if measurement.passed else 1.0
        return signature

    def rank(self, result: DeviceResult) -> list[tuple[str, float]]:
        """Return candidate blocks ranked by signature distance (closest first)."""
        if not self._signatures:
            raise DiagnosisError("fault dictionary has not been fitted")
        observed = self._device_signature(result)
        scored: list[tuple[str, float]] = []
        for signature in self._signatures:
            distances = []
            for number in self._test_numbers:
                if number in observed:
                    distances.append(abs(observed[number] - signature.fail_rates[number]))
            distance = float(np.mean(distances)) if distances else 1.0
            scored.append((signature.block, distance))
        scored.sort(key=lambda item: (item[1], self._tie_break.get(item[0], 0),
                                      item[0]))
        return scored

    def diagnose(self, result: DeviceResult) -> str:
        """Return the single closest-signature block."""
        return self.rank(result)[0][0]

    def rank_of(self, result: DeviceResult, true_block: str) -> int:
        """Return the 1-based rank of ``true_block`` for ``result``."""
        ranking = self.rank(result)
        for rank, (block, _) in enumerate(ranking, start=1):
            if block == true_block:
                return rank
        return len(ranking) + 1
