"""Nearest-neighbour diagnosis baseline in the discretised state space.

Diagnoses a failing device by finding the most similar training device
(Hamming similarity over the discretised controllable/observable states) and
returning its ground-truth faulty block.  A simple, surprisingly strong
baseline when the training population densely covers the fault universe.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

from repro.core.case_generation import LabeledCase
from repro.exceptions import DiagnosisError


class NearestNeighborDiagnoser:
    """k-nearest-neighbour diagnosis over discretised cases.

    Parameters
    ----------
    k:
        Number of neighbours whose ground-truth blocks vote on the diagnosis.
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise DiagnosisError("k must be at least 1")
        self.k = int(k)
        self._training: list[tuple[dict[str, str], str]] = []

    # ---------------------------------------------------------------- training
    def fit(self, cases: Sequence[LabeledCase],
            true_blocks: Mapping[str, str]) -> "NearestNeighborDiagnoser":
        """Store the observed part of every training case with its true block."""
        self._training = []
        for case in cases:
            if case.device_id not in true_blocks:
                continue
            self._training.append((case.observed(), true_blocks[case.device_id]))
        if not self._training:
            raise DiagnosisError("no training cases with ground truth were provided")
        return self

    # --------------------------------------------------------------- diagnosis
    @staticmethod
    def _similarity(first: Mapping[str, str], second: Mapping[str, str]) -> float:
        shared = set(first) & set(second)
        if not shared:
            return 0.0
        agreements = sum(1 for variable in shared if first[variable] == second[variable])
        return agreements / len(shared)

    def rank(self, evidence: Mapping[str, str]) -> list[tuple[str, float]]:
        """Return blocks ranked by the vote share of the k nearest neighbours."""
        if not self._training:
            raise DiagnosisError("nearest-neighbour diagnoser has not been fitted")
        evidence = {variable: str(state) for variable, state in evidence.items()}
        scored = sorted(self._training,
                        key=lambda item: self._similarity(evidence, item[0]),
                        reverse=True)
        votes = Counter(block for _, block in scored[:self.k])
        total = sum(votes.values())
        ranking = [(block, count / total) for block, count in votes.most_common()]
        # Blocks never seen among the neighbours get rank after all voted ones.
        seen = {block for block, _ in ranking}
        remaining = sorted({block for _, block in self._training} - seen)
        ranking.extend((block, 0.0) for block in remaining)
        return ranking

    def diagnose(self, evidence: Mapping[str, str]) -> str:
        """Return the block with the most neighbour votes."""
        return self.rank(evidence)[0][0]

    def rank_of(self, evidence: Mapping[str, str], true_block: str) -> int:
        """Return the 1-based rank of ``true_block`` for ``evidence``."""
        ranking = self.rank(evidence)
        for rank, (block, _) in enumerate(ranking, start=1):
            if block == true_block:
                return rank
        return len(ranking) + 1
