"""Nearest-neighbour diagnosis baseline in the discretised state space.

Diagnoses a failing device by finding the most similar training device
(Hamming similarity over the discretised controllable/observable states) and
returning its ground-truth faulty block.  A simple, surprisingly strong
baseline when the training population densely covers the fault universe.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.case_generation import LabeledCase
from repro.exceptions import DiagnosisError


class NearestNeighborDiagnoser:
    """k-nearest-neighbour diagnosis over discretised cases.

    Parameters
    ----------
    k:
        Number of neighbours whose ground-truth blocks vote on the diagnosis.
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise DiagnosisError("k must be at least 1")
        self.k = int(k)
        self._training: list[tuple[dict[str, str], str]] = []
        self._variables: list[str] = []
        self._state_codes: dict[str, dict[str, int]] = {}
        self._codes = np.empty((0, 0), dtype=np.int32)
        self._present = np.empty((0, 0), dtype=bool)

    # ---------------------------------------------------------------- training
    def fit(self, cases: Sequence[LabeledCase],
            true_blocks: Mapping[str, str]) -> "NearestNeighborDiagnoser":
        """Store the observed part of every training case with its true block.

        The training cases are also encoded into integer matrices (one code
        per distinct state label, -1 for "not observed") so that
        :meth:`rank` scores every training case with two vectorised
        comparisons instead of a Python loop per case.
        """
        self._training = []
        for case in cases:
            if case.device_id not in true_blocks:
                continue
            self._training.append((case.observed(), true_blocks[case.device_id]))
        if not self._training:
            raise DiagnosisError("no training cases with ground truth were provided")
        self._variables = sorted({variable for observed, _ in self._training
                                  for variable in observed})
        self._state_codes: dict[str, dict[str, int]] = {
            variable: {} for variable in self._variables}
        codes = np.full((len(self._training), len(self._variables)), -1,
                        dtype=np.int32)
        for row, (observed, _) in enumerate(self._training):
            for col, variable in enumerate(self._variables):
                state = observed.get(variable)
                if state is not None:
                    mapping = self._state_codes[variable]
                    codes[row, col] = mapping.setdefault(state, len(mapping))
        self._codes = codes
        self._present = codes >= 0
        return self

    # --------------------------------------------------------------- diagnosis
    @staticmethod
    def _similarity(first: Mapping[str, str], second: Mapping[str, str]) -> float:
        shared = set(first) & set(second)
        if not shared:
            return 0.0
        agreements = sum(1 for variable in shared if first[variable] == second[variable])
        return agreements / len(shared)

    def rank(self, evidence: Mapping[str, str]) -> list[tuple[str, float]]:
        """Return blocks ranked by the vote share of the k nearest neighbours."""
        if not self._training:
            raise DiagnosisError("nearest-neighbour diagnoser has not been fitted")
        evidence = {variable: str(state) for variable, state in evidence.items()}
        # Evidence variables outside the training vocabulary are never shared
        # with any training case, so encoding over the vocabulary is exact.
        query = np.full(len(self._variables), -1, dtype=np.int32)
        for col, variable in enumerate(self._variables):
            state = evidence.get(variable)
            if state is not None:
                query[col] = self._state_codes[variable].get(state, -2)
        shared = self._present & (query != -1)[None, :]
        shared_counts = shared.sum(axis=1)
        agreement = (shared & (self._codes == query[None, :])).sum(axis=1)
        similarities = np.where(shared_counts > 0,
                                agreement / np.maximum(shared_counts, 1), 0.0)
        # Stable descending sort keeps the scalar path's tie-break (training
        # insertion order) intact.
        nearest = np.argsort(-similarities, kind="stable")[:self.k]
        votes = Counter(self._training[int(index)][1] for index in nearest)
        total = sum(votes.values())
        ranking = [(block, count / total) for block, count in votes.most_common()]
        # Blocks never seen among the neighbours get rank after all voted ones.
        seen = {block for block, _ in ranking}
        remaining = sorted({block for _, block in self._training} - seen)
        ranking.extend((block, 0.0) for block in remaining)
        return ranking

    def diagnose(self, evidence: Mapping[str, str]) -> str:
        """Return the block with the most neighbour votes."""
        return self.rank(evidence)[0][0]

    def rank_of(self, evidence: Mapping[str, str], true_block: str) -> int:
        """Return the 1-based rank of ``true_block`` for ``evidence``."""
        ranking = self.rank(evidence)
        for rank, (block, _) in enumerate(ranking, start=1):
            if block == true_block:
                return rank
        return len(ranking) + 1
