"""Baseline diagnosers used for comparison benchmarks.

The paper cites several alternative analogue-diagnosis approaches (fault
dictionaries, functional-mapping and neural/Bayesian parametric methods) as
related work without comparing against them numerically.  To give the
benchmark harness a meaningful comparison axis, three classical baselines are
implemented on exactly the same inputs the BBN diagnoser consumes (per-test
pass/fail signatures or discretised block states):

* :class:`FaultDictionaryDiagnoser` — the classical pass/fail signature
  dictionary built from simulated faulty devices.
* :class:`NearestNeighborDiagnoser` — nearest neighbour in the discretised
  state space.
* :class:`NaiveBayesDiagnoser` — a flat naive-Bayes classifier over the
  observable states (a structure-free ablation of the BBN).
"""

from repro.baselines.fault_dictionary import FaultDictionaryDiagnoser
from repro.baselines.nearest_neighbor import NearestNeighborDiagnoser
from repro.baselines.naive_bayes import NaiveBayesDiagnoser

__all__ = [
    "FaultDictionaryDiagnoser",
    "NearestNeighborDiagnoser",
    "NaiveBayesDiagnoser",
]
