"""Monte-Carlo fault-coverage study of block-level diagnosis.

Goes beyond the paper's five hand-picked cases: injects every fault of the
regulator's fault universe into simulated devices, diagnoses each failing
device and reports, per faulted block, how often the true block lands in the
deduced suspect list and in the top-3 ranking.  This is the kind of
diagnosability sweep a test engineer would run before trusting the method on
real customer returns — it also shows which blocks are inherently
confusable from functional test data alone.

Run with::

    python examples/fault_coverage_study.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.ate import PopulationGenerator
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, build_voltage_regulator
from repro.core import CaseGenerator, DiagnosisEngine, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder
from repro.utils.tables import format_table

DEVICES_PER_BLOCK = 6


def main() -> None:
    circuit = build_voltage_regulator()
    program = build_functional_program("vr_functional", circuit.model,
                                       REGULATOR_CONDITION_SETS)
    prior = SimulationPriorBuilder(
        circuit.netlist, circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=circuit.designer_fault_probabilities,
        process_variation=circuit.process_variation,
        samples=3000, seed=7).build()
    builder = Dlog2BBN(circuit.model, circuit.healthy_states)
    engine = DiagnosisEngine(builder.build(prior_network=prior))
    case_generator = CaseGenerator(circuit.model)

    simulator = BehavioralSimulator(circuit.netlist,
                                    process_variation=circuit.process_variation,
                                    seed=88)
    generator = PopulationGenerator(simulator, program, circuit.fault_universe,
                                    seed=89)

    internal = set(circuit.model.internal_variables)
    per_block = defaultdict(lambda: {"devices": 0, "suspect": 0, "top3": 0,
                                     "masked": 0})
    # Collect every failing device's evidence first, then diagnose the whole
    # population in one batched sweep against the shared engine (duplicate
    # failing conditions hit the engine's evidence cache).
    evidences: list[dict[str, str]] = []
    faulted_blocks: list[str] = []
    for fault in circuit.fault_universe.enumerate():
        if fault.block not in internal:
            continue
        # The whole per-fault population is simulated and discretised through
        # the batched pipeline: one tester pass, one case-generation pass.
        population = generator.generate_for_fault(fault, DEVICES_PER_BLOCK)
        stats = per_block[fault.block]
        stats["devices"] += len(population)
        stats["masked"] += len(population.passing_results)
        cases = case_generator.cases_from_results(population.failing_results)
        by_device: dict[str, dict[str, str]] = {}
        for case in cases:
            if case.failed and case.device_id not in by_device:
                by_device[case.device_id] = case.observed()
        for result in population.failing_results:
            evidences.append(by_device[result.device_id])
            faulted_blocks.append(fault.block)

    for diagnosis, block in zip(engine.diagnose_batch(evidences), faulted_blocks):
        stats = per_block[block]
        if block in diagnosis.suspects:
            stats["suspect"] += 1
        if diagnosis.rank_of(block) <= 3:
            stats["top3"] += 1

    rows = []
    for block in sorted(per_block):
        stats = per_block[block]
        tested = stats["devices"] - stats["masked"]
        rows.append([
            block,
            stats["devices"],
            stats["masked"],
            f"{stats['suspect'] / tested:.2f}" if tested else "-",
            f"{stats['top3'] / tested:.2f}" if tested else "-",
        ])
    print(format_table(
        ["Faulted block", "Devices", "Masked (pass all tests)",
         "Suspect-list hit rate", "Top-3 hit rate"],
        rows, title="Fault-coverage study over the internal blocks"))
    print("\nBlocks with low hit rates are confusable from functional data "
          "alone; the paper's step two (structural tests inside the suspect "
          "block) is what separates them.")


if __name__ == "__main__":
    main()
