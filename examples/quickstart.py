"""Quickstart: diagnose the paper's five voltage-regulator cases.

Builds the industrial multiple-output voltage regulator, derives the designer
prior from behavioural simulation, fine-tunes the CPTs on a synthetic
70-failed-device population (the stand-in for the paper's customer returns)
and diagnoses the five Table VI case studies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.ate import PopulationGenerator
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, build_voltage_regulator
from repro.core import DiagnosisEngine, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES, PAPER_EXPECTED_SUSPECTS
from repro.core.report import case_summary_table


def main() -> None:
    # 1. The circuit: behavioural netlist + BBN circuit-model description.
    circuit = build_voltage_regulator()
    program = build_functional_program("vr_functional", circuit.model,
                                       REGULATOR_CONDITION_SETS)

    # 2. Designer prior: what the product designer's simulation says.
    prior = SimulationPriorBuilder(
        circuit.netlist, circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=circuit.designer_fault_probabilities,
        process_variation=circuit.process_variation,
        samples=3000, seed=7).build()

    # 3. Fine-tuning data: a no-stop-on-fail test of 70 failed devices.
    simulator = BehavioralSimulator(circuit.netlist,
                                    process_variation=circuit.process_variation,
                                    seed=11)
    generator = PopulationGenerator(simulator, program, circuit.fault_universe,
                                    circuit.block_weights, seed=12)
    population = generator.generate(failed_count=70)

    # 4. Dlog2BBN: cases from the ATE data, CPTs fine-tuned against the prior.
    builder = Dlog2BBN(circuit.model, circuit.healthy_states)
    cases = builder.case_generator().cases_from_results(population.results)
    built = builder.build(cases, method="bayes", prior_network=prior,
                          equivalent_sample_size=200)
    print(f"Built BBN circuit model from {built.training_case_count} learning cases "
          f"({len(population)} failed devices).")

    # 5. Diagnostic mode: the five Table VI case studies.
    engine = DiagnosisEngine(built)
    diagnoses = engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
    print()
    print(case_summary_table(PAPER_DIAGNOSTIC_CASES, diagnoses))
    print()
    for diagnosis in diagnoses:
        expected = ", ".join(PAPER_EXPECTED_SUSPECTS[diagnosis.case_name])
        print(f"{diagnosis.case_name}: deduced suspects = {diagnosis.suspects} "
              f"(paper: {expected})")


if __name__ == "__main__":
    main()
