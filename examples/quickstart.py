"""Quickstart: diagnose the paper's five voltage-regulator cases.

Builds the industrial multiple-output voltage regulator, derives the designer
prior from behavioural simulation, fine-tunes the CPTs on a synthetic
70-failed-device population (the stand-in for the paper's customer returns)
and diagnoses the five Table VI case studies.  The closing sections show
the production path: the batched population pipeline (thousands of devices
simulated, tested and converted to learning cases per second), the robust
engine on noisy records, and the supervised worker-pool service that
shards a population across processes with crash isolation, deadlines and
backpressure — the ahead-of-time compiled inference programs that hold the
interactive single-device path under a millisecond, and the durable
cross-process state: a crash-safe shared posterior/program cache and a
versioned model registry that hot-swaps re-trained models into running
workers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.ate import DeviceResultStore, PopulationGenerator
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, build_voltage_regulator
from repro.core import (
    DiagnosisEngine,
    Dlog2BBN,
    FallbackPolicy,
    RobustDiagnosisEngine,
)
from repro.core.behavioral_prior import SimulationPriorBuilder
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES, PAPER_EXPECTED_SUSPECTS
from repro.core.report import case_summary_table
from repro.serving import DiagnosisService, ServiceConfig


def main() -> None:
    # 1. The circuit: behavioural netlist + BBN circuit-model description.
    circuit = build_voltage_regulator()
    program = build_functional_program("vr_functional", circuit.model,
                                       REGULATOR_CONDITION_SETS)

    # 2. Designer prior: what the product designer's simulation says.
    prior = SimulationPriorBuilder(
        circuit.netlist, circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=circuit.designer_fault_probabilities,
        process_variation=circuit.process_variation,
        samples=3000, seed=7).build()

    # 3. Fine-tuning data: a no-stop-on-fail test of 70 failed devices.
    simulator = BehavioralSimulator(circuit.netlist,
                                    process_variation=circuit.process_variation,
                                    seed=11)
    generator = PopulationGenerator(simulator, program, circuit.fault_universe,
                                    circuit.block_weights, seed=12)
    population = generator.generate(failed_count=70)

    # 4. Dlog2BBN: cases from the ATE data, CPTs fine-tuned against the prior.
    builder = Dlog2BBN(circuit.model, circuit.healthy_states)
    cases = builder.case_generator().cases_from_results(population.results)
    built = builder.build(cases, method="bayes", prior_network=prior,
                          equivalent_sample_size=200)
    print(f"Built BBN circuit model from {built.training_case_count} learning cases "
          f"({len(population)} failed devices).")

    # 5. Diagnostic mode: the five Table VI case studies.
    engine = DiagnosisEngine(built)
    diagnoses = engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
    print()
    print(case_summary_table(PAPER_DIAGNOSTIC_CASES, diagnoses))
    print()
    for diagnosis in diagnoses:
        expected = ", ".join(PAPER_EXPECTED_SUSPECTS[diagnosis.case_name])
        print(f"{diagnosis.case_name}: deduced suspects = {diagnosis.suspects} "
              f"(paper: {expected})")

    # 6. Batched population generation: the whole simulate -> test ->
    #    discretise -> case path runs as population-at-a-time array kernels.
    #    `generate` samples every fault up-front, measures all devices per
    #    specification test through the batch simulator (re-drawing only the
    #    masked-fault rows) and `cases_from_results` discretises whole
    #    measurement columns at once.
    print()
    start = time.perf_counter()
    big_population = generator.generate(failed_count=1000, passing_count=200)
    generated = time.perf_counter() - start
    start = time.perf_counter()
    big_cases = builder.case_generator().cases_from_results(
        big_population.results)
    converted = time.perf_counter() - start
    print(f"Batched pipeline: {len(big_population)} devices "
          f"({len(big_population.failing_results)} failing) generated in "
          f"{generated * 1e3:.0f} ms "
          f"({len(big_population) / generated:,.0f} devices/s), "
          f"{len(big_cases)} learning cases in {converted * 1e3:.0f} ms "
          f"({len(big_cases) / converted:,.0f} cases/s).")

    # 7. Robust serving: real returned-device logs are noisy.  The robust
    #    engine validates evidence up front, falls back from exact to
    #    approximate inference under a deadline, and isolates per-case
    #    failures so one poisoned record cannot kill a population sweep.
    robust = RobustDiagnosisEngine(
        built,
        FallbackPolicy(chain=("ve", "lw", "gibbs"), deadline=2.0,
                       num_samples=2000, seed=0))
    noisy_batch = [
        PAPER_DIAGNOSTIC_CASES[0].evidence(),      # clean record
        {"vp1": "99", "bogus_pin": "1"},           # corrupted datalog row
        PAPER_DIAGNOSTIC_CASES[1].evidence(),      # clean record
    ]
    results = robust.diagnose_batch(
        noisy_batch, names=["device-001", "device-002", "device-003"],
        on_error="collect")
    print()
    print("Robust batch over a noisy population (on_error='collect'):")
    for result in results:
        if result.ok:
            provenance = result.provenance
            flags = "degraded" if provenance.degraded else "healthy"
            ess = ("" if provenance.effective_sample_size is None else
                   f", ess={provenance.effective_sample_size:.0f}")
            print(f"  {result.case_name}: suspects={result.suspects} "
                  f"[engine={provenance.engine}, {flags}, "
                  f"wall={provenance.wall_time * 1e3:.1f}ms{ess}]")
        else:
            print(f"  {result.case_name}: FAILED ({result.error_type}) "
                  f"{result.message.splitlines()[0]}")

    # 8. Serving a population: the worker-pool service shards a batch
    #    across supervised worker processes (each hosting its own robust
    #    engine).  Worker crashes are isolated and retried, per-request
    #    deadlines propagate into every inference attempt, a bounded queue
    #    applies backpressure, and `stats()` exposes a structured health
    #    snapshot.  Use it whenever one process is not enough — or when it
    #    must not be trusted to stay alive.
    population_evidence = [case.observed() for case in big_cases[:200]]
    service_policy = FallbackPolicy(chain=("ve", "lw"), num_samples=2000,
                                    seed=0, on_invalid_evidence="sanitize")
    config = ServiceConfig(num_workers=2, chunk_size=16,
                           max_pending_cases=10_000,
                           overload_policy="block")
    print()
    start = time.perf_counter()
    with DiagnosisService(built, service_policy, config) as service:
        served = service.diagnose_batch(population_evidence,
                                        deadline=120.0, timeout=300.0)
        stats = service.stats()
    elapsed = time.perf_counter() - start
    succeeded = sum(1 for result in served if result.ok)
    print(f"Diagnosis service: {len(served)} devices on "
          f"{stats.workers} workers in {elapsed:.2f}s "
          f"({len(served) / elapsed:,.0f} devices/s): "
          f"{succeeded} diagnosed, {len(served) - succeeded} structured "
          f"failures, {stats.respawns} respawns, {stats.shed} shed.")
    print(f"  chunk latency p50={stats.chunk_latency_p50 * 1e3:.1f}ms "
          f"p99={stats.chunk_latency_p99 * 1e3:.1f}ms; "
          f"queue={stats.queue_depth}, in-flight={stats.in_flight} "
          f"after drain.")

    # 9. Training at scale: the columnar data path.  The batched tester
    #    already produced the population as a `DeviceResultStore` — two
    #    `(tests, devices)` planes plus test metadata — so learning never
    #    needs per-device row objects.  The store round-trips through
    #    `save`/`load` as memory-mapped `.npy` planes (opening an ATE-scale
    #    population costs only its metadata), `case_matrix` discretises
    #    whole measurement columns into an integer-coded `CaseMatrix`, and
    #    the estimators count every CPT with one `np.bincount` pass over
    #    the matrix.  The columnar equivalence suite pins this path to the
    #    row-based one at exact-count / 1e-12-CPT parity.
    print()
    store = big_population.to_store()
    with tempfile.TemporaryDirectory() as scratch:
        saved = store.save(Path(scratch) / "population")
        loaded = DeviceResultStore.load(saved)     # memory-mapped planes
        start = time.perf_counter()
        matrix = builder.case_generator().case_matrix(loaded)
        encoded = time.perf_counter() - start
        start = time.perf_counter()
        tuned = builder.build(matrix, method="bayes", prior_network=prior,
                              equivalent_sample_size=200)
        fitted = time.perf_counter() - start
    print(f"Training at scale: {loaded.device_count} devices "
          f"({loaded.test_count} tests/device) reloaded via mmap, "
          f"{len(matrix)} cases encoded in {encoded * 1e3:.0f} ms, "
          f"CPTs fine-tuned in {fitted * 1e3:.0f} ms "
          f"({len(matrix) / fitted:,.0f} cases/s).")
    scaled_engine = DiagnosisEngine(tuned)
    scaled = scaled_engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
    agreeing = sum(1 for before, after in zip(diagnoses, scaled)
                   if before.suspects == after.suspects)
    print(f"  paper-case suspects after the scaled fit: {agreeing}/"
          f"{len(scaled)} match the 70-device model.")

    # 10. Compiled inference and the latency SLO.  `compiled=True` traces
    #     the junction-tree sweep once per evidence-variable signature into
    #     a static op-list (einsum contractions with precomputed paths,
    #     preallocated buffers, evidence entered by slicing into pinned CPT
    #     arrays) — every later query is pure array execution, which is what
    #     holds the interactive bench-station path under a millisecond.
    #     The same program runs whole populations with a leading device
    #     axis via the batched diagnose path.
    print()
    compiled_engine = DiagnosisEngine(built, inference="jt", compiled=True)
    compile_ms = compiled_engine.warm_compile(
        tuple(sorted(PAPER_DIAGNOSTIC_CASES[0].evidence())))
    evidence = PAPER_DIAGNOSTIC_CASES[0].evidence()
    compiled_engine.diagnose_evidence(evidence, name="warmup")
    start = time.perf_counter()
    single = compiled_engine.diagnose_evidence(evidence, name="compiled")
    single_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    swept = compiled_engine.diagnose_batch(population_evidence)
    sweep = time.perf_counter() - start
    print(f"Compiled inference: program traced in {compile_ms:.1f} ms "
          f"({compiled_engine.compile_count} program(s)); single-device "
          f"posterior in {single_ms:.3f} ms (suspects={single.suspects}); "
          f"{len(swept)} devices swept in {sweep * 1e3:.0f} ms "
          f"({len(swept) / sweep:,.0f} devices/s).")

    # 11. Durable caching & hot reload.  `persist_dir` gives the service a
    #     crash-safe on-disk state shared by every worker: exact posteriors
    #     and compiled programs land in an append-only, CRC-checksummed
    #     `PosteriorCache` keyed by the model's content fingerprint, so a
    #     restarted service answers repeated evidence from disk,
    #     bit-identically, without recomputing.  The same directory holds a
    #     versioned `ModelRegistry`: `publish_model` validates a re-trained
    #     model (structure, CPT sums, a compiled-vs-interpreted parity
    #     smoke), commits it atomically, and every running worker hot-swaps
    #     to it between chunks — no restart, and a bad candidate is
    #     rejected before anything is renamed.
    print()
    config = ServiceConfig(num_workers=2, chunk_size=2)
    with tempfile.TemporaryDirectory() as state:
        with DiagnosisService(built, FallbackPolicy(), config,
                              persist_dir=state,
                              reload_poll_interval=0.0) as service:
            start = time.perf_counter()
            service.diagnose_batch(PAPER_DIAGNOSTIC_CASES, timeout=120)
            cold_s = time.perf_counter() - start
            version = service.publish_model(tuned)   # hot-swap, validated
            service.diagnose_batch(PAPER_DIAGNOSTIC_CASES, timeout=120)
            reloads = service.stats().model_reloads
        with DiagnosisService(built, FallbackPolicy(), config,
                              persist_dir=state) as service:   # restarted
            start = time.perf_counter()
            service.diagnose_batch(PAPER_DIAGNOSTIC_CASES, timeout=120)
            warm_s = time.perf_counter() - start
            stats = service.stats()
        hit_rate = stats.cache_hits / (stats.cache_hits + stats.cache_misses)
        print(f"Durable state: published model v{version} hot-swapped into "
              f"{reloads} worker(s); after a restart the cache answered "
              f"{hit_rate:.0%} of lookups ({warm_s * 1e3:.0f} ms warm vs "
              f"{cold_s * 1e3:.0f} ms cold).")


if __name__ == "__main__":
    main()
