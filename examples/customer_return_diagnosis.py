"""Customer-return diagnosis through the ATE datalog path.

Scenario from the paper's introduction: a defective automotive product comes
back from the field and the business line has ten calendar days to report the
cause.  This example walks the full flow for a single return:

1. the return is re-tested on the ATE with the no-stop-on-fail functional
   program, producing an ASCII datalog (here the "silicon" is the behavioural
   simulator with a hidden injected fault),
2. Dlog2BBN converts the datalog into discretised cases,
3. the BBN circuit model diagnoses the failing condition and prints the
   ranked suspect functional blocks — step one of the paper's two-step flow.

Run with::

    python examples/customer_return_diagnosis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.ate import ATETester, parse_datalog, write_datalog
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, BlockFault, FaultMode, build_voltage_regulator
from repro.core import CaseGenerator, DiagnosisEngine, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder
from repro.utils.tables import format_table

#: The hidden defect of the returned product (unknown to the diagnosis flow).
HIDDEN_FAULT = BlockFault("enb13", FaultMode.DEAD)


def build_engine(circuit) -> DiagnosisEngine:
    """Build the BBN circuit model from designer knowledge only."""
    prior = SimulationPriorBuilder(
        circuit.netlist, circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=circuit.designer_fault_probabilities,
        process_variation=circuit.process_variation,
        samples=3000, seed=7).build()
    builder = Dlog2BBN(circuit.model, circuit.healthy_states)
    return DiagnosisEngine(builder.build(prior_network=prior))


def main() -> None:
    circuit = build_voltage_regulator()
    program = build_functional_program("vr_functional", circuit.model,
                                       REGULATOR_CONDITION_SETS)

    # --- re-test the customer return on the ATE and keep the datalog --------
    simulator = BehavioralSimulator(circuit.netlist,
                                    process_variation=circuit.process_variation,
                                    seed=77)
    tester = ATETester(simulator, program)
    result = tester.test_device("RETURN-0042",
                                faults={HIDDEN_FAULT.block: HIDDEN_FAULT})
    datalog_path = Path(tempfile.gettempdir()) / "return_0042.log"
    write_datalog([result.to_datalog()], datalog_path)
    print(f"Re-tested RETURN-0042: {'FAIL' if result.failed else 'PASS'}; "
          f"datalog written to {datalog_path}")
    failing = result.failing_measurements()
    print(format_table(
        ["Test", "Block", "Measured (V)", "Limits (V)"],
        [[m.test_name, m.block, f"{m.value:.3f}", f"[{m.lower:g}, {m.upper:g}]"]
         for m in failing],
        title="Failing specification tests"))

    # --- Dlog2BBN: datalog -> cases -> evidence ------------------------------
    engine = build_engine(circuit)
    generator = CaseGenerator(circuit.model)
    cases = generator.cases_from_datalogs(parse_datalog(datalog_path))
    failing_cases = [case for case in cases if case.failed]
    print(f"\nGenerated {len(cases)} cases from the datalog "
          f"({len(failing_cases)} with specification failures).")

    # --- block-level diagnosis ----------------------------------------------
    diagnosis = engine.diagnose_evidence(failing_cases[0].observed(),
                                         name="RETURN-0042")
    print(format_table(
        ["Internal block", "P(not healthy)"],
        [[block, f"{probability:.3f}"]
         for block, probability in diagnosis.ranked_candidates],
        title="Ranked internal candidates"))
    print(f"\nDeduced suspect functional block(s): {diagnosis.suspects}")
    print(f"Hidden defect actually injected:      ['{HIDDEN_FAULT.block}']")


if __name__ == "__main__":
    main()
