"""Single-pass inference core: equivalence, sweep counting and determinism.

The batched inference PR replaced per-variable eliminations with a single
shared sweep (``posteriors``), evidence-keyed caches and vectorised samplers.
These tests pin the contract: the fast paths must agree with the independent
per-variable elimination reference to 1e-10 on the five paper cases and on
randomised evidence, a full posterior sweep must cost exactly one
calibration/elimination, and the vectorised samplers must stay deterministic
under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import (
    ForwardSampler,
    GibbsSampling,
    JunctionTree,
    LikelihoodWeighting,
    VariableElimination,
)
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES

ATOL = 1e-10


def reference_posteriors(network, variables, evidence):
    """The old per-variable path: one independent elimination per variable."""
    engine = VariableElimination(network)
    return {variable: engine.query([variable], evidence).to_distribution()
            for variable in variables}


def assert_distributions_close(left, right, *, atol=ATOL):
    assert set(left) == set(right)
    for variable in left:
        assert set(left[variable]) == set(right[variable])
        for state, probability in left[variable].items():
            assert probability == pytest.approx(right[variable][state], abs=atol), \
                (variable, state)


def random_evidence_sets(network, count, seed):
    """Consistent random evidence drawn from forward samples (P(e) > 0)."""
    rng = np.random.default_rng(seed)
    sampler = ForwardSampler(network, seed=rng)
    nodes = list(network.nodes)
    for sample in sampler.sample(count):
        size = int(rng.integers(1, min(8, len(nodes))))
        chosen = rng.choice(len(nodes), size=size, replace=False)
        yield {nodes[i]: sample[nodes[i]] for i in chosen}


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("case", PAPER_DIAGNOSTIC_CASES,
                             ids=[c.name for c in PAPER_DIAGNOSTIC_CASES])
    def test_paper_cases_match_per_variable_ve(self, regulator_built_model, case):
        network = regulator_built_model.network
        evidence = case.evidence()
        free = [node for node in network.nodes if node not in evidence]
        reference = reference_posteriors(network, free, evidence)

        single_pass = VariableElimination(network).posteriors(free, evidence)
        assert_distributions_close(single_pass, reference)

        calibrated = JunctionTree(network).posteriors(free, evidence)
        assert_distributions_close(calibrated, reference)

    def test_randomized_evidence_matches_per_variable_ve(self, regulator_built_model):
        network = regulator_built_model.network
        ve = VariableElimination(network)
        jt = JunctionTree(network)
        for evidence in random_evidence_sets(network, count=8, seed=20260729):
            free = [node for node in network.nodes if node not in evidence]
            reference = reference_posteriors(network, free, evidence)
            assert_distributions_close(ve.posteriors(free, evidence), reference)
            assert_distributions_close(jt.posteriors(free, evidence), reference)

    def test_sprinkler_randomized_evidence(self, sprinkler_network):
        ve = VariableElimination(sprinkler_network)
        jt = JunctionTree(sprinkler_network)
        for evidence in random_evidence_sets(sprinkler_network, count=6, seed=11):
            free = [n for n in sprinkler_network.nodes if n not in evidence]
            reference = reference_posteriors(sprinkler_network, free, evidence)
            assert_distributions_close(ve.posteriors(free, evidence), reference)
            assert_distributions_close(jt.posteriors(free, evidence), reference)

    def test_probability_of_evidence_agrees_between_engines(self, regulator_built_model):
        network = regulator_built_model.network
        evidence = PAPER_DIAGNOSTIC_CASES[0].evidence()
        assert VariableElimination(network).probability_of_evidence(evidence) == \
            pytest.approx(JunctionTree(network).probability_of_evidence(evidence),
                          rel=1e-10)

    def test_diagnose_batch_matches_sequential_and_reference(self, regulator_engine,
                                                             regulator_built_model):
        batch = regulator_engine.diagnose_batch(PAPER_DIAGNOSTIC_CASES)
        sequential = [regulator_engine.diagnose(case)
                      for case in PAPER_DIAGNOSTIC_CASES]
        network = regulator_built_model.network
        for together, alone, case in zip(batch, sequential, PAPER_DIAGNOSTIC_CASES):
            assert together.case_name == case.name
            assert together.suspects == alone.suspects
            assert together.ranked_candidates == alone.ranked_candidates
            evidence = case.evidence()
            free = [n for n in network.nodes if n not in evidence]
            reference = reference_posteriors(network, free, evidence)
            assert_distributions_close(
                {v: together.posteriors[v] for v in free}, reference)

    def test_diagnose_batch_accepts_raw_evidence(self, regulator_engine):
        evidences = [case.evidence() for case in PAPER_DIAGNOSTIC_CASES[:2]]
        diagnoses = regulator_engine.diagnose_batch(evidences, names=["a", "b"])
        assert [d.case_name for d in diagnoses] == ["a", "b"]
        assert diagnoses[0].suspects == regulator_engine.diagnose(
            PAPER_DIAGNOSTIC_CASES[0]).suspects


class TestSinglePassCounting:
    def test_ve_posteriors_is_one_sweep(self, regulator_built_model):
        network = regulator_built_model.network
        internal = regulator_built_model.description.internal_variables
        evidence = PAPER_DIAGNOSTIC_CASES[0].evidence()
        engine = VariableElimination(network)
        assert engine.sweep_count == 0
        engine.posteriors(internal, evidence)
        assert engine.sweep_count == 1
        # Repeated queries on the same case are cache hits, not new sweeps.
        engine.posteriors(internal, evidence)
        for variable in internal:
            engine.posterior(variable, evidence)
        assert engine.sweep_count == 1
        # A new failing condition costs exactly one more sweep.
        engine.posteriors(internal, PAPER_DIAGNOSTIC_CASES[1].evidence())
        assert engine.sweep_count == 2

    def test_jt_posteriors_is_one_calibration(self, regulator_built_model):
        network = regulator_built_model.network
        internal = regulator_built_model.description.internal_variables
        evidence = PAPER_DIAGNOSTIC_CASES[0].evidence()
        tree = JunctionTree(network)
        assert tree.calibration_count == 0
        tree.posteriors(internal, evidence)
        assert tree.calibration_count == 1
        tree.posteriors(internal, evidence)
        for variable in internal:
            tree.posterior(variable, evidence)
        assert tree.calibration_count == 1
        # Returning to an earlier evidence set hits the calibration cache.
        tree.posteriors(internal, PAPER_DIAGNOSTIC_CASES[1].evidence())
        assert tree.calibration_count == 2
        tree.posteriors(internal, evidence)
        assert tree.calibration_count == 2


class TestCacheInvalidation:
    def test_ve_cache_drops_on_cpd_replacement(self, sprinkler_network):
        from repro.bayesnet import TabularCPD
        engine = VariableElimination(sprinkler_network)
        before = engine.posterior("rain", {"wet": "1"})
        sprinkler_network.add_cpd(TabularCPD(
            "rain", 2, [[0.99, 0.99], [0.01, 0.01]], ["cloudy"], [2]))
        after = engine.posterior("rain", {"wet": "1"})
        fresh = VariableElimination(sprinkler_network).posterior("rain", {"wet": "1"})
        assert after == fresh
        assert after != before

    def test_jt_cache_drops_on_cpd_replacement(self, sprinkler_network):
        from repro.bayesnet import TabularCPD
        tree = JunctionTree(sprinkler_network)
        before = tree.posterior("rain", {"wet": "1"})
        sprinkler_network.add_cpd(TabularCPD(
            "rain", 2, [[0.99, 0.99], [0.01, 0.01]], ["cloudy"], [2]))
        after = tree.posterior("rain", {"wet": "1"})
        fresh = JunctionTree(sprinkler_network).posterior("rain", {"wet": "1"})
        assert {s: pytest.approx(p) for s, p in after.items()} == fresh
        assert after != before

    def test_samplers_recompile_on_cpd_replacement(self, sprinkler_network):
        from repro.bayesnet import TabularCPD
        lw = LikelihoodWeighting(sprinkler_network, num_samples=4000, seed=9)
        sprinkler_network.add_cpd(TabularCPD("cloudy", 2, [[0.99], [0.01]]))
        assert lw.posterior("cloudy")["0"] > 0.9
        sampler = ForwardSampler(sprinkler_network, seed=10)
        sprinkler_network.add_cpd(TabularCPD("cloudy", 2, [[0.01], [0.99]]))
        states = sampler.sample_states(2000)
        assert states["cloudy"].mean() > 0.9


class TestVectorizedSamplerDeterminism:
    def test_forward_sampler_is_seed_deterministic(self, sprinkler_network):
        first = ForwardSampler(sprinkler_network, seed=42).sample(200)
        second = ForwardSampler(sprinkler_network, seed=42).sample(200)
        assert first == second

    def test_rejection_sampler_is_seed_deterministic(self, sprinkler_network):
        first = ForwardSampler(sprinkler_network, seed=43).rejection_sample(
            25, {"wet": "1"})
        second = ForwardSampler(sprinkler_network, seed=43).rejection_sample(
            25, {"wet": "1"})
        assert first == second

    def test_likelihood_weighting_is_seed_deterministic(self, sprinkler_network):
        first = LikelihoodWeighting(sprinkler_network, 1000, seed=44).posteriors(
            ["rain", "sprinkler"], {"wet": "1"})
        second = LikelihoodWeighting(sprinkler_network, 1000, seed=44).posteriors(
            ["rain", "sprinkler"], {"wet": "1"})
        assert first == second

    def test_gibbs_is_seed_deterministic(self, sprinkler_network):
        first = GibbsSampling(sprinkler_network, num_samples=120, burn_in=20,
                              seed=45).sample({"wet": "1"})
        second = GibbsSampling(sprinkler_network, num_samples=120, burn_in=20,
                               seed=45).sample({"wet": "1"})
        assert first == second

    def test_vectorized_samplers_track_exact_marginals(self, regulator_built_model):
        # Statistical sanity on the 19-node regulator: the batched samplers
        # must still converge to the exact posterior of the d1 case.
        network = regulator_built_model.network
        evidence = PAPER_DIAGNOSTIC_CASES[0].evidence()
        exact = VariableElimination(network).posteriors(["warnvpst"], evidence)
        approx = LikelihoodWeighting(network, num_samples=4000, seed=46).posteriors(
            ["warnvpst"], evidence)
        for state, probability in exact["warnvpst"].items():
            assert abs(probability - approx["warnvpst"][state]) < 0.1
