"""Integrity-checked columnar-store persistence (format 2).

:meth:`DeviceResultStore.save` writes every plane atomically and records
its byte length and CRC32 in a magic-carrying metadata file; ``load``
verifies and raises a structured
:class:`~repro.exceptions.StoreCorruptionError` naming the defect instead
of serving garbage measurement planes.  Round-trip parity itself is covered
in ``test_columnar_store.py``; this file covers the corruption paths.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ate import DeviceResultStore
from repro.exceptions import StoreCorruptionError
from repro.testing import flip_byte, truncate_tail


@pytest.fixture(scope="module")
def saved(regulator_population, tmp_path_factory):
    store = regulator_population.to_store()
    path = store.save(tmp_path_factory.mktemp("store") / "pop")
    return store, path


def reconstructed(path, **kwargs):
    return DeviceResultStore.load(path, **kwargs)


def corrupt_copy(saved_path, tmp_path):
    """Clone the saved store so each test can damage its own copy."""
    import shutil
    clone = tmp_path / "clone"
    shutil.copytree(saved_path, clone)
    return clone


class TestFormat2:
    def test_round_trip_is_verified_and_exact(self, saved):
        store, path = saved
        meta = json.loads((path / "meta.json").read_text())
        assert meta["format"] == 2
        assert meta["magic"] == "RDRS2"
        assert set(meta["planes"]) >= {"values", "passed", "device_ids"}
        loaded = reconstructed(path, verify=True)
        assert np.array_equal(store.values, loaded.values)
        assert np.array_equal(store.passed, loaded.passed)

    def test_truncated_plane_is_always_detected(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        truncate_tail(clone / "values.npy", 64)
        with pytest.raises(StoreCorruptionError) as excinfo:
            reconstructed(clone)
        assert excinfo.value.kind == "truncated"
        # The size check is one stat per plane: it runs even unverified.
        with pytest.raises(StoreCorruptionError):
            reconstructed(clone, verify=False)

    def test_flipped_bit_fails_the_crc_check(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        plane = clone / "values.npy"
        flip_byte(plane, plane.stat().st_size - 1)
        with pytest.raises(StoreCorruptionError) as excinfo:
            reconstructed(clone)
        assert excinfo.value.kind == "bad-crc"
        assert excinfo.value.path == str(plane)

    def test_missing_plane_is_structural(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        (clone / "passed.npy").unlink()
        with pytest.raises(StoreCorruptionError) as excinfo:
            reconstructed(clone)
        assert excinfo.value.kind == "missing-plane"

    def test_wrong_magic_is_rejected(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        meta = json.loads((clone / "meta.json").read_text())
        meta["magic"] = "BOGUS"
        (clone / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreCorruptionError) as excinfo:
            reconstructed(clone)
        assert excinfo.value.kind == "bad-magic"

    def test_verify_false_skips_only_the_crc_pass(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        plane = clone / "values.npy"
        flip_byte(plane, plane.stat().st_size - 1)
        # Same length, rotten payload: only the CRC pass can see it.
        loaded = reconstructed(clone, verify=False)
        assert loaded.values.shape == saved[0].values.shape


class TestLegacyFormat1:
    def test_loads_unverified(self, saved, tmp_path):
        clone = corrupt_copy(saved[1], tmp_path)
        meta = json.loads((clone / "meta.json").read_text())
        meta["format"] = 1
        del meta["magic"]
        del meta["planes"]
        (clone / "meta.json").write_text(json.dumps(meta))
        loaded = reconstructed(clone)
        assert np.array_equal(saved[0].values, loaded.values)
