"""Tests for forward and rejection sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import VariableElimination
from repro.bayesnet.sampling import ForwardSampler, sample_dataset
from repro.exceptions import InferenceError


class TestForwardSampler:
    def test_sample_contains_all_variables(self, sprinkler_network):
        sample = ForwardSampler(sprinkler_network, seed=1).sample_one()
        assert set(sample) == set(sprinkler_network.nodes)

    def test_sample_frequencies_match_marginals(self, sprinkler_network):
        samples = ForwardSampler(sprinkler_network, seed=2).sample(5000)
        rain_rate = np.mean([s["rain"] == "1" for s in samples])
        exact = VariableElimination(sprinkler_network).posterior("rain")["1"]
        assert abs(rain_rate - exact) < 0.03

    def test_index_mode(self, sprinkler_network):
        sample = ForwardSampler(sprinkler_network, seed=3).sample_one(as_names=False)
        assert all(isinstance(value, int) for value in sample.values())

    def test_negative_count_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            ForwardSampler(sprinkler_network, seed=4).sample(-1)

    def test_rejection_sampling_respects_evidence(self, sprinkler_network):
        samples = ForwardSampler(sprinkler_network, seed=5).rejection_sample(
            20, {"wet": "1"})
        assert len(samples) == 20
        assert all(sample["wet"] == "1" for sample in samples)

    def test_rejection_sampling_impossible_evidence(self, sprinkler_network):
        with pytest.raises(InferenceError):
            ForwardSampler(sprinkler_network, seed=6).rejection_sample(
                5, {"wet": "1", "sprinkler": "0", "rain": "0"},
                max_attempts=200)


class TestSampleDataset:
    def test_missing_fraction_zero(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 50, seed=7)
        assert all(None not in case.values() for case in cases)

    def test_missing_fraction_hides_entries(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 300, seed=8, missing_fraction=0.4)
        missing = sum(value is None for case in cases for value in case.values())
        total = sum(len(case) for case in cases)
        assert 0.3 < missing / total < 0.5

    def test_invalid_fraction_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            sample_dataset(sprinkler_network, 10, missing_fraction=1.5)
