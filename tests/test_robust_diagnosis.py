"""The robust serving layer: fallback chain, provenance, batch isolation."""

from __future__ import annotations

import pytest

from repro.core import (
    Diagnosis,
    DiagnosisEngine,
    DiagnosisFailure,
    DiagnosticCase,
    Dlog2BBN,
    FallbackPolicy,
    RobustDiagnosisEngine,
)
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import (
    DegradedResultWarning,
    DiagnosisError,
    EvidenceError,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.DegradedResultWarning")


@pytest.fixture(scope="module")
def designer_built_model(regulator_circuit):
    """Prior-only build: every CPT entry strictly positive, so the sampling
    fallback engines never hit spurious zero-weight populations."""
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    return builder.build()


@pytest.fixture
def robust_engine(designer_built_model):
    return RobustDiagnosisEngine(
        designer_built_model,
        FallbackPolicy(chain=("ve", "lw"), num_samples=500, seed=3))


class TestFallbackPolicy:
    def test_defaults_validate(self):
        policy = FallbackPolicy()
        assert policy.chain == ("ve", "lw", "gibbs")

    @pytest.mark.parametrize("kwargs", [
        {"chain": ()},
        {"chain": ("ve", "warp")},
        {"chain": ("ve", "ve")},
        {"deadline": 0.0},
        {"attempts_per_engine": 0},
        {"backoff": -1.0},
        {"on_invalid_evidence": "explode"},
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(DiagnosisError):
            FallbackPolicy(**kwargs)


class TestHealthyPath:
    def test_matches_plain_engine(self, designer_built_model, robust_engine):
        plain = DiagnosisEngine(designer_built_model)
        case = PAPER_DIAGNOSTIC_CASES[0]
        robust = robust_engine.diagnose(case)
        reference = plain.diagnose(case)
        assert robust.suspects == reference.suspects
        assert robust.posteriors == reference.posteriors

    def test_healthy_provenance(self, robust_engine):
        diagnosis = robust_engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
        provenance = diagnosis.provenance
        assert provenance.engine == "ve"
        assert not provenance.degraded
        assert [a.outcome for a in provenance.attempts] == ["ok"]
        assert provenance.wall_time > 0
        assert provenance.effective_sample_size is None
        # No fallback engine was ever constructed on the healthy path.
        assert "lw" not in {name for name in robust_engine._fallback_engines
                            if name != "ve"}

    def test_approximate_engines_usable_directly(self, designer_built_model):
        for inference in ("lw", "gibbs"):
            engine = DiagnosisEngine(designer_built_model, inference=inference,
                                     num_samples=300, seed=5)
            diagnosis = engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
            assert diagnosis.suspects
            for distribution in diagnosis.posteriors.values():
                assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)


class TestEvidenceModes:
    def test_strict_mode_rejects_malformed(self, robust_engine):
        case = DiagnosticCase(name="bad", controllable_states={"vp1": "2"},
                              observable_states={"nope": "0"})
        with pytest.raises(EvidenceError):
            robust_engine.diagnose(case)

    def test_sanitize_mode_salvages(self, designer_built_model):
        engine = RobustDiagnosisEngine(
            designer_built_model,
            FallbackPolicy(chain=("ve",), on_invalid_evidence="sanitize"))
        good = PAPER_DIAGNOSTIC_CASES[0]
        case = DiagnosticCase(
            name="noisy",
            controllable_states={**good.controllable_states, "nope": "0"},
            observable_states={**good.observable_states, "sw": "not-a-state"})
        with pytest.warns(DegradedResultWarning):
            diagnosis = engine.diagnose(case)
        assert isinstance(diagnosis, Diagnosis)
        assert "nope" not in diagnosis.evidence
        assert "sw" not in diagnosis.evidence
        kinds = {issue.kind for issue in diagnosis.provenance.evidence_issues}
        assert kinds == {"unknown-variable", "unknown-state"}
        assert diagnosis.provenance.degraded

    def test_sanitize_mode_drops_conflicts(self, designer_built_model):
        engine = RobustDiagnosisEngine(
            designer_built_model,
            FallbackPolicy(chain=("ve",), on_invalid_evidence="sanitize"))
        good = PAPER_DIAGNOSTIC_CASES[0]
        conflicted = next(iter(good.controllable_states))
        case = DiagnosticCase(
            name="conflicted",
            controllable_states=dict(good.controllable_states),
            observable_states={**good.observable_states,
                               conflicted: "__other__"})
        diagnosis = engine.diagnose(case)
        assert conflicted not in diagnosis.evidence
        assert any(issue.kind == "conflicting-entry"
                   for issue in diagnosis.provenance.evidence_issues)


class TestBatchIsolation:
    @pytest.fixture
    def poisoned_batch(self):
        poisoned = DiagnosticCase(name="poisoned",
                                  controllable_states={"vp1": "99"},
                                  observable_states={})
        return [PAPER_DIAGNOSTIC_CASES[0], poisoned, PAPER_DIAGNOSTIC_CASES[1]]

    def test_raise_mode_propagates(self, designer_built_model, poisoned_batch):
        engine = DiagnosisEngine(designer_built_model)
        with pytest.raises(EvidenceError):
            engine.diagnose_batch(poisoned_batch)

    def test_collect_mode_preserves_slots(self, designer_built_model,
                                          poisoned_batch):
        engine = DiagnosisEngine(designer_built_model)
        results = engine.diagnose_batch(poisoned_batch, on_error="collect")
        assert len(results) == 3
        assert isinstance(results[0], Diagnosis) and results[0].ok
        assert isinstance(results[1], DiagnosisFailure) and not results[1].ok
        assert isinstance(results[2], Diagnosis)
        failure = results[1]
        assert failure.case_name == "poisoned"
        assert failure.error_type == "EvidenceError"
        assert failure.evidence == {"vp1": "99"}

    def test_skip_mode_drops_failures(self, designer_built_model,
                                      poisoned_batch):
        engine = DiagnosisEngine(designer_built_model)
        results = engine.diagnose_batch(poisoned_batch, on_error="skip")
        assert [r.case_name for r in results] == [
            PAPER_DIAGNOSTIC_CASES[0].name, PAPER_DIAGNOSTIC_CASES[1].name]

    def test_unknown_mode_rejected(self, designer_built_model):
        engine = DiagnosisEngine(designer_built_model)
        with pytest.raises(DiagnosisError):
            engine.diagnose_batch([], on_error="explode")

    def test_raw_evidence_batch_collect(self, designer_built_model):
        engine = DiagnosisEngine(designer_built_model)
        good = PAPER_DIAGNOSTIC_CASES[0].evidence()
        results = engine.diagnose_batch([good, {"bogus": "1"}],
                                        names=["good", "bad"],
                                        on_error="collect")
        assert isinstance(results[0], Diagnosis)
        assert isinstance(results[1], DiagnosisFailure)
        assert results[1].case_name == "bad"

    def test_robust_batch_collect(self, robust_engine, poisoned_batch):
        results = robust_engine.diagnose_batch(poisoned_batch,
                                               on_error="collect")
        assert isinstance(results[0], Diagnosis)
        assert isinstance(results[1], DiagnosisFailure)
        # Rejected at the evidence boundary: no inference attempt was made.
        assert results[1].error_type == "EvidenceError"
        assert results[1].attempts == ()
        assert isinstance(results[2], Diagnosis)


class TestTopCandidate:
    def test_empty_diagnosis_raises_structured(self):
        diagnosis = Diagnosis(case_name="empty", evidence={}, posteriors={},
                              fail_probabilities={}, suspects=[],
                              ranked_candidates=[])
        with pytest.raises(DiagnosisError, match="empty"):
            diagnosis.top_candidate()

    def test_ranking_fallback_still_works(self):
        diagnosis = Diagnosis(case_name="ranked", evidence={}, posteriors={},
                              fail_probabilities={}, suspects=[],
                              ranked_candidates=[("blockA", 0.4)])
        assert diagnosis.top_candidate() == "blockA"
