"""Crash recovery of the durable state: ``kill -9`` mid-write, restarts.

Each durable artifact — cache segment, registry swap, columnar-store save —
gets a writer subprocess SIGKILLed somewhere inside its write path, then a
clean reopen that must (a) succeed, (b) retain everything committed before
the kill, and (c) detect rather than serve whatever the kill tore.  On top
sit the service-level guarantees: a restarted :class:`DiagnosisService` on
the same ``persist_dir`` serves warm bit-identical posteriors, a published
model hot-swaps running workers, and worker kills cannot poison the shared
cache.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import Diagnosis, FallbackPolicy
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import ModelRegistryError, StoreCorruptionError
from repro.persist import ModelRegistry, PosteriorCache, model_fingerprint
from repro.serving import DiagnosisService, ServiceConfig
from repro.testing import WorkerChaos

SRC = Path(__file__).resolve().parent.parent / "src"


def spawn_writer(code: str, *argv: str) -> subprocess.Popen:
    """Start a line-buffered child that prints one token per commit."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen([sys.executable, "-u", "-c", code, *argv],
                            stdout=subprocess.PIPE, text=True, env=env)


def kill_after_commits(proc: subprocess.Popen, commits: int,
                       timeout: float = 60.0) -> list[str]:
    """SIGKILL ``proc`` once it has reported ``commits`` committed writes."""
    deadline = time.monotonic() + timeout
    seen: list[str] = []
    while len(seen) < commits:
        assert time.monotonic() < deadline, \
            f"writer produced only {len(seen)} commits before the timeout"
        line = proc.stdout.readline()
        assert line != "", f"writer exited early (rc={proc.poll()})"
        seen.append(line.strip())
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    proc.stdout.close()
    return seen


CACHE_WRITER = """
import sys
from repro.persist import PosteriorCache
cache = PosteriorCache(sys.argv[1])
i = 0
while True:
    cache.put(("crash", i), "v" * 8192 + str(i))
    print(i, flush=True)
    i += 1
"""

REGISTRY_WRITER = """
import pickle, sys
from repro.persist import ModelRegistry
with open(sys.argv[2], "rb") as handle:
    model = pickle.load(handle)
registry = ModelRegistry(sys.argv[1])
while True:
    print(registry.publish(model, validate=False), flush=True)
"""

STORE_WRITER = """
import pickle, sys
import numpy as np
with open(sys.argv[2], "rb") as handle:
    store = pickle.load(handle)
while True:
    store.values[...] = store.values + 1.0  # every save differs
    store.save(sys.argv[1])
    print("saved", flush=True)
"""


class TestKillMinus9:
    def test_cache_segment_survives_a_killed_writer(self, tmp_path):
        cache_dir = tmp_path / "cache"
        proc = spawn_writer(CACHE_WRITER, str(cache_dir))
        committed = int(kill_after_commits(proc, 25)[-1])

        with PosteriorCache(cache_dir) as cache:
            # Every committed entry is intact, bit for bit.
            for i in range(committed + 1):
                assert cache.get(("crash", i)) == "v" * 8192 + str(i)
            # Whatever the kill tore was truncated or quarantined — the
            # reopen itself is the assertion that recovery ran clean.
            stats = cache.stats()
            assert stats["entries"] >= committed + 1
            # A fresh write lands on the repaired tail without complaint.
            cache.put(("post-crash",), "ok")
            assert cache.get(("post-crash",)) == "ok"

    def test_registry_swap_survives_a_killed_publisher(
            self, regulator_built_model, tmp_path):
        registry_dir = tmp_path / "models"
        model_file = tmp_path / "model.pkl"
        model_file.write_bytes(pickle.dumps(regulator_built_model))
        proc = spawn_writer(REGISTRY_WRITER, str(registry_dir),
                            str(model_file))
        last_published = int(kill_after_commits(proc, 5)[-1])

        with ModelRegistry(registry_dir) as registry:
            version = registry.current_version()
            # The stamp flips last: it can trail the kill by at most the
            # in-flight publish, never point at a half-written artifact.
            assert version >= last_published
            loaded_version, loaded = registry.load()  # verifies magic + CRC
            assert loaded_version == version
            assert model_fingerprint(loaded.network) \
                == model_fingerprint(regulator_built_model.network)
            # And the registry still accepts the next publish.
            assert registry.publish(regulator_built_model,
                                    validate=False) == version + 1

    def test_store_save_survives_a_killed_saver(self, regulator_population,
                                                tmp_path):
        from repro.ate import DeviceResultStore
        store_dir = tmp_path / "store"
        store_file = tmp_path / "population.pkl"
        store_file.write_bytes(pickle.dumps(regulator_population.to_store()))
        proc = spawn_writer(STORE_WRITER, str(store_dir), str(store_file))
        kill_after_commits(proc, 3)

        # The kill may have landed mid-save: the reopen must yield either a
        # complete consistent store or a *structured* corruption error —
        # silently mixed-generation planes are the failure mode.
        try:
            loaded = DeviceResultStore.load(store_dir, verify=True)
        except StoreCorruptionError:
            pass
        else:
            assert loaded.values.shape \
                == regulator_population.to_store().values.shape


class TestServiceRestart:
    def test_restart_serves_warm_bit_identical_posteriors(
            self, regulator_built_model, tmp_path):
        cases = list(PAPER_DIAGNOSTIC_CASES)
        config = ServiceConfig(num_workers=2, chunk_size=2)
        with DiagnosisService(regulator_built_model, FallbackPolicy(),
                              config, persist_dir=tmp_path) as service:
            cold = service.diagnose_batch(cases, timeout=120)

        with DiagnosisService(regulator_built_model, FallbackPolicy(),
                              config, persist_dir=tmp_path) as service:
            warm = service.diagnose_batch(cases, timeout=120)
            stats = service.stats()

        assert all(isinstance(r, Diagnosis) for r in cold + warm)
        for before, after in zip(cold, warm):
            assert after.posteriors == before.posteriors  # bit-identical
            assert after.provenance.engine == "cache"
        # ISSUE acceptance: >= 90% of the restarted service's lookups hit.
        lookups = stats.cache_hits + stats.cache_misses
        assert lookups >= len(cases)
        assert stats.cache_hits / lookups >= 0.9

    def test_killed_workers_cannot_poison_the_shared_cache(
            self, regulator_built_model, tmp_path):
        cases = list(PAPER_DIAGNOSTIC_CASES) * 6
        config = ServiceConfig(num_workers=2, chunk_size=2,
                               chaos=WorkerChaos(kill_on_chunk=2))
        with DiagnosisService(regulator_built_model, FallbackPolicy(),
                              config, persist_dir=tmp_path) as service:
            results = service.diagnose_batch(cases, timeout=180)
            stats = service.stats()
        assert all(isinstance(r, Diagnosis) for r in results)
        assert stats.respawns >= 1  # the kills actually happened

        # Workers died holding cache handles (and possibly the write
        # lock); the shared state must reopen clean and stay correct.
        with PosteriorCache(tmp_path / "cache") as cache:
            for key in cache.keys():
                if key[0] == "posterior":
                    assert cache.get(key) is not None
            assert cache.stats()["entries"] > 0

    def test_publish_model_hot_swaps_running_workers(
            self, regulator_circuit, regulator_built_model, tmp_path):
        from repro.core import Dlog2BBN
        # Designer-prior model first; the simulation-prior model (different
        # CPTs, different fingerprint) is published mid-flight.
        designer = Dlog2BBN(regulator_circuit.model,
                            regulator_circuit.healthy_states).build()
        assert model_fingerprint(designer.network) \
            != model_fingerprint(regulator_built_model.network)
        cases = list(PAPER_DIAGNOSTIC_CASES)
        config = ServiceConfig(num_workers=1, chunk_size=2)
        with DiagnosisService(designer, FallbackPolicy(), config,
                              persist_dir=tmp_path,
                              reload_poll_interval=0.0) as service:
            before = service.diagnose_batch(cases, timeout=120)
            version = service.publish_model(regulator_built_model)
            assert version == 1
            after = service.diagnose_batch(cases, timeout=120)
            stats = service.stats()

        assert stats.model_reloads >= 1
        # The swap is observable: posteriors now come from the new model.
        changed = any(b.posteriors != a.posteriors
                      for b, a in zip(before, after))
        assert changed

    def test_fresh_service_prefers_the_registry_model(
            self, regulator_circuit, regulator_built_model, tmp_path):
        from repro.core import Dlog2BBN, RobustDiagnosisEngine
        designer = Dlog2BBN(regulator_circuit.model,
                            regulator_circuit.healthy_states).build()
        with ModelRegistry(tmp_path / "models") as registry:
            registry.publish(regulator_built_model, validate=False)
        case = PAPER_DIAGNOSTIC_CASES[1]
        reference = RobustDiagnosisEngine(regulator_built_model,
                                          FallbackPolicy()).diagnose(case)
        # The payload model is the designer prior, but the registry holds
        # the simulation-prior model: the registry must win.
        config = ServiceConfig(num_workers=1, chunk_size=2)
        with DiagnosisService(designer, FallbackPolicy(), config,
                              persist_dir=tmp_path) as service:
            [served] = service.diagnose_batch([case], timeout=120)
        assert served.posteriors == reference.posteriors
