"""Tests for the ATE substrate: specs, programs, tester, datalogs and populations."""

from __future__ import annotations

import pytest

from repro.ate import (
    ATETester,
    DatalogRecord,
    DeviceDatalog,
    PopulationGenerator,
    SpecificationTest,
    TestLimit,
    TestProgram,
    parse_datalog,
    write_datalog,
)
from repro.ate.programs import REGULATOR_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, BlockFault, FaultMode
from repro.exceptions import ATEError, DatalogError


class TestSpecAndProgram:
    def test_limit_validation(self):
        with pytest.raises(ATEError):
            TestLimit(5.0, 4.0)

    def test_limit_passes_and_margin(self):
        limit = TestLimit(4.75, 5.25)
        assert limit.passes(5.0)
        assert not limit.passes(5.5)
        assert limit.margin(5.5) == pytest.approx(-0.25)
        assert limit.margin(4.8) == pytest.approx(0.05)

    def test_specification_test_validation(self):
        with pytest.raises(ATEError):
            SpecificationTest(-1, "t", "reg1", {}, TestLimit(0, 1))
        with pytest.raises(ATEError):
            SpecificationTest(1, "", "reg1", {}, TestLimit(0, 1))

    def test_program_rejects_duplicate_numbers(self):
        program = TestProgram("p")
        program.add_test(SpecificationTest(1, "a", "reg1", {}, TestLimit(0, 1)))
        with pytest.raises(ATEError):
            program.add_test(SpecificationTest(1, "b", "reg2", {}, TestLimit(0, 1)))

    def test_program_lookups(self, regulator_program):
        assert len(regulator_program) == 25
        test = regulator_program.test_by_name("reg1_nominal")
        assert regulator_program.test_by_number(test.number) is test
        assert "reg1" in regulator_program.measured_blocks()
        assert "vp1" in regulator_program.controlled_blocks()
        assert len(regulator_program.tests_measuring("reg1")) == 5

    def test_unknown_lookups_raise(self, regulator_program):
        with pytest.raises(ATEError):
            regulator_program.test_by_number(99999)
        with pytest.raises(ATEError):
            regulator_program.test_by_name("nope")

    def test_build_functional_program_validates_variables(self, regulator_circuit):
        from repro.ate.programs import ConditionSet
        bad = ConditionSet("x", {"not_a_block": 1.0}, {"reg1": "1"})
        with pytest.raises(ATEError):
            build_functional_program("p", regulator_circuit.model, [bad])

    def test_limits_come_from_expected_state(self, regulator_circuit,
                                              regulator_program):
        test = regulator_program.test_by_name("reg2_nominal")
        state = regulator_circuit.model.state_table("reg2").state("1")
        assert test.limit.lower == pytest.approx(state.lower)
        assert test.limit.upper == pytest.approx(state.upper)


class TestTester:
    def test_golden_device_passes(self, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(
            regulator_circuit.netlist,
            process_variation=regulator_circuit.process_variation, seed=21)
        tester = ATETester(simulator, regulator_program)
        result = tester.test_device("GOLD")
        assert not result.failed

    def test_faulty_device_fails(self, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(
            regulator_circuit.netlist,
            process_variation=regulator_circuit.process_variation, seed=22)
        tester = ATETester(simulator, regulator_program)
        fault = BlockFault("hcbg", FaultMode.DEAD)
        result = tester.test_device("BAD", faults={"hcbg": fault})
        assert result.failed
        assert any(m.block == "reg1" for m in result.failing_measurements())

    def test_stop_on_fail_truncates(self, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(regulator_circuit.netlist, seed=23)
        tester = ATETester(simulator, regulator_program, stop_on_fail=True)
        result = tester.test_device("BAD", faults={
            "lcbg": BlockFault("lcbg", FaultMode.DEAD)})
        assert result.failed
        assert len(result.measurements) < len(regulator_program)

    def test_unknown_measured_block_rejected(self, regulator_circuit):
        simulator = BehavioralSimulator(regulator_circuit.netlist, seed=24)
        program = TestProgram("bad")
        program.add_test(SpecificationTest(1, "x", "not_a_block", {}, TestLimit(0, 1)))
        with pytest.raises(ATEError):
            ATETester(simulator, program)


class TestDatalog:
    def test_record_round_trip(self):
        record = DatalogRecord("DEV-1", 100, "reg1_nominal", "reg1", 8.5,
                               8.0, 9.0, True, {"vp1": 13.5, "vp2": 8.0})
        parsed = DatalogRecord.from_line(record.to_line())
        assert parsed.device_id == "DEV-1"
        assert parsed.value == pytest.approx(8.5)
        assert parsed.conditions["vp1"] == pytest.approx(13.5)
        assert parsed.passed

    def test_malformed_line_raises(self):
        with pytest.raises(DatalogError):
            DatalogRecord.from_line("DEVICE=DEV-1|TEST=abc")

    def test_device_datalog_rejects_foreign_records(self):
        datalog = DeviceDatalog("DEV-1")
        foreign = DatalogRecord("DEV-2", 1, "t", "reg1", 1.0, 0.0, 2.0, True, {})
        with pytest.raises(DatalogError):
            datalog.add(foreign)

    def test_file_round_trip(self, tmp_path, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(regulator_circuit.netlist, seed=25)
        tester = ATETester(simulator, regulator_program)
        result = tester.test_device("DEV-7", faults={
            "reg1": BlockFault("reg1", FaultMode.DEAD)})
        path = write_datalog([result.to_datalog()], tmp_path / "log.txt")
        parsed = parse_datalog(path)
        assert len(parsed) == 1
        assert parsed[0].device_id == "DEV-7"
        assert len(parsed[0]) == len(regulator_program)
        assert parsed[0].failed
        assert "reg1:dead" in parsed[0].metadata["injected_faults"]

    def test_parse_missing_file(self, tmp_path):
        with pytest.raises(DatalogError):
            parse_datalog(tmp_path / "nope.txt")


class TestPopulation:
    def test_population_counts_and_ground_truth(self, regulator_population):
        assert len(regulator_population) == 25
        assert len(regulator_population.ground_truth) == 20
        assert len(regulator_population.passing_results) >= 1

    def test_failed_devices_fail_a_test(self, regulator_population):
        for device_id, fault in regulator_population.ground_truth.items():
            result = regulator_population.result_for(device_id)
            assert fault.block in result.faults

    def test_result_for_unknown_device(self, regulator_population):
        with pytest.raises(ATEError):
            regulator_population.result_for("missing")

    def test_generate_for_fault(self, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(
            regulator_circuit.netlist,
            process_variation=regulator_circuit.process_variation, seed=26)
        generator = PopulationGenerator(simulator, regulator_program,
                                        regulator_circuit.fault_universe, seed=27)
        fault = BlockFault("enb13", FaultMode.DEAD)
        population = generator.generate_for_fault(fault, 4)
        assert len(population) == 4
        assert all(f.block == "enb13"
                   for f in population.ground_truth.values())

    def test_negative_counts_rejected(self, regulator_circuit, regulator_program):
        simulator = BehavioralSimulator(regulator_circuit.netlist, seed=28)
        generator = PopulationGenerator(simulator, regulator_program,
                                        regulator_circuit.fault_universe, seed=29)
        with pytest.raises(ATEError):
            generator.generate(failed_count=-1)
