"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ate import PopulationGenerator
from repro.ate.programs import (
    HYPOTHETICAL_CONDITION_SETS,
    REGULATOR_CONDITION_SETS,
    build_functional_program,
)
from repro.bayesnet import BayesianNetwork, TabularCPD
from repro.circuits import BehavioralSimulator, build_hypothetical_circuit, build_voltage_regulator
from repro.core import DiagnosisEngine, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder


@pytest.fixture
def sprinkler_network() -> BayesianNetwork:
    """The classic four-node rain/sprinkler/wet-grass network."""
    network = BayesianNetwork([("cloudy", "sprinkler"), ("cloudy", "rain"),
                               ("sprinkler", "wet"), ("rain", "wet")])
    network.add_cpds(
        TabularCPD("cloudy", 2, [[0.5], [0.5]]),
        TabularCPD("sprinkler", 2, [[0.5, 0.9], [0.5, 0.1]], ["cloudy"], [2]),
        TabularCPD("rain", 2, [[0.8, 0.2], [0.2, 0.8]], ["cloudy"], [2]),
        TabularCPD("wet", 2,
                   [[1.0, 0.1, 0.1, 0.01], [0.0, 0.9, 0.9, 0.99]],
                   ["sprinkler", "rain"], [2, 2]),
    )
    return network


@pytest.fixture(scope="session")
def hypothetical_circuit():
    """The Fig. 1 four-block hypothetical circuit bundle."""
    return build_hypothetical_circuit()


@pytest.fixture(scope="session")
def regulator_circuit():
    """The industrial voltage-regulator circuit bundle."""
    return build_voltage_regulator()


@pytest.fixture(scope="session")
def regulator_program(regulator_circuit):
    """The no-stop-on-fail functional test program of the regulator."""
    return build_functional_program("vr_functional", regulator_circuit.model,
                                    REGULATOR_CONDITION_SETS)


@pytest.fixture(scope="session")
def hypothetical_program(hypothetical_circuit):
    """The functional test program of the hypothetical circuit."""
    return build_functional_program("hypo_functional", hypothetical_circuit.model,
                                    HYPOTHETICAL_CONDITION_SETS)


@pytest.fixture(scope="session")
def regulator_prior(regulator_circuit):
    """Simulation-derived designer-prior network for the regulator."""
    builder = SimulationPriorBuilder(
        regulator_circuit.netlist, regulator_circuit.model,
        [cs.conditions for cs in REGULATOR_CONDITION_SETS],
        fault_probability=regulator_circuit.designer_fault_probabilities,
        process_variation=regulator_circuit.process_variation,
        samples=2000, seed=7)
    return builder.build()


@pytest.fixture(scope="session")
def regulator_built_model(regulator_circuit, regulator_prior):
    """A built (prior-only) BBN circuit model of the regulator."""
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    return builder.build(prior_network=regulator_prior)


@pytest.fixture(scope="session")
def regulator_engine(regulator_built_model):
    """A diagnosis engine bound to the prior-only regulator model."""
    return DiagnosisEngine(regulator_built_model)


@pytest.fixture(scope="session")
def regulator_population(regulator_circuit, regulator_program):
    """A small failed-device population of the regulator (20 devices)."""
    simulator = BehavioralSimulator(
        regulator_circuit.netlist,
        process_variation=regulator_circuit.process_variation, seed=31)
    generator = PopulationGenerator(
        simulator, regulator_program, regulator_circuit.fault_universe,
        regulator_circuit.block_weights, seed=32)
    return generator.generate(failed_count=20, passing_count=5)
