"""Tests for the shipped circuits: the hypothetical circuit and the voltage regulator."""

from __future__ import annotations

import pytest

from repro.circuits import BehavioralSimulator
from repro.circuits.voltage_regulator import (
    REGULATOR_HEALTHY_STATES,
    VOLTAGE_REGULATOR_BLOCKS,
    VOLTAGE_REGULATOR_DEPENDENCIES,
)
from repro.core.blocks import BlockType


class TestHypotheticalCircuit:
    def test_model_matches_table1(self, hypothetical_circuit):
        model = hypothetical_circuit.model
        assert model.variable("block1").block_type is BlockType.CONTROL
        assert model.variable("block2").block_type is BlockType.CONTROL_OBSERVE
        assert model.variable("block3").block_type is BlockType.INTERNAL
        assert model.variable("block4").block_type is BlockType.OBSERVE

    def test_dependencies_match_fig1(self, hypothetical_circuit):
        edges = set(hypothetical_circuit.model.dependencies)
        assert edges == {("block1", "block2"), ("block1", "block3"),
                         ("block3", "block4")}

    def test_block1_has_three_states(self, hypothetical_circuit):
        assert hypothetical_circuit.model.state_table("block1").cardinality == 3

    def test_nominal_simulation_is_operational(self, hypothetical_circuit):
        simulator = BehavioralSimulator(hypothetical_circuit.netlist,
                                        measurement_noise=0.0, seed=1)
        result = simulator.run(hypothetical_circuit.nominal_conditions, noisy=False)
        discretizer = hypothetical_circuit.model.discretizer()
        for block in ("block2", "block3", "block4"):
            healthy = hypothetical_circuit.healthy_states[block]
            assert discretizer.classify(block, result.voltage(block)) == healthy


class TestVoltageRegulator:
    def test_has_19_model_variables(self, regulator_circuit):
        assert len(regulator_circuit.model.variable_names) == 19
        assert len(VOLTAGE_REGULATOR_BLOCKS) == 19

    def test_functional_types_match_table5(self, regulator_circuit):
        model = regulator_circuit.model
        assert set(model.controllable_variables) == {
            "vp1", "vp1x", "vp2", "enb13_pin", "enb4_pin", "enbsw_pin"}
        assert set(model.observable_variables) == {
            "sw", "reg1", "reg2", "reg3", "reg4"}
        assert len(model.internal_variables) == 8

    def test_warnvpst_internal_parents_match_case_d1(self, regulator_circuit):
        parents = set(regulator_circuit.model.parents_of("warnvpst"))
        assert {"lcbg", "hcbg"} <= parents

    def test_dependency_list_is_acyclic_and_complete(self, regulator_circuit):
        graph = regulator_circuit.model.graph
        order = graph.topological_sort()
        assert len(order) == 19
        assert len(VOLTAGE_REGULATOR_DEPENDENCIES) == len(graph.edges)

    def test_state_tables_match_table7_limits(self, regulator_circuit):
        table = regulator_circuit.model.state_table("reg2")
        in_regulation = table.state("1")
        assert in_regulation.lower == pytest.approx(4.75)
        assert in_regulation.upper == pytest.approx(5.25)
        lcbg_nominal = regulator_circuit.model.state_table("lcbg").state("1")
        assert lcbg_nominal.lower == pytest.approx(1.1)
        assert lcbg_nominal.upper == pytest.approx(1.3)

    def test_healthy_states_are_valid_labels(self, regulator_circuit):
        for variable, state in REGULATOR_HEALTHY_STATES.items():
            labels = regulator_circuit.model.state_table(variable).labels
            assert state in labels

    def test_nominal_simulation_all_blocks_healthy(self, regulator_circuit):
        simulator = BehavioralSimulator(regulator_circuit.netlist,
                                        measurement_noise=0.0, seed=2)
        result = simulator.run(regulator_circuit.nominal_conditions, noisy=False)
        discretizer = regulator_circuit.model.discretizer()
        for block in ("lcbg", "hcbg", "warnvpst", "enb13", "enb4", "enbsw",
                      "reg1", "reg2", "reg3", "reg4", "sw"):
            healthy = regulator_circuit.healthy_states[block]
            assert discretizer.classify(block, result.voltage(block)) == healthy, block

    def test_fault_universe_excludes_controllables(self, regulator_circuit):
        for block in regulator_circuit.fault_universe.faultable_blocks:
            assert not regulator_circuit.model.variable(block).is_controllable

    def test_netlist_dependencies_match_model(self, regulator_circuit):
        netlist_edges = set(regulator_circuit.netlist.dependency_graph().edges)
        model_edges = set(regulator_circuit.model.dependencies)
        assert netlist_edges == model_edges
