"""Tests for block typing, state tables, discretisation and the circuit-model description."""

from __future__ import annotations

import pytest

from repro.core import (
    BlockType,
    CircuitModelDescription,
    Discretizer,
    ModelVariable,
    StateDefinition,
    StateTable,
)
from repro.exceptions import ModelBuildError, StateDefinitionError


class TestBlockType:
    def test_roles(self):
        assert BlockType.CONTROL.is_controllable
        assert not BlockType.CONTROL.is_observable
        assert BlockType.CONTROL_OBSERVE.is_controllable
        assert BlockType.CONTROL_OBSERVE.is_observable
        assert BlockType.OBSERVE.is_observable
        assert BlockType.INTERNAL.is_internal

    def test_model_variable_validation(self):
        with pytest.raises(ModelBuildError):
            ModelVariable("", BlockType.CONTROL)
        with pytest.raises(ModelBuildError):
            ModelVariable("x", "CONTROL")  # type: ignore[arg-type]


class TestStateTable:
    def make_table(self) -> StateTable:
        return StateTable("reg", [
            StateDefinition("0", 0.0, 4.75, "out of regulation"),
            StateDefinition("1", 4.75, 5.25, "in regulation"),
            StateDefinition("2", 5.25, 500.0, "out of regulation"),
        ])

    def test_requires_two_states(self):
        with pytest.raises(StateDefinitionError):
            StateTable("x", [StateDefinition("0", 0, 1)])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(StateDefinitionError):
            StateTable("x", [StateDefinition("0", 0, 1), StateDefinition("0", 1, 2)])

    def test_classify_inside_windows(self):
        table = self.make_table()
        assert table.classify(5.0) == "1"
        assert table.classify(2.0) == "0"
        assert table.classify(9.0) == "2"

    def test_priority_resolves_overlaps(self):
        # The paper's enable pins define a narrow bad window inside a wide
        # good window; the first matching state wins.
        table = StateTable("pin", [
            StateDefinition("0", 0.9, 1.9, "bad"),
            StateDefinition("1", 0.4, 2.4, "good"),
        ])
        assert table.classify(1.4) == "0"
        assert table.classify(2.2) == "1"

    def test_out_of_range_uses_nearest(self):
        table = self.make_table()
        assert table.classify(-1.0) == "0"
        assert table.classify(1000.0) == "2"

    def test_strict_mode_raises(self):
        table = self.make_table()
        with pytest.raises(StateDefinitionError):
            table.classify(-1.0, strict=True)

    def test_negative_voltage_window_normalised(self):
        state = StateDefinition("3", -1.0e-7, -1.0e-3, "negative voltage")
        assert state.contains(-1e-5)
        assert not state.contains(0.5)

    def test_representative_value(self):
        assert self.make_table().representative_value("1") == pytest.approx(5.0)

    def test_index_and_rows(self):
        table = self.make_table()
        assert table.index_of("2") == 2
        assert len(table.rows()) == 3
        with pytest.raises(StateDefinitionError):
            table.state("9")


class TestDiscretizer:
    def test_classify_all(self, regulator_circuit):
        discretizer = regulator_circuit.model.discretizer()
        states = discretizer.classify_all({"reg2": 5.0, "lcbg": 1.2, "vp1": 13.5})
        assert states == {"reg2": "1", "lcbg": "1", "vp1": "2"}

    def test_duplicate_tables_rejected(self):
        table = StateTable("a", [StateDefinition("0", 0, 1), StateDefinition("1", 1, 2)])
        with pytest.raises(StateDefinitionError):
            Discretizer([table, table])

    def test_unknown_variable_raises(self, regulator_circuit):
        with pytest.raises(StateDefinitionError):
            regulator_circuit.model.discretizer().classify("nope", 1.0)

    def test_cardinalities_and_state_names(self, regulator_circuit):
        discretizer = regulator_circuit.model.discretizer()
        assert discretizer.cardinalities()["vp1x"] == 5
        assert discretizer.state_names()["hcbg"] == ["0", "1"]


class TestCircuitModelDescription:
    def test_table_rows_shapes(self, hypothetical_circuit):
        model = hypothetical_circuit.model
        assert len(model.functional_type_rows()) == 4
        assert len(model.state_definition_rows()) == 3 + 2 + 2 + 2

    def test_missing_state_table_rejected(self):
        with pytest.raises(ModelBuildError):
            CircuitModelDescription(
                "x",
                [ModelVariable("a", BlockType.CONTROL)],
                [],
                [])

    def test_unknown_dependency_rejected(self):
        variables = [ModelVariable("a", BlockType.CONTROL)]
        tables = [StateTable("a", [StateDefinition("0", 0, 1),
                                   StateDefinition("1", 1, 2)])]
        with pytest.raises(ModelBuildError):
            CircuitModelDescription("x", variables, tables, [("a", "ghost")])

    def test_validate_against(self, regulator_circuit):
        regulator_circuit.model.validate_against({"reg1": "0", "vp1": "2"})
        with pytest.raises(ModelBuildError):
            regulator_circuit.model.validate_against({"reg1": "9"})

    def test_parents_children(self, regulator_circuit):
        assert "warnvpst" in regulator_circuit.model.parents_of("enb13")
        assert "reg1" in regulator_circuit.model.children_of("enb13")
