"""Exact-inference tests: variable elimination and junction tree vs brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, JunctionTree, TabularCPD, VariableElimination
from repro.bayesnet.inference import min_degree_order, min_fill_order, min_weight_order
from repro.exceptions import InferenceError


def brute_force_posterior(network, variable, evidence):
    joint = network.joint_distribution().reduce(evidence).normalize()
    other = [v for v in joint.variables if v != variable]
    return joint.marginalize(other).to_distribution()


EVIDENCE_SETS = [
    {},
    {"wet": "1"},
    {"wet": "1", "sprinkler": "0"},
    {"cloudy": "1", "wet": "0"},
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("evidence", EVIDENCE_SETS)
    def test_variable_elimination_matches(self, sprinkler_network, evidence):
        engine = VariableElimination(sprinkler_network)
        for variable in sprinkler_network.nodes:
            if variable in evidence:
                continue
            expected = brute_force_posterior(sprinkler_network, variable, evidence)
            actual = engine.posterior(variable, evidence)
            for state in expected:
                assert np.isclose(actual[state], expected[state], atol=1e-9)

    @pytest.mark.parametrize("evidence", EVIDENCE_SETS)
    def test_junction_tree_matches(self, sprinkler_network, evidence):
        engine = JunctionTree(sprinkler_network)
        for variable in sprinkler_network.nodes:
            if variable in evidence:
                continue
            expected = brute_force_posterior(sprinkler_network, variable, evidence)
            actual = engine.posterior(variable, evidence)
            for state in expected:
                assert np.isclose(actual[state], expected[state], atol=1e-9)

    def test_engines_agree_on_regulator(self, regulator_built_model):
        network = regulator_built_model.network
        evidence = {"vp1": "2", "vp2": "2", "reg1": "0", "reg2": "1"}
        ve = VariableElimination(network)
        jt = JunctionTree(network)
        for variable in ("hcbg", "warnvpst", "enb13", "lcbg"):
            left = ve.posterior(variable, evidence)
            right = jt.posterior(variable, evidence)
            for state in left:
                assert np.isclose(left[state], right[state], atol=1e-8)

    def test_probability_of_evidence_agrees(self, sprinkler_network):
        evidence = {"wet": "1", "rain": "0"}
        ve = VariableElimination(sprinkler_network)
        jt = JunctionTree(sprinkler_network)
        joint = sprinkler_network.joint_distribution().reduce(evidence)
        assert np.isclose(ve.probability_of_evidence(evidence), joint.values.sum())
        assert np.isclose(jt.probability_of_evidence(evidence), joint.values.sum())


class TestQueryInterface:
    def test_joint_query(self, sprinkler_network):
        joint = VariableElimination(sprinkler_network).query(["sprinkler", "rain"],
                                                             {"wet": "1"})
        assert np.isclose(joint.values.sum(), 1.0)
        assert set(joint.variables) == {"sprinkler", "rain"}

    def test_map_query(self, sprinkler_network):
        assignment = VariableElimination(sprinkler_network).map_query(
            ["rain"], {"wet": "1", "sprinkler": "0"})
        assert assignment == {"rain": "1"}

    def test_unknown_variable_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            VariableElimination(sprinkler_network).posterior("nope")

    def test_unknown_evidence_state_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            VariableElimination(sprinkler_network).posterior("rain", {"wet": "soggy"})

    def test_query_and_evidence_overlap_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            VariableElimination(sprinkler_network).query(["wet"], {"wet": "1"})

    def test_empty_query_raises(self, sprinkler_network):
        with pytest.raises(InferenceError):
            VariableElimination(sprinkler_network).query([])

    def test_impossible_evidence_raises(self):
        network = BayesianNetwork([("a", "b")])
        network.add_cpds(
            TabularCPD("a", 2, [[1.0], [0.0]]),
            TabularCPD("b", 2, [[1.0, 0.5], [0.0, 0.5]], ["a"], [2]))
        with pytest.raises(InferenceError):
            VariableElimination(network).posterior("a", {"b": "1"})


class TestEliminationOrders:
    def test_orders_cover_requested_nodes(self, sprinkler_network):
        for heuristic in (min_fill_order, min_degree_order, min_weight_order):
            order = heuristic(sprinkler_network, ["cloudy", "rain"])
            assert sorted(order) == ["cloudy", "rain"]

    def test_full_order_covers_all_nodes(self, sprinkler_network):
        order = min_fill_order(sprinkler_network)
        assert sorted(order) == sorted(sprinkler_network.nodes)


class TestJunctionTreeStructure:
    def test_cliques_cover_families(self, sprinkler_network):
        tree = JunctionTree(sprinkler_network)
        for cpd in sprinkler_network.cpds:
            family = set(cpd.parents) | {cpd.variable}
            assert any(family <= clique for clique in tree.cliques)

    def test_tree_width_reported(self, regulator_built_model):
        tree = JunctionTree(regulator_built_model.network)
        assert tree.tree_width >= 1
