"""Tests for the directed-graph primitives."""

from __future__ import annotations

import pytest

from repro.bayesnet.graph import DirectedGraph
from repro.exceptions import GraphError


def make_chain() -> DirectedGraph:
    return DirectedGraph([("a", "b"), ("b", "c"), ("c", "d")])


class TestConstruction:
    def test_nodes_and_edges(self):
        graph = make_chain()
        assert graph.nodes == ["a", "b", "c", "d"]
        assert ("a", "b") in graph.edges
        assert len(graph.edges) == 3

    def test_isolated_nodes(self):
        graph = DirectedGraph(nodes=["x", "y"])
        assert graph.nodes == ["x", "y"]
        assert graph.edges == []

    def test_duplicate_edge_is_ignored(self):
        graph = DirectedGraph([("a", "b"), ("a", "b")])
        assert graph.edges == [("a", "b")]

    def test_self_loop_rejected(self):
        graph = DirectedGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a")

    def test_cycle_rejected(self):
        graph = make_chain()
        with pytest.raises(GraphError):
            graph.add_edge("d", "a")

    def test_contains_and_len(self):
        graph = make_chain()
        assert "a" in graph
        assert "z" not in graph
        assert len(graph) == 4

    def test_remove_edge(self):
        graph = make_chain()
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.parents("b") == []


class TestQueries:
    def test_parents_children(self):
        graph = DirectedGraph([("a", "c"), ("b", "c"), ("c", "d")])
        assert graph.parents("c") == ["a", "b"]
        assert graph.children("c") == ["d"]
        assert graph.in_degree("c") == 2
        assert graph.out_degree("c") == 1

    def test_roots_and_leaves(self):
        graph = DirectedGraph([("a", "c"), ("b", "c"), ("c", "d")])
        assert set(graph.roots()) == {"a", "b"}
        assert graph.leaves() == ["d"]

    def test_unknown_node_raises(self):
        graph = make_chain()
        with pytest.raises(GraphError):
            graph.parents("zzz")

    def test_ancestors_descendants(self):
        graph = DirectedGraph([("a", "b"), ("b", "c"), ("x", "c")])
        assert graph.ancestors("c") == {"a", "b", "x"}
        assert graph.descendants("a") == {"b", "c"}
        assert graph.ancestral_set(["b"]) == {"a", "b"}

    def test_topological_sort_parents_first(self):
        graph = DirectedGraph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        order = graph.topological_sort()
        for parent, child in graph.edges:
            assert order.index(parent) < order.index(child)

    def test_copy_is_independent(self):
        graph = make_chain()
        clone = graph.copy()
        clone.add_edge("a", "d")
        assert not graph.has_edge("a", "d")

    def test_subgraph(self):
        graph = make_chain()
        sub = graph.subgraph(["a", "b", "d"])
        assert set(sub.nodes) == {"a", "b", "d"}
        assert sub.edges == [("a", "b")]


class TestMoralGraphAndDSeparation:
    def test_moral_graph_marries_parents(self):
        graph = DirectedGraph([("a", "c"), ("b", "c")])
        moral = graph.moral_graph()
        assert "b" in moral["a"]
        assert "a" in moral["b"]
        assert "c" in moral["a"]

    def test_chain_d_separation(self):
        graph = DirectedGraph([("a", "b"), ("b", "c")])
        assert not graph.is_d_separated("a", "c")
        assert graph.is_d_separated("a", "c", observed=["b"])

    def test_common_cause_d_separation(self):
        graph = DirectedGraph([("b", "a"), ("b", "c")])
        assert not graph.is_d_separated("a", "c")
        assert graph.is_d_separated("a", "c", observed=["b"])

    def test_collider_d_separation(self):
        graph = DirectedGraph([("a", "c"), ("b", "c"), ("c", "d")])
        # Unobserved collider blocks the path.
        assert graph.is_d_separated("a", "b")
        # Observing the collider (or its descendant) opens the path.
        assert not graph.is_d_separated("a", "b", observed=["c"])
        assert not graph.is_d_separated("a", "b", observed=["d"])
