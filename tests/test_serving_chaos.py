"""Soak-style chaos suite for the diagnosis service.

Process-level fault injection (:class:`repro.testing.chaos.WorkerChaos`,
:func:`repro.testing.chaos.poison_case`) against the real worker pool:
workers are SIGKILLed mid-batch, hung, slowed and fed poison cases, and the
service must keep its contract — every submitted slot completes with a
``Diagnosis`` or a structured ``DiagnosisFailure`` in submission order, no
slot is lost or duplicated, respawns stay within budget, and shutdown
drains cleanly.  (In CI this file runs under ``pytest-timeout`` so an
escaped hang fails the job instead of wedging it.)
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.core import Dlog2BBN, FallbackPolicy
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import ServingError
from repro.serving import DiagnosisService, ServiceConfig
from repro.testing import WorkerChaos, is_poison_case, poison_case


@pytest.fixture(scope="module")
def built_model(regulator_circuit):
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    return builder.build()


def make_batch(size: int, poison_slots: dict[int, str] | None = None):
    """``size`` uniquely named cases cycled from the paper case studies,
    with crash-poison cases planted at the given slots."""
    poison_slots = poison_slots or {}
    batch = []
    for index in range(size):
        if index in poison_slots:
            batch.append(poison_case(poison_slots[index]))
        else:
            template = PAPER_DIAGNOSTIC_CASES[index % len(PAPER_DIAGNOSTIC_CASES)]
            batch.append(dataclasses.replace(template,
                                             name=f"soak-{index:04d}"))
    return batch


def service(built_model, **overrides) -> DiagnosisService:
    defaults = dict(num_workers=2, chunk_size=8)
    defaults.update(overrides)
    return DiagnosisService(built_model, FallbackPolicy(),
                            ServiceConfig(**defaults))


class TestCrashIsolation:
    def test_killed_worker_loses_only_its_chunk(self, built_model):
        batch = make_batch(48)
        chaos = WorkerChaos(kill_on_chunk=2)  # first generation only
        with service(built_model, chunk_size=4, chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert [r.case_name for r in results] == [c.name for c in batch]
        assert all(r.ok for r in results)
        assert stats.respawns >= 1
        assert stats.chunk_retries >= 1

    def test_poison_case_is_bisected_into_isolation(self, built_model):
        batch = make_batch(32, poison_slots={13: "poison-a"})
        chaos = WorkerChaos()  # no scheduled faults; poison kills stay armed
        with service(built_model, max_chunk_retries=2,
                     max_respawns_per_worker=30, breaker_cooldown=0.05,
                     chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert len(results) == 32
        bad = [r for r in results if not r.ok]
        assert [r.case_name for r in bad] == ["poison-a"]
        assert bad[0].error_type == "WorkerCrashError"
        assert "retry budget" in bad[0].message
        # every sibling of the poison chunk survived the bisection
        assert sum(r.ok for r in results) == 31
        assert stats.respawns <= 2 * 30

    def test_crash_retry_budget_is_respected(self, built_model):
        batch = [poison_case("p0")]
        chaos = WorkerChaos()
        with service(built_model, num_workers=1, chunk_size=1,
                     max_chunk_retries=2, max_respawns_per_worker=10,
                     breaker_cooldown=0.05, chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert not results[0].ok
        # initial dispatch + max_chunk_retries redispatches, each one crash
        assert stats.respawns == 3
        assert stats.chunk_retries == 3

    def test_pool_death_fails_outstanding_structurally(self, built_model):
        batch = make_batch(12, poison_slots={0: "p0"})
        chaos = WorkerChaos()
        with service(built_model, num_workers=1, chunk_size=4,
                     max_chunk_retries=0, max_respawns_per_worker=0,
                     chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
            assert stats.workers_alive == 0
            with pytest.raises(ServingError):
                svc.submit(batch[:1])
        assert len(results) == 12
        assert all(result is not None for result in results)
        kinds = {r.error_type for r in results if not r.ok}
        assert kinds <= {"WorkerCrashError", "ServiceShutdownError"}
        assert not any(r.ok for r in results[:1])  # the poison slot itself


class TestHangsAndSlowness:
    def test_hung_worker_is_reaped_and_replaced(self, built_model):
        batch = make_batch(12)
        chaos = {0: WorkerChaos(hang_on_chunk=1)}
        started = time.monotonic()
        with service(built_model, chunk_size=4, chunk_timeout=1.0,
                     chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert all(r.ok for r in results)
        assert stats.respawns >= 1
        # reaped at the 1s chunk timeout, not the chaos plan's hour-long nap
        assert time.monotonic() - started < 30.0

    def test_slow_worker_still_completes(self, built_model):
        batch = make_batch(8)
        chaos = WorkerChaos(slow_per_case=0.05, only_first_generation=False)
        with service(built_model, chunk_size=2, chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert all(r.ok for r in results)
        assert stats.chunk_latency_p50 >= 0.05


class TestCircuitBreaking:
    def test_flapping_worker_is_quarantined(self, built_model):
        # Worker 0 dies on every first chunk of every incarnation; with a
        # long cooldown it trips its breaker and the batch finishes on
        # worker 1 alone.
        chaos = {0: WorkerChaos(kill_on_chunk=1, only_first_generation=False)}
        batch = make_batch(24)
        with service(built_model, chunk_size=2, breaker_threshold=2,
                     breaker_cooldown=60.0, max_respawns_per_worker=20,
                     chaos=chaos) as svc:
            results = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert all(r.ok for r in results)
        assert stats.workers_quarantined == 1
        assert stats.workers_alive == 2

    def test_probe_reinstates_a_recovered_worker(self, built_model):
        # Worker dies once (first generation), trips a threshold-1 breaker,
        # respawns disarmed; after the short cooldown a probe must bring it
        # back into rotation.
        chaos = {0: WorkerChaos(kill_on_chunk=1)}
        batch = make_batch(6)
        with service(built_model, num_workers=2, chunk_size=2,
                     breaker_threshold=1, breaker_cooldown=0.1,
                     chaos=chaos) as svc:
            first = svc.diagnose_batch(batch, timeout=300)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                stats = svc.stats()
                if stats.workers_quarantined == 0 and stats.probes >= 1:
                    break
                time.sleep(0.05)
            second = svc.diagnose_batch(batch, timeout=300)
            stats = svc.stats()
        assert all(r.ok for r in first + second)
        assert stats.probes >= 1
        assert stats.workers_quarantined == 0
        assert stats.workers_alive == 2


class TestSoak:
    """The acceptance soak: 500 cases through a pool under active chaos."""

    def test_500_case_soak_under_chaos(self, built_model):
        poison_slots = {37: "poison-a", 211: "poison-b", 433: "poison-c"}
        batch = make_batch(500, poison_slots=poison_slots)
        chaos = WorkerChaos(kill_on_chunk=3)  # both workers die once, early
        config = dict(num_workers=2, chunk_size=8, max_chunk_retries=2,
                      max_respawns_per_worker=30, breaker_cooldown=0.05)
        with service(built_model, chaos=chaos, **config) as svc:
            results = svc.diagnose_batch(batch, timeout=600)
            stats = svc.stats()

            # 1. no slot lost: one result per case, in submission order
            assert len(results) == 500
            assert all(result is not None for result in results)
            assert [r.case_name for r in results] == [c.name for c in batch]

            # 2. every case is a Diagnosis or a *structured* failure
            failures = [r for r in results if not r.ok]
            assert {f.case_name for f in failures} == set(poison_slots.values())
            assert {f.error_type for f in failures} == {"WorkerCrashError"}
            for failure in failures:
                assert failure.message and failure.to_dict()["ok"] is False

            # 3. every non-poison slot succeeded despite the injected kills
            assert sum(r.ok for r in results) == 500 - len(poison_slots)

            # 4. accounting balances exactly — nothing lost, nothing doubled
            assert stats.submitted == 500
            assert stats.completed == 500 - len(poison_slots)
            assert stats.failed == len(poison_slots)
            assert stats.queue_depth == 0 and stats.in_flight == 0

            # 5. workers died and respawned within budget
            assert stats.respawns >= 2          # the two scheduled kills
            assert stats.respawns <= 2 * config["max_respawns_per_worker"]
            assert stats.workers_alive == 2
            assert stats.chunk_latency_p50 is not None

        # 6. clean drain: the context exit finished every case already
        assert svc.stats().in_flight == 0

    def test_soak_batch_construction_sanity(self):
        batch = make_batch(20, poison_slots={3: "p"})
        assert is_poison_case(batch[3])
        assert not is_poison_case(batch[4])
        assert len({case.name for case in batch}) == 20
